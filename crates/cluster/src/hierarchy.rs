//! Agglomerative hierarchical clustering with complete linkage
//! (paper §4.3).
//!
//! The public entry points ([`agglomerate`], [`agglomerate_with`],
//! [`agglomerate_matrix`]) run the O(n²) nearest-neighbor-chain
//! algorithm from [`crate::chain`] over a shared [`DistanceMatrix`].
//! The original quadratic-scan loop is retained as
//! [`agglomerate_naive`]: it is the executable specification the chain
//! is tested against, including its tie-breaking.

use crate::chain::nn_chain;
use crate::matrix::DistanceMatrix;

/// Distances closer than this are merge-order ties and are broken
/// deterministically (smallest node-id pair first). Shared by the
/// naive reference loop and the nn-chain so both resolve ties the same
/// way.
pub(crate) const TIE_EPS: f64 = 1e-12;

/// One merge step of the agglomeration. Node ids: `0..n` are leaves;
/// merge `k` creates node `n + k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged node.
    pub left: usize,
    /// Second merged node.
    pub right: usize,
    /// Complete-linkage distance at which the merge happened.
    pub distance: f64,
}

/// The full merge tree produced by agglomerative clustering.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dendrogram {
    /// Number of leaves (input items).
    pub n_leaves: usize,
    /// `n_leaves − 1` merges in non-decreasing-distance order of
    /// execution.
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// The leaf indices under node `id` (a leaf or a merge node),
    /// sorted ascending. Iterative, so deep dendrograms (e.g. a chain
    /// of duplicate items) cannot overflow the stack.
    pub fn leaves_under(&self, id: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(node) = stack.pop() {
            if node < self.n_leaves {
                out.push(node);
            } else {
                let merge = &self.merges[node - self.n_leaves];
                stack.push(merge.left);
                stack.push(merge.right);
            }
        }
        out.sort_unstable();
        out
    }

    /// Cuts the tree at `threshold`: merges with distance ≤ threshold
    /// are applied; the result is a partition of the leaves, each
    /// cluster sorted, clusters ordered by their smallest leaf.
    pub fn cut(&self, threshold: f64) -> Vec<Vec<usize>> {
        let mut parent: Vec<usize> = (0..self.n_leaves + self.merges.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for (k, merge) in self.merges.iter().enumerate() {
            if merge.distance <= threshold {
                let node = self.n_leaves + k;
                let l = find(&mut parent, merge.left);
                let r = find(&mut parent, merge.right);
                parent[l] = node;
                parent[r] = node;
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for leaf in 0..self.n_leaves {
            let root = find(&mut parent, leaf);
            groups.entry(root).or_default().push(leaf);
        }
        let mut clusters: Vec<Vec<usize>> = groups.into_values().collect();
        clusters.sort_by_key(|c| c[0]);
        clusters
    }

    /// Cuts the tree into exactly `k` clusters (or fewer, if there are
    /// fewer leaves) by undoing the last `k − 1` merges.
    pub fn cut_into(&self, k: usize) -> Vec<Vec<usize>> {
        if self.n_leaves == 0 {
            return Vec::new();
        }
        let k = k.clamp(1, self.n_leaves);
        let applied = self.n_leaves - k; // merges to apply
        let mut parent: Vec<usize> = (0..self.n_leaves + self.merges.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for (idx, merge) in self.merges.iter().take(applied).enumerate() {
            let node = self.n_leaves + idx;
            let l = find(&mut parent, merge.left);
            let r = find(&mut parent, merge.right);
            parent[l] = node;
            parent[r] = node;
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for leaf in 0..self.n_leaves {
            let root = find(&mut parent, leaf);
            groups.entry(root).or_default().push(leaf);
        }
        let mut clusters: Vec<Vec<usize>> = groups.into_values().collect();
        clusters.sort_by_key(|c| c[0]);
        clusters
    }

    /// Chooses the number of clusters automatically by maximising the
    /// mean silhouette coefficient over `k ∈ 2..=max_k`, returning
    /// `(k, clusters, score)`. With fewer than 3 leaves the trivial
    /// partition is returned with score 0.
    ///
    /// Takes the same shared [`DistanceMatrix`] the dendrogram was
    /// built from: no pairwise distance is ever re-evaluated here.
    ///
    /// # Panics
    ///
    /// If `matrix` does not cover exactly `n_leaves` items.
    pub fn best_cut(&self, matrix: &DistanceMatrix, max_k: usize) -> (usize, Vec<Vec<usize>>, f64) {
        let n = self.n_leaves;
        assert_eq!(matrix.len(), n, "matrix size must match the dendrogram");
        if n < 3 {
            return (n, self.cut_into(n), 0.0);
        }
        let mut best = (2usize, self.cut_into(2), f64::NEG_INFINITY);
        for k in 2..=max_k.min(n - 1) {
            let clusters = self.cut_into(k);
            let score = mean_silhouette(&clusters, matrix);
            if score > best.2 + TIE_EPS {
                best = (k, clusters, score);
            }
        }
        best
    }

    /// Renders the dendrogram as an indented ASCII tree, labelling each
    /// leaf with `labels(leaf)`.
    pub fn render_ascii(&self, labels: impl Fn(usize) -> String) -> String {
        if self.n_leaves == 0 {
            return String::new();
        }
        let root = if self.merges.is_empty() {
            0
        } else {
            self.n_leaves + self.merges.len() - 1
        };
        let mut out = String::new();
        self.render_node(root, 0, &labels, &mut out);
        out
    }

    fn render_node(
        &self,
        id: usize,
        depth: usize,
        labels: &impl Fn(usize) -> String,
        out: &mut String,
    ) {
        let pad = "  ".repeat(depth);
        if id < self.n_leaves {
            out.push_str(&format!("{pad}- {}\n", labels(id)));
        } else {
            let merge = &self.merges[id - self.n_leaves];
            out.push_str(&format!("{pad}+ [d={:.3}]\n", merge.distance));
            self.render_node(merge.left, depth + 1, labels, out);
            self.render_node(merge.right, depth + 1, labels, out);
        }
    }
}

/// The cluster-to-cluster distance used during agglomeration.
///
/// The paper uses complete linkage (§4.3); the alternatives exist for
/// the ablation study (`diffcode-bench --bin ablation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Linkage {
    /// `d(X,Y) = max d(x,y)` — the paper's choice.
    #[default]
    Complete,
    /// `d(X,Y) = min d(x,y)`.
    Single,
    /// Unweighted average of all pairwise distances (UPGMA).
    Average,
}

/// Mean silhouette coefficient of a partition under the shared
/// distance matrix; singletons score 0.
fn mean_silhouette(clusters: &[Vec<usize>], matrix: &DistanceMatrix) -> f64 {
    let n: usize = clusters.iter().map(Vec::len).sum();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for (ci, cluster) in clusters.iter().enumerate() {
        for &i in cluster {
            if cluster.len() == 1 {
                continue; // silhouette of a singleton is 0
            }
            let a: f64 = cluster
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| matrix.get(i, j))
                .sum::<f64>()
                / (cluster.len() - 1) as f64;
            let b = clusters
                .iter()
                .enumerate()
                .filter(|(cj, c)| *cj != ci && !c.is_empty())
                .map(|(_, c)| c.iter().map(|&j| matrix.get(i, j)).sum::<f64>() / c.len() as f64)
                .fold(f64::INFINITY, f64::min);
            let denom = a.max(b);
            if denom > 0.0 {
                total += (b - a) / denom;
            }
        }
    }
    total / n as f64
}

/// Clusters `n` items agglomeratively under `dist`, using **complete
/// linkage**: `d(X,Y) = max_{x∈X, y∈Y} d(x,y)`.
///
/// Ties are broken deterministically by smallest node-id pair.
///
/// Each pairwise distance is evaluated exactly once (in parallel, into
/// a shared [`DistanceMatrix`]) and agglomeration runs the O(n²)
/// nearest-neighbor chain. To reuse the matrix afterwards — e.g. for
/// [`Dendrogram::best_cut`] — build it yourself and call
/// [`agglomerate_matrix`].
///
/// # Example
///
/// ```
/// let coords: [f64; 4] = [0.0, 0.5, 9.0, 9.5];
/// let tree = cluster::agglomerate(4, |i, j| (coords[i] - coords[j]).abs());
/// assert_eq!(tree.cut(1.0), vec![vec![0, 1], vec![2, 3]]);
/// ```
pub fn agglomerate(n: usize, dist: impl Fn(usize, usize) -> f64 + Sync) -> Dendrogram {
    agglomerate_with(n, dist, Linkage::Complete)
}

/// [`agglomerate`] with an explicit linkage criterion.
pub fn agglomerate_with(
    n: usize,
    dist: impl Fn(usize, usize) -> f64 + Sync,
    linkage: Linkage,
) -> Dendrogram {
    agglomerate_matrix(&DistanceMatrix::from_fn(n, dist), linkage)
}

/// Agglomerates over an already-built distance matrix — the fast path
/// when the matrix is shared with other stages (silhouette cuts,
/// ablations, benches).
pub fn agglomerate_matrix(matrix: &DistanceMatrix, linkage: Linkage) -> Dendrogram {
    nn_chain(matrix, linkage)
}

/// The original quadratic-scan agglomeration loop, retained as the
/// executable specification of [`agglomerate_with`]: it recomputes
/// cluster distances from leaf members every round (O(n³) and worse),
/// and the nn-chain implementation is property-tested to produce the
/// identical dendrogram — same merges, node ids, heights, and
/// tie-breaking — on all inputs with distinct pairwise distances and
/// exhaustively on small tie-heavy ones (see `crate::chain` for the
/// boundary under adversarial exact ties).
pub fn agglomerate_naive(
    n: usize,
    dist: impl Fn(usize, usize) -> f64,
    linkage: Linkage,
) -> Dendrogram {
    if n == 0 {
        return Dendrogram::default();
    }
    // active clusters: node id → member leaves
    let mut members: Vec<Option<Vec<usize>>> = (0..n).map(|i| Some(vec![i])).collect();
    let mut active: Vec<usize> = (0..n).collect();
    // Pre-compute the leaf distance matrix once.
    let leaf_dist: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| if i == j { 0.0 } else { dist(i, j) })
                .collect()
        })
        .collect();
    let complete = |a: &[usize], b: &[usize]| -> f64 {
        match linkage {
            Linkage::Complete => {
                let mut worst = 0.0f64;
                for &x in a {
                    for &y in b {
                        worst = worst.max(leaf_dist[x][y]);
                    }
                }
                worst
            }
            Linkage::Single => {
                let mut best = f64::INFINITY;
                for &x in a {
                    for &y in b {
                        best = best.min(leaf_dist[x][y]);
                    }
                }
                best
            }
            Linkage::Average => {
                let mut sum = 0.0f64;
                for &x in a {
                    for &y in b {
                        sum += leaf_dist[x][y];
                    }
                }
                sum / (a.len() * b.len()) as f64
            }
        }
    };

    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    while active.len() > 1 {
        let mut best: Option<(f64, usize, usize)> = None;
        for (ai, &a) in active.iter().enumerate() {
            for &b in &active[ai + 1..] {
                let d = complete(
                    members[a].as_ref().expect("active"),
                    members[b].as_ref().expect("active"),
                );
                let candidate = (d, a, b);
                best = Some(match best {
                    None => candidate,
                    Some(current) => {
                        if candidate.0 < current.0 - TIE_EPS {
                            candidate
                        } else {
                            current
                        }
                    }
                });
            }
        }
        let (d, a, b) = best.expect("at least two active clusters");
        let node = members.len();
        let mut merged = members[a].take().expect("active");
        merged.extend(members[b].take().expect("active"));
        members.push(Some(merged));
        active.retain(|&x| x != a && x != b);
        active.push(node);
        merges.push(Merge {
            left: a,
            right: b,
            distance: d,
        });
    }
    Dendrogram {
        n_leaves: n,
        merges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance on a line: |i - j| scaled.
    fn line_dist(i: usize, j: usize) -> f64 {
        (i as f64 - j as f64).abs()
    }

    #[test]
    fn empty_and_singleton() {
        let d = agglomerate(0, line_dist);
        assert_eq!(d.n_leaves, 0);
        assert!(d.merges.is_empty());
        let d = agglomerate(1, line_dist);
        assert_eq!(d.cut(0.0), vec![vec![0]]);
    }

    #[test]
    fn produces_n_minus_one_merges() {
        let d = agglomerate(6, line_dist);
        assert_eq!(d.merges.len(), 5);
        assert_eq!(d.leaves_under(6 + 4), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn two_well_separated_groups() {
        // Points 0,1,2 close; 10,11,12 close (leaf ids 0..6).
        let coords: [f64; 6] = [0.0, 1.0, 2.0, 10.0, 11.0, 12.0];
        let d = agglomerate(6, |i, j| (coords[i] - coords[j]).abs());
        let clusters = d.cut(3.0);
        assert_eq!(clusters, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn cut_zero_is_all_singletons_when_distinct() {
        let d = agglomerate(4, line_dist);
        let clusters = d.cut(0.0);
        assert_eq!(clusters.len(), 4);
    }

    #[test]
    fn cut_infinity_is_one_cluster() {
        let d = agglomerate(5, line_dist);
        let clusters = d.cut(f64::INFINITY);
        assert_eq!(clusters, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn complete_linkage_uses_max() {
        // 0-1 close, 2 closer to 1 than 0: complete linkage must use the
        // farthest pair when merging {0,1} with {2}.
        let coords: [f64; 3] = [0.0, 1.0, 1.5];
        let d = agglomerate(3, |i, j| (coords[i] - coords[j]).abs());
        assert_eq!(d.merges[0].left, 1);
        assert_eq!(d.merges[0].right, 2);
        // Merge of {1,2} with {0}: complete distance = |0-1.5| = 1.5.
        assert!((d.merges[1].distance - 1.5).abs() < 1e-9);
    }

    #[test]
    fn merge_distances_are_monotone_for_complete_linkage() {
        let coords: [f64; 7] = [0.0, 0.5, 3.0, 3.2, 9.0, 9.1, 9.3];
        let d = agglomerate(coords.len(), |i, j| (coords[i] - coords[j]).abs());
        for w in d.merges.windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-9);
        }
    }

    #[test]
    fn best_cut_recovers_natural_grouping() {
        let coords: [f64; 7] = [0.0, 0.4, 0.8, 10.0, 10.3, 20.0, 20.5];
        let matrix = DistanceMatrix::from_fn(7, |i, j| (coords[i] - coords[j]).abs());
        let d = agglomerate_matrix(&matrix, Linkage::Complete);
        let (k, clusters, score) = d.best_cut(&matrix, 6);
        assert_eq!(k, 3, "{clusters:?} score={score}");
        assert_eq!(clusters[0], vec![0, 1, 2]);
        assert_eq!(clusters[1], vec![3, 4]);
        assert_eq!(clusters[2], vec![5, 6]);
        assert!(score > 0.8, "{score}");
    }

    #[test]
    fn best_cut_tiny_inputs() {
        let dist = |i: usize, j: usize| (i as f64 - j as f64).abs();
        let matrix = DistanceMatrix::from_fn(1, dist);
        let d = agglomerate_matrix(&matrix, Linkage::Complete);
        let (k, clusters, _) = d.best_cut(&matrix, 5);
        assert_eq!(k, 1);
        assert_eq!(clusters, vec![vec![0]]);
        let matrix = DistanceMatrix::from_fn(2, dist);
        let d = agglomerate_matrix(&matrix, Linkage::Complete);
        let (k, _, _) = d.best_cut(&matrix, 5);
        assert_eq!(k, 2);
    }

    #[test]
    fn leaves_under_handles_caterpillar_dendrograms_iteratively() {
        // Points at i² under single linkage: every merge absorbs the
        // next leaf into one growing cluster, so the dendrogram is a
        // maximally deep caterpillar — the shape where a recursive
        // walk would recurse n deep.
        let n = 2000;
        let d = agglomerate_with(
            n,
            |i, j| {
                let (fi, fj) = (i as f64, j as f64);
                (fi * fi - fj * fj).abs()
            },
            Linkage::Single,
        );
        // Caterpillar shape: from the second merge on, one child is
        // always the previous merge node.
        for (k, merge) in d.merges.iter().enumerate().skip(1) {
            assert_eq!(merge.right, n + k - 1, "merge {k} extends the chain");
            assert_eq!(merge.left, k + 1, "merge {k} absorbs leaf {}", k + 1);
        }
        let root = n + d.merges.len() - 1;
        let leaves = d.leaves_under(root);
        assert_eq!(leaves.len(), n);
        assert!(leaves.windows(2).all(|w| w[0] < w[1]), "sorted ascending");
    }

    #[test]
    fn cut_into_exact_k() {
        let coords: [f64; 6] = [0.0, 1.0, 2.0, 10.0, 11.0, 12.0];
        let d = agglomerate(6, |i, j| (coords[i] - coords[j]).abs());
        assert_eq!(d.cut_into(1), vec![vec![0, 1, 2, 3, 4, 5]]);
        assert_eq!(d.cut_into(2), vec![vec![0, 1, 2], vec![3, 4, 5]]);
        assert_eq!(d.cut_into(6).len(), 6);
        // Clamping: k beyond the leaf count gives singletons.
        assert_eq!(d.cut_into(99).len(), 6);
        assert_eq!(d.cut_into(0), d.cut_into(1));
        for k in 1..=6 {
            let total: usize = d.cut_into(k).iter().map(Vec::len).sum();
            assert_eq!(total, 6, "partition at k={k}");
        }
    }

    #[test]
    fn single_linkage_chains() {
        // A chain 0-1-2-3 with unit gaps: single linkage merges the
        // whole chain at distance 1, complete linkage does not.
        let coords: [f64; 4] = [0.0, 1.0, 2.0, 3.0];
        let single = agglomerate_with(4, |i, j| (coords[i] - coords[j]).abs(), Linkage::Single);
        assert!(single
            .merges
            .iter()
            .all(|m| (m.distance - 1.0).abs() < 1e-9));
        let complete = agglomerate_with(4, |i, j| (coords[i] - coords[j]).abs(), Linkage::Complete);
        assert!(complete.merges.last().unwrap().distance > 1.0);
    }

    #[test]
    fn average_linkage_between_single_and_complete() {
        let coords: [f64; 5] = [0.0, 0.8, 2.5, 6.0, 6.4];
        let d = |i: usize, j: usize| (coords[i] - coords[j]).abs();
        let single = agglomerate_with(5, d, Linkage::Single);
        let average = agglomerate_with(5, d, Linkage::Average);
        let complete = agglomerate_with(5, d, Linkage::Complete);
        let last = |dd: &Dendrogram| dd.merges.last().unwrap().distance;
        assert!(last(&single) <= last(&average) + 1e-9);
        assert!(last(&average) <= last(&complete) + 1e-9);
    }

    #[test]
    fn default_linkage_is_complete() {
        let coords: [f64; 3] = [0.0, 1.0, 5.0];
        let d = |i: usize, j: usize| (coords[i] - coords[j]).abs();
        assert_eq!(agglomerate(3, d), agglomerate_with(3, d, Linkage::Complete));
    }

    #[test]
    fn ascii_render_contains_all_leaves() {
        let d = agglomerate(3, line_dist);
        let s = d.render_ascii(|i| format!("leaf{i}"));
        for i in 0..3 {
            assert!(s.contains(&format!("leaf{i}")), "{s}");
        }
        assert!(s.contains("[d="));
    }
}
