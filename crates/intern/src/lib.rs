//! Thread-local string interning.
//!
//! The mining front end repeats the same short strings millions of
//! times: identifiers (`enc`, `algorithm`), type names (`Cipher`),
//! string literals (`"AES"`), and DAG labels (`arg1:AES`). Owning a
//! fresh `String` per occurrence makes the allocator the hottest
//! "stage" of a cold mine. Interning replaces each occurrence with a
//! shared [`Sym`] (`Arc<str>`): the first sighting per thread
//! allocates, every later one is a hash probe plus a refcount bump.
//!
//! Symbols are plain `Arc<str>`, so they compare, order, and hash by
//! *content* — interning changes no observable ordering (`BTreeMap` /
//! `BTreeSet` iteration, and therefore every digest and golden output,
//! is byte-identical to owned strings). `Arc` rather than `Rc` because
//! mining results cross the pipeline's shard-thread joins.
//!
//! The pool is thread-local: no locks on the hot path, and each mining
//! shard warms its own pool. A capacity cap bounds memory on
//! adversarial input (millions of distinct identifiers): when the pool
//! is full it is cleared, not grown — interning degrades to plain
//! allocation, never fails.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::HashSet;
use std::hash::{BuildHasher, Hasher};
use std::sync::Arc;

/// An interned string: shared, immutable, compared by content.
pub type Sym = Arc<str>;

/// Pool entries are dropped (not grown past) this bound; see module
/// docs. 64k symbols of realistic identifier length is a few MiB per
/// thread, far above what real Java corpora produce.
const MAX_POOL: usize = 1 << 16;

/// Word-at-a-time mixing hasher (FxHash-style). `HashSet`'s default
/// SipHash costs more than the allocation interning avoids, and
/// byte-at-a-time FNV still showed up in profiles: every identifier
/// occurrence in a parse pays one hash here, so the pool hashes
/// two-to-sixteen-byte keys in one or two 8-byte steps instead of one
/// step per byte. Not exposed anywhere — symbol identity is by
/// content, so the hash function is a pure implementation detail.
struct FxWords(u64);

impl Default for FxWords {
    fn default() -> Self {
        FxWords(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FxWords {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        let mut h = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            h = (h.rotate_left(5) ^ word).wrapping_mul(SEED);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            h = (h.rotate_left(5) ^ u64::from_le_bytes(buf)).wrapping_mul(SEED);
        }
        // `str`'s `Hash` impl appends a length terminator byte, so
        // prefix pairs ("ab" / "ab\0") already hash distinctly.
        self.0 = h;
    }
}

/// Zero-sized [`BuildHasher`] for [`FxWords`]; a unit struct (unlike
/// `BuildHasherDefault`) is constructible in `const` context, which
/// keeps the pool's `thread_local!` on the cheap const-initialised
/// access path — no lazy-init branch per [`intern`] call.
#[derive(Clone, Copy, Default)]
struct FxBuild;

impl BuildHasher for FxBuild {
    type Hasher = FxWords;

    fn build_hasher(&self) -> FxWords {
        FxWords::default()
    }
}

thread_local! {
    static POOL: RefCell<HashSet<Sym, FxBuild>> =
        const { RefCell::new(HashSet::with_hasher(FxBuild)) };
}

/// Returns the shared symbol for `s`, allocating only on first sight
/// per thread.
#[inline]
pub fn intern(s: &str) -> Sym {
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if let Some(hit) = pool.get(s) {
            return hit.clone();
        }
        if pool.len() >= MAX_POOL {
            pool.clear();
        }
        let sym: Sym = Arc::from(s);
        pool.insert(sym.clone());
        sym
    })
}

/// [`intern`] for an owned string, reusing nothing but avoiding a
/// second scan of the bytes on a pool hit.
#[inline]
pub fn intern_owned(s: String) -> Sym {
    intern(&s)
}

/// Number of symbols in this thread's pool (diagnostics/tests).
pub fn pool_len() -> usize {
    POOL.with(|pool| pool.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_content_shares_storage() {
        let a = intern("Cipher");
        let b = intern(&String::from("Cipher"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(&*a, "Cipher");
    }

    #[test]
    fn distinct_content_is_distinct() {
        assert_ne!(intern("enc"), intern("dec"));
    }

    #[test]
    fn second_sighting_does_not_grow_pool() {
        let before = {
            intern("warm-pool-probe");
            pool_len()
        };
        intern("warm-pool-probe");
        assert_eq!(pool_len(), before);
    }

    #[test]
    fn symbols_survive_pool_clear() {
        // Symbols are plain Arcs: clearing the pool only drops the
        // pool's own references.
        let sym = intern("survivor");
        POOL.with(|pool| pool.borrow_mut().clear());
        assert_eq!(&*sym, "survivor");
        // Re-interning after a clear re-allocates but stays equal.
        assert_eq!(intern("survivor"), sym);
    }

    #[test]
    fn empty_string_interns() {
        assert_eq!(&*intern(""), "");
    }
}
