//! Method signatures as tracked by the abstraction.

use intern::{intern, Sym};
use std::fmt;

/// A method signature `m([t0], t1, …, tk)` restricted to what the
/// lightweight analysis can know: the (erased) declaring class, the
/// method name, and the arity. `<init>` denotes constructors, matching
/// JVM convention and the paper's figures.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodSig {
    /// The class the method belongs to (e.g. `Cipher`).
    pub class: Sym,
    /// The method name; `<init>` for constructors.
    pub name: Sym,
    /// Number of arguments at the call site.
    pub arity: usize,
}

impl MethodSig {
    /// Creates a signature.
    pub fn new(class: impl Into<Sym>, name: impl Into<Sym>, arity: usize) -> Self {
        MethodSig {
            class: class.into(),
            name: name.into(),
            arity,
        }
    }

    /// Creates a constructor signature for `class`.
    pub fn ctor(class: impl Into<Sym>, arity: usize) -> Self {
        MethodSig::new(class, "<init>", arity)
    }

    /// `true` if this is a constructor.
    pub fn is_ctor(&self) -> bool {
        &*self.name == "<init>"
    }

    /// The label used for DAG method nodes. Methods of the object's own
    /// class print bare (`getInstance`), foreign methods print
    /// qualified (`Cipher.init`) — matching the paper's figures.
    ///
    /// # Example
    ///
    /// ```
    /// use absdomain::MethodSig;
    ///
    /// let init = MethodSig::new("Cipher", "init", 3);
    /// assert_eq!(&*init.label_for("Cipher"), "init");
    /// assert_eq!(&*init.label_for("IvParameterSpec"), "Cipher.init");
    /// ```
    ///
    /// Own-class labels are a refcount bump of the interned method
    /// name; foreign labels are interned, so repeats across DAGs cost
    /// one pool probe instead of a fresh `String`.
    pub fn label_for(&self, owner_class: &str) -> Sym {
        if &*self.class == owner_class {
            self.name.clone()
        } else {
            intern(&format!("{}.{}", self.class, self.name))
        }
    }
}

impl fmt::Display for MethodSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}/{}", self.class, self.name, self.arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctor_detection() {
        assert!(MethodSig::ctor("IvParameterSpec", 1).is_ctor());
        assert!(!MethodSig::new("Cipher", "init", 2).is_ctor());
    }

    #[test]
    fn labels_qualify_foreign_methods() {
        let own = MethodSig::new("Cipher", "getInstance", 1);
        assert_eq!(&*own.label_for("Cipher"), "getInstance");
        let foreign = MethodSig::new("Cipher", "init", 3);
        assert_eq!(&*foreign.label_for("IvParameterSpec"), "Cipher.init");
    }

    #[test]
    fn display_includes_arity() {
        assert_eq!(
            MethodSig::new("Cipher", "getInstance", 1).to_string(),
            "Cipher.getInstance/1"
        );
    }
}
