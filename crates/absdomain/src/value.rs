//! Abstract values.

use intern::Sym;
use std::fmt;

/// Identifies one allocation site — the paper's abstract object `l_n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocSite(pub u32);

impl fmt::Display for AllocSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// An abstract value: an abstract object or an abstract base-type value
/// (paper Figure 3).
#[derive(Debug, Clone, PartialEq)]
pub enum AValue {
    /// An object allocated at a known site, with its (erased) type name.
    Obj {
        /// The allocation site.
        site: AllocSite,
        /// The erased simple type name (e.g. `Cipher`).
        ty: Sym,
    },
    /// `⊤obj` — an object whose allocation is outside the analyzed code;
    /// the static type is kept when known (it labels DAG nodes, e.g.
    /// `arg2:Secret`).
    TopObj {
        /// Static type if known.
        ty: Option<Sym>,
    },
    /// A known constant from `Ints(P)`.
    Int(i64),
    /// `⊤int`.
    TopInt,
    /// A known constant array from `IntArrays(P)`.
    IntArray(Vec<i64>),
    /// `⊤int[]`.
    TopIntArray,
    /// A known constant from `Strs(P)`.
    Str(Sym),
    /// `⊤str`.
    TopStr,
    /// A known constant array from `StrArrays(P)`.
    StrArray(Vec<Sym>),
    /// `⊤str[]`.
    TopStrArray,
    /// `constbyte` — a byte whose value is a program constant.
    ConstByte,
    /// `⊤byte`.
    TopByte,
    /// `constbyte[]` — a byte array built entirely from program
    /// constants (e.g. a hard-coded key or IV).
    ConstByteArray,
    /// `⊤byte[]` — a byte array with runtime-dependent contents.
    TopByteArray,
    /// A boolean constant.
    Bool(bool),
    /// `⊤bool`.
    TopBool,
    /// A named API constant such as `Cipher.ENCRYPT_MODE`; kept by name
    /// because the numeric value is an API detail.
    ApiConst {
        /// Defining class.
        class: Sym,
        /// Constant name.
        name: Sym,
    },
    /// The `null` literal.
    Null,
    /// `⊤` of unknown type.
    Unknown,
}

/// The coarse kind of an abstract value; joins happen within a kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ValueKind {
    Obj,
    Int,
    IntArray,
    Str,
    StrArray,
    Byte,
    ByteArray,
    Bool,
    Null,
    Unknown,
}

impl AValue {
    /// The kind used to decide join compatibility.
    pub fn kind(&self) -> ValueKind {
        match self {
            AValue::Obj { .. } | AValue::TopObj { .. } => ValueKind::Obj,
            AValue::Int(_) | AValue::TopInt | AValue::ApiConst { .. } => ValueKind::Int,
            AValue::IntArray(_) | AValue::TopIntArray => ValueKind::IntArray,
            AValue::Str(_) | AValue::TopStr => ValueKind::Str,
            AValue::StrArray(_) | AValue::TopStrArray => ValueKind::StrArray,
            AValue::ConstByte | AValue::TopByte => ValueKind::Byte,
            AValue::ConstByteArray | AValue::TopByteArray => ValueKind::ByteArray,
            AValue::Bool(_) | AValue::TopBool => ValueKind::Bool,
            AValue::Null => ValueKind::Null,
            AValue::Unknown => ValueKind::Unknown,
        }
    }

    /// `true` if this value is one of the `⊤` elements.
    pub fn is_top(&self) -> bool {
        matches!(
            self,
            AValue::TopObj { .. }
                | AValue::TopInt
                | AValue::TopIntArray
                | AValue::TopStr
                | AValue::TopStrArray
                | AValue::TopByte
                | AValue::TopByteArray
                | AValue::TopBool
                | AValue::Unknown
        )
    }

    /// The least upper bound of two abstract values.
    ///
    /// Equal values join to themselves; unequal values of the same kind
    /// join to that kind's `⊤`; kind mismatches join to [`AValue::Unknown`].
    pub fn join(self, other: AValue) -> AValue {
        if self == other {
            return self;
        }
        // `null` (the default for uninitialized locals/fields) is
        // absorbed by any value: a branch that assigns wins over one
        // that leaves the variable null.
        match (&self, &other) {
            (AValue::Null, _) => return other,
            (_, AValue::Null) => return self,
            _ => {}
        }
        if self.kind() != other.kind() {
            return AValue::Unknown;
        }
        match self.kind() {
            ValueKind::Obj => {
                let ty = match (&self, &other) {
                    (AValue::Obj { ty: a, .. }, AValue::Obj { ty: b, .. })
                    | (AValue::Obj { ty: a, .. }, AValue::TopObj { ty: Some(b) })
                    | (AValue::TopObj { ty: Some(a) }, AValue::Obj { ty: b, .. })
                    | (AValue::TopObj { ty: Some(a) }, AValue::TopObj { ty: Some(b) }) => {
                        if a == b {
                            Some(a.clone())
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                AValue::TopObj { ty }
            }
            ValueKind::Int => AValue::TopInt,
            ValueKind::IntArray => AValue::TopIntArray,
            ValueKind::Str => AValue::TopStr,
            ValueKind::StrArray => AValue::TopStrArray,
            ValueKind::Byte => AValue::TopByte,
            ValueKind::ByteArray => AValue::TopByteArray,
            ValueKind::Bool => AValue::TopBool,
            ValueKind::Null | ValueKind::Unknown => AValue::Unknown,
        }
    }

    /// The label used for DAG argument nodes (paper §3.4): constants
    /// print their value, tops print `⊤kind`, objects print their type.
    pub fn label(&self) -> String {
        let mut out = String::new();
        self.write_label(&mut out);
        out
    }

    /// Appends [`AValue::label`] to `out` without intermediate
    /// allocations — the DAG builder's hot path composes labels like
    /// `arg1:AES` into a reused scratch buffer.
    pub fn write_label(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            AValue::Obj { ty, .. } => out.push_str(ty),
            AValue::TopObj { ty: Some(ty) } => out.push_str(ty),
            AValue::TopObj { ty: None } => out.push_str("\u{22a4}obj"),
            AValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            AValue::TopInt => out.push_str("\u{22a4}int"),
            AValue::IntArray(vs) => {
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{v}");
                }
                out.push(']');
            }
            AValue::TopIntArray => out.push_str("\u{22a4}int[]"),
            AValue::Str(s) => out.push_str(s),
            AValue::TopStr => out.push_str("\u{22a4}str"),
            AValue::StrArray(vs) => {
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(v);
                }
                out.push(']');
            }
            AValue::TopStrArray => out.push_str("\u{22a4}str[]"),
            AValue::ConstByte => out.push_str("constbyte"),
            AValue::TopByte => out.push_str("\u{22a4}byte"),
            AValue::ConstByteArray => out.push_str("constbyte[]"),
            AValue::TopByteArray => out.push_str("\u{22a4}byte[]"),
            AValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            AValue::TopBool => out.push_str("\u{22a4}bool"),
            AValue::ApiConst { name, .. } => out.push_str(name),
            AValue::Null => out.push_str("null"),
            AValue::Unknown => out.push('\u{22a4}'),
        }
    }

    /// The allocation site if this is a site-bound object.
    pub fn alloc_site(&self) -> Option<AllocSite> {
        match self {
            AValue::Obj { site, .. } => Some(*site),
            _ => None,
        }
    }
}

impl fmt::Display for AValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(site: u32, ty: &str) -> AValue {
        AValue::Obj {
            site: AllocSite(site),
            ty: ty.into(),
        }
    }

    #[test]
    fn join_equal_is_identity() {
        assert_eq!(AValue::Int(5).join(AValue::Int(5)), AValue::Int(5));
        assert_eq!(obj(1, "Cipher").join(obj(1, "Cipher")), obj(1, "Cipher"));
    }

    #[test]
    fn join_same_kind_goes_top() {
        assert_eq!(AValue::Int(1).join(AValue::Int(2)), AValue::TopInt);
        assert_eq!(
            AValue::Str("AES".into()).join(AValue::Str("DES".into())),
            AValue::TopStr
        );
        assert_eq!(
            AValue::ConstByteArray.join(AValue::TopByteArray),
            AValue::TopByteArray
        );
    }

    #[test]
    fn join_objects_keeps_common_type() {
        assert_eq!(
            obj(1, "Cipher").join(obj(2, "Cipher")),
            AValue::TopObj {
                ty: Some("Cipher".into())
            }
        );
        assert_eq!(
            obj(1, "Cipher").join(obj(2, "Mac")),
            AValue::TopObj { ty: None }
        );
    }

    #[test]
    fn join_null_with_object_is_object() {
        assert_eq!(AValue::Null.join(obj(3, "Cipher")), obj(3, "Cipher"));
        assert_eq!(obj(3, "Cipher").join(AValue::Null), obj(3, "Cipher"));
    }

    #[test]
    fn join_kind_mismatch_is_unknown() {
        assert_eq!(
            AValue::Int(1).join(AValue::Str("x".into())),
            AValue::Unknown
        );
    }

    #[test]
    fn api_const_joins_with_int() {
        let c = AValue::ApiConst {
            class: "Cipher".into(),
            name: "ENCRYPT_MODE".into(),
        };
        assert_eq!(c.clone().join(c.clone()), c.clone());
        assert_eq!(c.join(AValue::Int(7)), AValue::TopInt);
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(AValue::TopByteArray.label(), "\u{22a4}byte[]");
        assert_eq!(AValue::ConstByteArray.label(), "constbyte[]");
        assert_eq!(AValue::Str("AES/CBC".into()).label(), "AES/CBC");
        assert_eq!(
            AValue::ApiConst {
                class: "Cipher".into(),
                name: "ENCRYPT_MODE".into()
            }
            .label(),
            "ENCRYPT_MODE"
        );
        assert_eq!(
            AValue::TopObj {
                ty: Some("Secret".into())
            }
            .label(),
            "Secret"
        );
    }

    #[test]
    fn top_detection() {
        assert!(AValue::TopInt.is_top());
        assert!(!AValue::Int(0).is_top());
        assert!(AValue::Unknown.is_top());
    }
}
