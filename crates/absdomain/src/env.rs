//! The abstract store `∆ : Vars → AVals`.

use crate::AValue;
use intern::Sym;
use std::collections::BTreeMap;
use std::rc::Rc;

/// An abstract environment mapping variable (or field) names to
/// abstract values. Backed by a `BTreeMap` so iteration — and therefore
/// the whole pipeline — is deterministic.
///
/// The map lives behind an [`Rc`]: cloning an environment (which the
/// analyzer does at every branch, loop, and inlined call) is a
/// reference-count bump, and the map is only deep-copied on the first
/// write after a fork (`Rc::make_mut`). Branches that never write —
/// the common case in straight-line crypto code — share one allocation
/// for their entire lifetime.
#[derive(Debug, Clone, Default)]
pub struct Env {
    vars: Rc<BTreeMap<Sym, AValue>>,
}

impl PartialEq for Env {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.vars, &other.vars) || self.vars == other.vars
    }
}

impl Env {
    /// An empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Looks up `name`.
    pub fn get(&self, name: &str) -> Option<&AValue> {
        self.vars.get(name)
    }

    /// Binds `name` to `value`, returning the previous binding.
    pub fn set(&mut self, name: impl Into<Sym>, value: AValue) -> Option<AValue> {
        Rc::make_mut(&mut self.vars).insert(name.into(), value)
    }

    /// Removes a binding.
    pub fn remove(&mut self, name: &str) -> Option<AValue> {
        // Don't break sharing when there is nothing to remove.
        if !self.vars.contains_key(name) {
            return None;
        }
        Rc::make_mut(&mut self.vars).remove(name)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// `true` if there are no bindings.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Sym, &AValue)> {
        self.vars.iter()
    }

    /// Pointwise join with `other`: variables bound in both are joined;
    /// variables bound in exactly one side are kept as-is (the other
    /// branch did not touch them).
    pub fn join_with(&mut self, other: Env) {
        // An env joined with a fork that never diverged is a no-op:
        // `v.join(v) == v` for every abstract value (join is
        // idempotent), so shared storage means nothing to merge.
        if Rc::ptr_eq(&self.vars, &other.vars) || other.vars.is_empty() {
            return;
        }
        if self.vars.is_empty() {
            self.vars = other.vars;
            return;
        }
        let vars = Rc::make_mut(&mut self.vars);
        match Rc::try_unwrap(other.vars) {
            // Sole owner: move the bindings out.
            Ok(map) => {
                for (name, value) in map {
                    join_binding(vars, name, value);
                }
            }
            // Still shared with a live fork: clone per binding.
            Err(shared) => {
                for (name, value) in shared.iter() {
                    join_binding(vars, name.clone(), value.clone());
                }
            }
        }
    }
}

fn join_binding(vars: &mut BTreeMap<Sym, AValue>, name: Sym, value: AValue) {
    match vars.remove(&name) {
        Some(existing) => {
            vars.insert(name, existing.join(value));
        }
        None => {
            vars.insert(name, value);
        }
    }
}

impl FromIterator<(Sym, AValue)> for Env {
    fn from_iter<T: IntoIterator<Item = (Sym, AValue)>>(iter: T) -> Self {
        Env {
            vars: Rc::new(iter.into_iter().collect()),
        }
    }
}

impl Extend<(Sym, AValue)> for Env {
    fn extend<T: IntoIterator<Item = (Sym, AValue)>>(&mut self, iter: T) {
        Rc::make_mut(&mut self.vars).extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut env = Env::new();
        assert!(env.is_empty());
        env.set("algo", AValue::Str("AES".into()));
        assert_eq!(env.get("algo"), Some(&AValue::Str("AES".into())));
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn join_merges_pointwise() {
        let mut a = Env::new();
        a.set("x", AValue::Int(1));
        a.set("only_a", AValue::Int(9));
        let mut b = Env::new();
        b.set("x", AValue::Int(2));
        b.set("only_b", AValue::Str("s".into()));
        a.join_with(b);
        assert_eq!(a.get("x"), Some(&AValue::TopInt));
        assert_eq!(a.get("only_a"), Some(&AValue::Int(9)));
        assert_eq!(a.get("only_b"), Some(&AValue::Str("s".into())));
    }

    #[test]
    fn join_identical_keeps_constant() {
        let mut a = Env::new();
        a.set("x", AValue::Str("AES".into()));
        let mut b = Env::new();
        b.set("x", AValue::Str("AES".into()));
        a.join_with(b);
        assert_eq!(a.get("x"), Some(&AValue::Str("AES".into())));
    }

    #[test]
    fn forked_env_shares_until_written() {
        let mut a = Env::new();
        a.set("x", AValue::Int(1));
        let mut b = a.clone();
        // Clone is a pointer copy; reading does not unshare.
        assert_eq!(b.get("x"), Some(&AValue::Int(1)));
        // Writing the fork leaves the original untouched.
        b.set("x", AValue::Int(2));
        assert_eq!(a.get("x"), Some(&AValue::Int(1)));
        assert_eq!(b.get("x"), Some(&AValue::Int(2)));
        // Joining an untouched fork back is a no-op.
        let c = a.clone();
        a.join_with(c);
        assert_eq!(a.get("x"), Some(&AValue::Int(1)));
    }

    #[test]
    fn remove_missing_key_is_noop() {
        let mut a = Env::new();
        a.set("x", AValue::Int(1));
        let mut b = a.clone();
        assert_eq!(b.remove("absent"), None);
        assert_eq!(b.remove("x"), Some(AValue::Int(1)));
        assert_eq!(a.get("x"), Some(&AValue::Int(1)));
    }
}
