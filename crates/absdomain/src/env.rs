//! The abstract store `∆ : Vars → AVals`.

use crate::AValue;
use std::collections::BTreeMap;

/// An abstract environment mapping variable (or field) names to
/// abstract values. Backed by a `BTreeMap` so iteration — and therefore
/// the whole pipeline — is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Env {
    vars: BTreeMap<String, AValue>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Looks up `name`.
    pub fn get(&self, name: &str) -> Option<&AValue> {
        self.vars.get(name)
    }

    /// Binds `name` to `value`, returning the previous binding.
    pub fn set(&mut self, name: impl Into<String>, value: AValue) -> Option<AValue> {
        self.vars.insert(name.into(), value)
    }

    /// Removes a binding.
    pub fn remove(&mut self, name: &str) -> Option<AValue> {
        self.vars.remove(name)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// `true` if there are no bindings.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &AValue)> {
        self.vars.iter()
    }

    /// Pointwise join with `other`: variables bound in both are joined;
    /// variables bound in exactly one side are kept as-is (the other
    /// branch did not touch them).
    pub fn join_with(&mut self, other: Env) {
        for (name, value) in other.vars {
            match self.vars.remove(&name) {
                Some(existing) => {
                    self.vars.insert(name, existing.join(value));
                }
                None => {
                    self.vars.insert(name, value);
                }
            }
        }
    }
}

impl FromIterator<(String, AValue)> for Env {
    fn from_iter<T: IntoIterator<Item = (String, AValue)>>(iter: T) -> Self {
        Env {
            vars: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, AValue)> for Env {
    fn extend<T: IntoIterator<Item = (String, AValue)>>(&mut self, iter: T) {
        self.vars.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut env = Env::new();
        assert!(env.is_empty());
        env.set("algo", AValue::Str("AES".into()));
        assert_eq!(env.get("algo"), Some(&AValue::Str("AES".into())));
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn join_merges_pointwise() {
        let mut a = Env::new();
        a.set("x", AValue::Int(1));
        a.set("only_a", AValue::Int(9));
        let mut b = Env::new();
        b.set("x", AValue::Int(2));
        b.set("only_b", AValue::Str("s".into()));
        a.join_with(b);
        assert_eq!(a.get("x"), Some(&AValue::TopInt));
        assert_eq!(a.get("only_a"), Some(&AValue::Int(9)));
        assert_eq!(a.get("only_b"), Some(&AValue::Str("s".into())));
    }

    #[test]
    fn join_identical_keeps_constant() {
        let mut a = Env::new();
        a.set("x", AValue::Str("AES".into()));
        let mut b = Env::new();
        b.set("x", AValue::Str("AES".into()));
        a.join_with(b);
        assert_eq!(a.get("x"), Some(&AValue::Str("AES".into())));
    }
}
