//! Abstract domains for DiffCode (PLDI'18, §3.2–3.3).
//!
//! The abstraction is deliberately tailored to crypto APIs:
//!
//! * **Heap**: a per-allocation-site abstraction — every constructor or
//!   factory call site becomes one abstract object ([`AllocSite`]);
//!   `⊤obj` stands for objects whose allocation is not in the analyzed
//!   code (e.g. method parameters).
//! * **Base types** (paper Figure 3): integer and string constants are
//!   kept *exactly* (they encode configuration such as
//!   `"AES/CBC/NoPadding"` or iteration counts), while bytes and byte
//!   arrays are collapsed to `constbyte[]` vs `⊤byte[]` — enough to
//!   distinguish a hard-coded key/IV from a runtime-provided one.
//!
//! # Example
//!
//! ```
//! use absdomain::AValue;
//!
//! let a = AValue::Str("AES".into());
//! let b = AValue::Str("DES".into());
//! assert_eq!(a.clone().join(a.clone()), AValue::Str("AES".into()));
//! assert_eq!(a.join(b), AValue::TopStr);
//! ```

#![warn(missing_docs)]

mod env;
mod sig;
mod value;

pub use env::Env;
pub use sig::MethodSig;
pub use value::{AValue, AllocSite, ValueKind};
