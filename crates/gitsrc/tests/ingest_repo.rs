//! Integration tests for the real-git walk: each test builds a small
//! throwaway repository with the `git` binary (fixed identities and
//! dates, same discipline as scripts/make_fixture_repo.sh) and checks
//! the ingested corpus shape, provenance, and quarantine accounting.

use gitsrc::{ingest_repo, IngestLimits, IngestOptions, IngestReport, SkipKind};
use obs::MetricsRegistry;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A unique, cleaned-up-on-drop temp dir per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("gitsrc-ingest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A test repository with a deterministic fake clock: every commit is
/// stamped by the same author one minute after the previous one, so
/// repeated builds produce identical hashes.
struct TestRepo {
    dir: TempDir,
    tick: u32,
}

impl TestRepo {
    fn init(tag: &str) -> TestRepo {
        let repo = TestRepo {
            dir: TempDir::new(tag),
            tick: 0,
        };
        repo.git(&["init", "-q", "-b", "main", "."]);
        repo
    }

    fn path(&self) -> &Path {
        &self.dir.0
    }

    fn git(&self, args: &[&str]) {
        let output = Command::new("git")
            .arg("-C")
            .arg(self.path())
            .args(args)
            .env("GIT_AUTHOR_NAME", "Test Author")
            .env("GIT_AUTHOR_EMAIL", "author@test")
            .env("GIT_COMMITTER_NAME", "Test Committer")
            .env("GIT_COMMITTER_EMAIL", "committer@test")
            .env("GIT_CONFIG_GLOBAL", "/dev/null")
            .env("GIT_CONFIG_SYSTEM", "/dev/null")
            .env(
                "GIT_AUTHOR_DATE",
                format!("2021-01-01T00:{:02}:00Z", self.tick),
            )
            .env(
                "GIT_COMMITTER_DATE",
                format!("2021-01-01T00:{:02}:00Z", self.tick),
            )
            .output()
            .expect("spawn git");
        assert!(
            output.status.success(),
            "git {args:?} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }

    fn write(&self, path: &str, content: &str) {
        std::fs::write(self.path().join(path), content).unwrap();
    }

    fn write_bytes(&self, path: &str, content: &[u8]) {
        std::fs::write(self.path().join(path), content).unwrap();
    }

    fn commit(&mut self, message: &str) {
        self.tick += 1;
        self.git(&["add", "-A"]);
        self.git(&["commit", "-q", "--no-gpg-sign", "-m", message]);
    }
}

/// A Java class body with enough stable padding that a rename+edit
/// stays above git's 50% similarity threshold.
fn java_class(name: &str, transform: &str) -> String {
    let mut out = String::new();
    for i in 1..=20 {
        out.push_str(&format!("// padding line {i}\n"));
    }
    out.push_str(&format!(
        "public class {name} {{\n    void run() throws Exception {{\n        \
         javax.crypto.Cipher.getInstance(\"{transform}\");\n    }}\n}}\n"
    ));
    out
}

fn ingest(repo: &TestRepo, opts: &IngestOptions) -> IngestReport {
    let mut registry = MetricsRegistry::default();
    ingest_repo(repo.path(), opts, &mut registry).expect("ingest")
}

fn skip_count(report: &IngestReport, kind: SkipKind) -> usize {
    report.skips.iter().filter(|s| s.kind == kind).count()
}

#[test]
fn rename_plus_edit_in_one_commit_yields_one_pair() {
    let mut repo = TestRepo::init("rename-edit");
    repo.write("Session.java", &java_class("Session", "DES"));
    repo.commit("add session");
    repo.git(&["mv", "Session.java", "SecureSession.java"]);
    repo.write(
        "SecureSession.java",
        &java_class("SecureSession", "AES/GCM/NoPadding"),
    );
    repo.commit("rename and harden");

    let report = ingest(&repo, &IngestOptions::default());
    assert_eq!(report.stats.pairs, 1);
    assert_eq!(report.stats.renames_followed, 1);
    assert_eq!(report.stats.additions, 1); // the initial add
    assert!(report.skips.is_empty());

    let commit = report.corpus.projects[0].commits.last().unwrap();
    assert_eq!(commit.message, "rename and harden");
    assert_eq!(commit.author, "Test Author <author@test>");
    let change = &commit.changes[0];
    // The pair pairs the OLD path's content with the NEW path's.
    assert_eq!(change.path, "SecureSession.java");
    assert!(change.old.as_deref().unwrap().contains("class Session"));
    assert!(change.old.as_deref().unwrap().contains("DES"));
    assert!(change
        .new
        .as_deref()
        .unwrap()
        .contains("class SecureSession"));
    assert!(change.new.as_deref().unwrap().contains("AES/GCM/NoPadding"));
}

#[test]
fn rename_chain_across_commits_is_followed_hop_by_hop() {
    let mut repo = TestRepo::init("rename-chain");
    repo.write("A.java", &java_class("A", "DES"));
    repo.commit("add");
    repo.git(&["mv", "A.java", "B.java"]);
    repo.commit("first hop");
    repo.git(&["mv", "B.java", "C.java"]);
    repo.commit("second hop");

    let report = ingest(&repo, &IngestOptions::default());
    assert_eq!(report.stats.renames_followed, 2);
    assert_eq!(report.stats.pairs, 2);

    let commits = &report.corpus.projects[0].commits;
    assert_eq!(commits.len(), 3);
    // Each hop pre-image resolves through the previous name.
    assert_eq!(commits[1].changes[0].path, "B.java");
    assert_eq!(commits[2].changes[0].path, "C.java");
    assert_eq!(commits[1].changes[0].old, commits[0].changes[0].new);
    assert_eq!(commits[2].changes[0].old, commits[1].changes[0].new);
}

#[test]
fn file_added_then_deleted_produces_an_addition_and_a_deletion() {
    let mut repo = TestRepo::init("add-delete");
    let body = java_class("Scratch", "AES");
    repo.write("Scratch.java", &body);
    repo.commit("add scratch");
    repo.git(&["rm", "-q", "Scratch.java"]);
    repo.commit("drop scratch");

    let report = ingest(&repo, &IngestOptions::default());
    assert_eq!(report.stats.additions, 1);
    assert_eq!(report.stats.deletions, 1);
    assert_eq!(report.stats.pairs, 0);

    let commits = &report.corpus.projects[0].commits;
    assert_eq!(commits[0].changes[0].old, None);
    assert_eq!(commits[0].changes[0].new.as_deref(), Some(body.as_str()));
    // The deletion carries the pre-image so mining can see what died.
    assert_eq!(commits[1].changes[0].old.as_deref(), Some(body.as_str()));
    assert_eq!(commits[1].changes[0].new, None);
}

#[test]
fn merge_commits_are_skipped_and_the_walk_is_deterministic() {
    let mut repo = TestRepo::init("merge");
    repo.write("Main.java", &java_class("Main", "AES"));
    repo.commit("mainline");
    repo.git(&["checkout", "-q", "-b", "side"]);
    repo.write("Side.java", &java_class("Side", "DES"));
    repo.commit("side work");
    repo.git(&["checkout", "-q", "main"]);
    repo.write("Other.java", &java_class("Other", "RC4"));
    repo.commit("parallel work");
    repo.tick += 1;
    repo.git(&[
        "merge",
        "-q",
        "--no-ff",
        "--no-gpg-sign",
        "-m",
        "merge side",
        "side",
    ]);

    let first = ingest(&repo, &IngestOptions::default());
    // 4 commits exist; the merge is excluded, its branch commit is not.
    assert_eq!(first.stats.commits_walked, 3);
    let messages: Vec<&str> = first.corpus.projects[0]
        .commits
        .iter()
        .map(|c| c.message.as_str())
        .collect();
    assert!(messages.contains(&"side work"));
    assert!(!messages.iter().any(|m| m.contains("merge")));

    // Byte-for-byte deterministic: a second walk sees the same corpus.
    let second = ingest(&repo, &IngestOptions::default());
    assert_eq!(first.corpus, second.corpus);
    assert_eq!(first.stats, second.stats);
}

#[test]
fn oversized_and_non_utf8_blobs_quarantine_without_aborting() {
    let mut repo = TestRepo::init("quarantine");
    repo.write("Ok.java", &java_class("Ok", "AES"));
    // Binary content behind a .java name.
    repo.write_bytes("Binary.java", &[0xFF, 0xFE, 0x00, 0x42, 0x80]);
    // Bigger than the (tightened) blob budget below.
    repo.write("Big.java", &"x".repeat(4096));
    repo.commit("mixed bag");

    let opts = IngestOptions {
        limits: IngestLimits {
            max_blob_bytes: 1024,
            ..IngestLimits::DEFAULT
        },
        ..IngestOptions::default()
    };
    let report = ingest(&repo, &opts);
    assert_eq!(skip_count(&report, SkipKind::Oversized), 1);
    assert_eq!(skip_count(&report, SkipKind::NonUtf8), 1);
    // The healthy file still ingested; the walk never aborted.
    assert_eq!(report.stats.additions, 1);
    assert_eq!(
        report.corpus.projects[0].commits[0].changes[0].path,
        "Ok.java"
    );
    // files_seen partitions exactly into ingested + filtered + skipped.
    let accounted = report.stats.non_java
        + report.stats.pairs
        + report.stats.additions
        + report.stats.deletions
        + report.skips.len();
    assert_eq!(report.stats.files_seen, accounted);
}

#[test]
fn commit_file_budget_sheds_the_excess() {
    let mut repo = TestRepo::init("budget");
    for i in 0..4 {
        repo.write(&format!("F{i}.java"), &java_class(&format!("F{i}"), "AES"));
    }
    repo.commit("bulk import");

    let opts = IngestOptions {
        limits: IngestLimits {
            max_files_per_commit: 2,
            ..IngestLimits::DEFAULT
        },
        ..IngestOptions::default()
    };
    let report = ingest(&repo, &opts);
    assert_eq!(report.stats.additions, 2);
    assert_eq!(skip_count(&report, SkipKind::CommitFileBudget), 2);
}

/// Builds one shared deterministic 8-commit repo for the prefix
/// property: adds, edits, a rename, and a delete interleaved.
fn prefix_repo() -> TestRepo {
    let mut repo = TestRepo::init("prefix");
    repo.write("Core.java", &java_class("Core", "DES"));
    repo.commit("c1 add core");
    repo.write("Util.java", &java_class("Util", "RC4"));
    repo.commit("c2 add util");
    repo.write("Core.java", &java_class("Core", "AES"));
    repo.commit("c3 fix core");
    repo.write("Extra.java", &java_class("Extra", "DES"));
    repo.commit("c4 add extra");
    repo.git(&["mv", "Util.java", "Helper.java"]);
    repo.commit("c5 rename util");
    repo.write("Core.java", &java_class("Core", "AES/GCM/NoPadding"));
    repo.commit("c6 harden core");
    repo.git(&["rm", "-q", "Extra.java"]);
    repo.commit("c7 drop extra");
    repo.write("Helper.java", &java_class("Helper", "AES"));
    repo.commit("c8 fix helper");
    repo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Walking the first `k` commits yields exactly the first commits
    /// of the full walk — same ids, same authors, same pre/post
    /// content. Since mining cache keys and change fingerprints are
    /// content-addressed over exactly those fields, every fingerprint
    /// from a `--max-commits` prefix is stable under deeper walks.
    #[test]
    fn prefix_walks_are_stable_under_max_commits(k in 1usize..=8) {
        let repo = prefix_repo();
        let full = ingest(&repo, &IngestOptions::default());
        let prefix = ingest(&repo, &IngestOptions {
            max_commits: Some(k),
            ..IngestOptions::default()
        });

        prop_assert_eq!(prefix.stats.commits_walked, k);
        let full_commits = &full.corpus.projects[0].commits;
        let prefix_commits = &prefix.corpus.projects[0].commits;
        // Every prefix commit is literally the same ingested commit
        // (id, author, message, and all change content) as in the
        // full walk, in the same order.
        prop_assert!(prefix_commits.len() <= full_commits.len());
        for (p, f) in prefix_commits.iter().zip(full_commits) {
            prop_assert_eq!(p, f);
        }
    }
}
