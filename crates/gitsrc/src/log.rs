//! Commit enumeration: parsing `git log --name-status -M` output.
//!
//! The enumeration runs as **one** `git log` invocation for the whole
//! rev-range (streaming, rename-aware via `-M`, merge commits excluded
//! via `--no-merges` so every ingested commit has a well-defined single
//! parent for pre-image extraction). The parser here is pure — it takes
//! the captured stdout text — so every name-status shape git can emit
//! is unit-testable without a repository.
//!
//! Record framing uses NUL (`%x00`) separators. Commit objects are
//! stored as NUL-terminated C strings, so git can *never* emit a NUL
//! inside `%H`, `%an`, `%ae`, or `%s` — unlike the printable-ish
//! control bytes 0x1e/0x1f, which a crafted commit subject or author
//! name may legally contain and which would desynchronize any framing
//! built on them. With NUL framing a hostile history can at worst
//! produce weird *field contents*, never mis-attributed commits.
//! Paths with bytes outside the printable range arrive C-quoted
//! (git's `core.quotePath` behavior); [`unquote_path`] undoes the
//! standard escapes.

/// The `--format` string matching [`parse_log`]: each record is
/// `NUL hash NUL author NUL subject`, with the commit's name-status
/// lines following the subject until the next record's NUL.
pub const LOG_FORMAT: &str = "%x00%H%x00%an <%ae>%x00%s";

/// One file-level entry of a commit's `--name-status` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatusEntry {
    /// `A` — file added (no pre-image).
    Added { path: String },
    /// `M` (and `T`, a type change) — file modified in place.
    Modified { path: String },
    /// `D` — file deleted (no post-image).
    Deleted { path: String },
    /// `R<score>` — rename, possibly with an edit. The pre-image lives
    /// at `old` in the parent, the post-image at `new` in the commit.
    Renamed { old: String, new: String },
    /// `C<score>` — copy; the post-image is a new file (the source
    /// still exists), so ingestion treats it as an addition at `new`.
    Copied { new: String },
    /// Anything else (`U`, `X`, …): surfaced for quarantine, never a
    /// parse failure.
    Other { code: String, raw: String },
}

/// One enumerated commit: provenance plus its name-status entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogCommit {
    /// Full commit hash.
    pub id: String,
    /// `Author Name <email>`.
    pub author: String,
    /// Subject line.
    pub message: String,
    /// Name-status entries, in git's output order.
    pub entries: Vec<StatusEntry>,
}

/// Parses the stdout of
/// `git log --reverse --no-merges -M --name-status --format=<LOG_FORMAT>`
/// into commits (oldest first, matching `--reverse`).
///
/// Total: lines that fit no known shape become [`StatusEntry::Other`]
/// entries (quarantined downstream), and a truncated trailing record
/// (stream cut mid-header) is dropped — enumeration of a weird history
/// degrades, it never aborts. Because the NUL separators cannot occur
/// inside any header field, control bytes in subjects or author names
/// pass through as content instead of desynchronizing the parse.
pub fn parse_log(stdout: &str) -> Vec<LogCommit> {
    let mut commits = Vec::new();
    let mut chunks = stdout.split('\0');
    // Anything before the first separator is not a record (empty for
    // well-formed output).
    let _ = chunks.next();
    while let (Some(id), Some(author), Some(rest)) = (chunks.next(), chunks.next(), chunks.next()) {
        // `rest` is the subject line followed by this commit's
        // name-status block, up to the next record's NUL.
        let mut lines = rest.lines();
        let message = lines.next().unwrap_or("").to_owned();
        let mut entries = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if let Some(entry) = parse_status_line(line) {
                entries.push(entry);
            }
        }
        commits.push(LogCommit {
            id: id.to_owned(),
            author: author.to_owned(),
            message,
            entries,
        });
    }
    commits
}

/// Parses one `--name-status` line (`M\tpath`, `R087\told\tnew`, …).
fn parse_status_line(line: &str) -> Option<StatusEntry> {
    let mut parts = line.split('\t');
    let code = parts.next()?;
    if code.is_empty() {
        return None;
    }
    let first = parts.next();
    let second = parts.next();
    let entry = match (code.as_bytes()[0], first, second) {
        (b'A', Some(path), None) => StatusEntry::Added {
            path: unquote_path(path),
        },
        // A type change (file <-> symlink) still has blob content on
        // both sides; treat it as a modify and let blob extraction
        // quarantine anything unreadable.
        (b'M' | b'T', Some(path), None) => StatusEntry::Modified {
            path: unquote_path(path),
        },
        (b'D', Some(path), None) => StatusEntry::Deleted {
            path: unquote_path(path),
        },
        (b'R', Some(old), Some(new)) => StatusEntry::Renamed {
            old: unquote_path(old),
            new: unquote_path(new),
        },
        (b'C', Some(_old), Some(new)) => StatusEntry::Copied {
            new: unquote_path(new),
        },
        _ => StatusEntry::Other {
            code: code.to_owned(),
            raw: line.to_owned(),
        },
    };
    Some(entry)
}

/// Undoes git's C-style path quoting (`"a\tb\303\244.java"`); paths
/// without the surrounding quotes pass through untouched. Unknown
/// escapes keep the backslash verbatim — a garbled path yields a
/// cat-file miss (quarantined), never a crash.
pub fn unquote_path(path: &str) -> String {
    let Some(inner) = path
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
    else {
        return path.to_owned();
    };
    let mut bytes: Vec<u8> = Vec::with_capacity(inner.len());
    let mut chars = inner.bytes().peekable();
    while let Some(b) = chars.next() {
        if b != b'\\' {
            bytes.push(b);
            continue;
        }
        match chars.next() {
            Some(b'n') => bytes.push(b'\n'),
            Some(b't') => bytes.push(b'\t'),
            Some(b'r') => bytes.push(b'\r'),
            Some(b'\\') => bytes.push(b'\\'),
            Some(b'"') => bytes.push(b'"'),
            Some(d @ b'0'..=b'7') => {
                // Up to three octal digits.
                let mut value = u32::from(d - b'0');
                for _ in 0..2 {
                    match chars.peek() {
                        Some(d2 @ b'0'..=b'7') => {
                            value = value * 8 + u32::from(d2 - b'0');
                            chars.next();
                        }
                        _ => break,
                    }
                }
                bytes.push(value as u8);
            }
            Some(other) => {
                bytes.push(b'\\');
                bytes.push(other);
            }
            None => bytes.push(b'\\'),
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_header_and_status_shapes() {
        let stdout = "\0abc123\0Ada L <ada@example.com>\0Fix IV\n\n\
                      M\tsrc/A.java\n\
                      A\tsrc/B.java\n\
                      D\told/C.java\n\
                      R087\tsrc/Old.java\tsrc/New.java\n\
                      C055\tsrc/A.java\tsrc/Copy.java\n\
                      U\tconflict.java\n";
        let commits = parse_log(stdout);
        assert_eq!(commits.len(), 1);
        let c = &commits[0];
        assert_eq!(c.id, "abc123");
        assert_eq!(c.author, "Ada L <ada@example.com>");
        assert_eq!(c.message, "Fix IV");
        assert_eq!(
            c.entries,
            vec![
                StatusEntry::Modified {
                    path: "src/A.java".into()
                },
                StatusEntry::Added {
                    path: "src/B.java".into()
                },
                StatusEntry::Deleted {
                    path: "old/C.java".into()
                },
                StatusEntry::Renamed {
                    old: "src/Old.java".into(),
                    new: "src/New.java".into()
                },
                StatusEntry::Copied {
                    new: "src/Copy.java".into()
                },
                StatusEntry::Other {
                    code: "U".into(),
                    raw: "U\tconflict.java".into()
                },
            ]
        );
    }

    #[test]
    fn parses_multiple_commits_in_reverse_order() {
        let stdout = "\0c1\0a <a@x>\0first\n\nA\tA.java\n\
                      \0c2\0b <b@x>\0second\n\nM\tA.java\n";
        let commits = parse_log(stdout);
        assert_eq!(commits.len(), 2);
        assert_eq!(commits[0].id, "c1");
        assert_eq!(commits[1].id, "c2");
    }

    #[test]
    fn commit_without_changes_is_kept_with_no_entries() {
        let commits = parse_log("\0c1\0a <a@x>\0empty\n");
        assert_eq!(commits.len(), 1);
        assert!(commits[0].entries.is_empty());
    }

    #[test]
    fn truncated_trailing_record_is_dropped() {
        let stdout = "\0c1\0a <a@x>\0ok\n\nM\tA.java\n\0c2\0b <b@x>";
        let commits = parse_log(stdout);
        assert_eq!(commits.len(), 1);
        assert_eq!(commits[0].id, "c1");
    }

    #[test]
    fn control_bytes_in_subject_and_author_stay_content() {
        // 0x1e/0x1f are legal in commit subjects and author names; a
        // crafted header trying to fake a record boundary must parse
        // as field *content*, never as framing.
        let stdout = "\0c1\0Ev\u{1f}il <e@x>\0fake\u{1e}deadbeef\u{1f}x <x@x>\u{1f}msg\n\n\
                      M\tA.java\n\
                      \0c2\0b <b@x>\0real\n\nM\tB.java\n";
        let commits = parse_log(stdout);
        assert_eq!(commits.len(), 2);
        assert_eq!(commits[0].id, "c1");
        assert_eq!(commits[0].author, "Ev\u{1f}il <e@x>");
        assert_eq!(
            commits[0].message,
            "fake\u{1e}deadbeef\u{1f}x <x@x>\u{1f}msg"
        );
        assert_eq!(commits[0].entries.len(), 1);
        assert_eq!(commits[1].id, "c2");
        assert_eq!(commits[1].entries.len(), 1);
    }

    #[test]
    fn unquotes_c_style_paths() {
        assert_eq!(unquote_path("plain/Path.java"), "plain/Path.java");
        assert_eq!(unquote_path(r#""a\tb.java""#), "a\tb.java");
        assert_eq!(unquote_path(r#""uml\303\244ut.java""#), "umläut.java");
        assert_eq!(unquote_path(r#""q\"uote.java""#), "q\"uote.java");
        // Unknown escape survives verbatim instead of panicking.
        assert_eq!(unquote_path(r#""a\qb.java""#), r"a\qb.java");
    }

    #[test]
    fn subjects_with_tabs_and_unicode_survive() {
        let stdout = "\0c1\0Åsa <å@x>\0fix\tcrypto ünit\n\nM\tA.java\n";
        let commits = parse_log(stdout);
        assert_eq!(commits[0].message, "fix\tcrypto ünit");
        assert_eq!(commits[0].author, "Åsa <å@x>");
    }
}
