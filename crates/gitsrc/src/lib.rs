//! Real-git ingestion front end.
//!
//! Walks a cloned repository with the `git` binary — no libgit2, no
//! extra crates — and converts every touched `.java` file into the
//! same [`corpus::Corpus`] shape the synthetic generator produces, so
//! real histories flow through the identical cached mining path:
//! provenance (author, commit, path) reaches the decision trace, and
//! content-addressed cache keys make warm re-mines of a repository
//! nearly free.
//!
//! Two child processes do all the git work:
//!
//! 1. one `git log --reverse --no-merges -M --name-status` enumerates
//!    commits oldest-first with rename detection ([`log`]), and
//! 2. one long-lived `git cat-file --batch` serves blob content in
//!    bounded pipelined batches ([`catfile`]).
//!
//! Ingestion is **total** below the repository level: a corrupt,
//! oversized, binary, or missing blob quarantines that one file (typed
//! [`SkipKind`], counted, reported), a commit over the file budget
//! sheds its excess files, and only repository-level failures (no such
//! repo, git unavailable, protocol desync) surface as [`GitError`].

mod catfile;
pub mod log;

pub use catfile::{BlobFetch, CatFile, MAX_BATCH_REQUEST_BYTES};

use obs::{MetricsRegistry, Stopwatch};
use std::fmt;
use std::path::Path;
use std::process::Command;

/// Resource budgets applied while walking a repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestLimits {
    /// Largest blob (bytes) ingested per side; bigger blobs are read,
    /// discarded, and quarantined as [`SkipKind::Oversized`].
    pub max_blob_bytes: u64,
    /// Most `.java` entries ingested per commit; the excess is
    /// quarantined as [`SkipKind::CommitFileBudget`] (bulk renames /
    /// vendored-source imports would otherwise dominate a mine).
    pub max_files_per_commit: usize,
    /// Most cat-file requests in flight before responses are drained.
    /// Together with the request-byte cap
    /// ([`MAX_BATCH_REQUEST_BYTES`]) this bounds both pipe buffers so
    /// the batch child can never deadlock.
    pub catfile_batch: usize,
}

impl IngestLimits {
    /// Defaults sized for typical crypto-library histories.
    pub const DEFAULT: IngestLimits = IngestLimits {
        max_blob_bytes: 1 << 20, // 1 MiB of source is already pathological
        max_files_per_commit: 64,
        catfile_batch: 64,
    };
}

impl Default for IngestLimits {
    fn default() -> Self {
        IngestLimits::DEFAULT
    }
}

/// What to walk and how much of it.
#[derive(Debug, Clone, Default)]
pub struct IngestOptions {
    /// Optional `A..B` rev-range; `None` walks the full current branch.
    pub rev_range: Option<String>,
    /// Keep only the first N commits (oldest-first, so any prefix of a
    /// history is a stable sub-walk of a longer one).
    pub max_commits: Option<usize>,
    /// Resource budgets.
    pub limits: IngestLimits,
}

/// Repository-level ingestion failure. Everything below this level
/// degrades into typed per-file skips instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GitError {
    /// An ingest option was rejected before any git child ran (e.g. a
    /// rev-range shaped like a git option).
    Options(String),
    /// Could not spawn a git child (git missing from PATH, bad repo
    /// path permissions…).
    Spawn(String),
    /// A pipe to a git child failed mid-stream.
    Io(String),
    /// `git log` exited non-zero for a reason other than an empty
    /// history.
    Log { status: i32, stderr: String },
    /// The cat-file batch stream desynchronized (should not happen on
    /// a healthy repository).
    Protocol(String),
}

impl fmt::Display for GitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GitError::Options(e) => write!(f, "invalid ingest options: {e}"),
            GitError::Spawn(e) => write!(f, "failed to spawn git: {e}"),
            GitError::Io(e) => write!(f, "git pipe error: {e}"),
            GitError::Log { status, stderr } => {
                write!(f, "git log failed (exit {status}): {}", stderr.trim())
            }
            GitError::Protocol(e) => write!(f, "git cat-file protocol error: {e}"),
        }
    }
}

/// Why one file of one commit was quarantined instead of ingested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipKind {
    /// A blob exceeded [`IngestLimits::max_blob_bytes`].
    Oversized,
    /// A blob was not valid UTF-8 (binary content behind a `.java`
    /// name).
    NonUtf8,
    /// git reported the object missing (garbled path, shallow-clone
    /// boundary).
    Missing,
    /// The commit had more `.java` entries than
    /// [`IngestLimits::max_files_per_commit`].
    CommitFileBudget,
    /// A name-status code ingestion does not understand (`U`, `X`, …).
    UnknownStatus,
}

impl SkipKind {
    /// Stable kebab-case label used in counters and reports.
    pub fn name(self) -> &'static str {
        match self {
            SkipKind::Oversized => "oversized",
            SkipKind::NonUtf8 => "non-utf8",
            SkipKind::Missing => "missing",
            SkipKind::CommitFileBudget => "commit-file-budget",
            SkipKind::UnknownStatus => "unknown-status",
        }
    }

    /// All kinds, in report order.
    pub const ALL: [SkipKind; 5] = [
        SkipKind::Oversized,
        SkipKind::NonUtf8,
        SkipKind::Missing,
        SkipKind::CommitFileBudget,
        SkipKind::UnknownStatus,
    ];
}

/// One quarantined file: enough provenance to find it again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestSkip {
    /// Full hash of the commit the file belonged to.
    pub commit: String,
    /// Repository-relative path (post-image side where one exists).
    pub path: String,
    /// Why it was quarantined.
    pub kind: SkipKind,
    /// Human-readable detail (size, status code…); may be empty.
    pub detail: String,
}

/// Deterministic walk accounting. `files_seen` partitions into
/// `non_java + pairs + additions + deletions + skipped()` — the same
/// processed-equals-mined-plus-skipped discipline the mining pipeline
/// keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Commits enumerated (after merge exclusion and `max_commits`).
    pub commits_walked: usize,
    /// Commits that contributed at least one ingested file.
    pub commits_ingested: usize,
    /// Name-status entries examined across all walked commits.
    pub files_seen: usize,
    /// Entries dropped by the `.java` filter.
    pub non_java: usize,
    /// Pre/post pairs extracted (modifications and rename+edits) —
    /// the entries mining will actually analyze.
    pub pairs: usize,
    /// Renames followed to their pre-image path (subset of `pairs`).
    pub renames_followed: usize,
    /// Pure additions ingested (post side only).
    pub additions: usize,
    /// Pure deletions ingested (pre side only).
    pub deletions: usize,
    /// Blob bytes ingested across both sides.
    pub blob_bytes: u64,
}

/// The result of walking one repository.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// The single-project corpus, ready for `DiffCode::mine_*`.
    pub corpus: corpus::Corpus,
    /// Walk accounting.
    pub stats: IngestStats,
    /// Every quarantined file, in walk order.
    pub skips: Vec<IngestSkip>,
}

impl IngestReport {
    /// Files quarantined, by kind (deterministic order).
    pub fn skipped_by_kind(&self) -> Vec<(SkipKind, usize)> {
        SkipKind::ALL
            .iter()
            .map(|&kind| (kind, self.skips.iter().filter(|s| s.kind == kind).count()))
            .collect()
    }
}

/// The blob work planned for one name-status entry before any content
/// is fetched.
struct PlannedFile {
    /// Post-image path where one exists, else the pre-image path.
    path: String,
    /// `<rev>:<path>` spec for the pre-image, if any.
    pre: Option<String>,
    /// `<rev>:<path>` spec for the post-image, if any.
    post: Option<String>,
    /// Whether this entry followed a rename.
    renamed: bool,
}

/// Walks `repo` and returns the ingested corpus plus accounting.
///
/// The project identity is path-independent — user `"git"`, name from
/// the repository directory's basename — so reports and cache traces
/// produced from the same repository content are byte-identical no
/// matter where the clone lives.
pub fn ingest_repo(
    repo: &Path,
    opts: &IngestOptions,
    registry: &mut MetricsRegistry,
) -> Result<IngestReport, GitError> {
    let sw = Stopwatch::start();
    let log_output = run_log(repo, opts)?;
    registry.record_span("gitsrc.log", sw.elapsed());

    let mut commits = log::parse_log(&log_output);
    if let Some(max) = opts.max_commits {
        commits.truncate(max);
    }

    let mut stats = IngestStats {
        commits_walked: commits.len(),
        ..IngestStats::default()
    };
    let mut skips: Vec<IngestSkip> = Vec::new();
    let mut ingested_commits: Vec<corpus::Commit> = Vec::new();

    let mut catfile = if commits.is_empty() {
        None
    } else {
        Some(CatFile::spawn(repo)?)
    };

    for commit in &commits {
        let mut planned: Vec<PlannedFile> = Vec::new();
        for entry in &commit.entries {
            stats.files_seen += 1;
            let post_path = match entry {
                log::StatusEntry::Added { path }
                | log::StatusEntry::Modified { path }
                | log::StatusEntry::Deleted { path } => path,
                log::StatusEntry::Renamed { new, .. } | log::StatusEntry::Copied { new } => new,
                log::StatusEntry::Other { code, raw } => {
                    if raw.ends_with(".java") {
                        skips.push(IngestSkip {
                            commit: commit.id.clone(),
                            path: raw.clone(),
                            kind: SkipKind::UnknownStatus,
                            detail: format!("status {code}"),
                        });
                    } else {
                        stats.non_java += 1;
                    }
                    continue;
                }
            };
            if !post_path.ends_with(".java") {
                stats.non_java += 1;
                continue;
            }
            if planned.len() >= opts.limits.max_files_per_commit {
                skips.push(IngestSkip {
                    commit: commit.id.clone(),
                    path: post_path.clone(),
                    kind: SkipKind::CommitFileBudget,
                    detail: format!("commit budget {}", opts.limits.max_files_per_commit),
                });
                continue;
            }
            // `--no-merges` guarantees a single parent, and root
            // commits only emit `A` lines, so `{id}^` is always a
            // valid pre-image rev wherever we use it.
            planned.push(match entry {
                log::StatusEntry::Added { path } => PlannedFile {
                    path: path.clone(),
                    pre: None,
                    post: Some(format!("{}:{path}", commit.id)),
                    renamed: false,
                },
                log::StatusEntry::Modified { path } => PlannedFile {
                    path: path.clone(),
                    pre: Some(format!("{}^:{path}", commit.id)),
                    post: Some(format!("{}:{path}", commit.id)),
                    renamed: false,
                },
                log::StatusEntry::Deleted { path } => PlannedFile {
                    path: path.clone(),
                    pre: Some(format!("{}^:{path}", commit.id)),
                    post: None,
                    renamed: false,
                },
                log::StatusEntry::Renamed { old, new } => PlannedFile {
                    path: new.clone(),
                    pre: Some(format!("{}^:{old}", commit.id)),
                    post: Some(format!("{}:{new}", commit.id)),
                    renamed: true,
                },
                // A copy's source still exists, so the post-image is
                // effectively a new file.
                log::StatusEntry::Copied { new } => PlannedFile {
                    path: new.clone(),
                    pre: None,
                    post: Some(format!("{}:{new}", commit.id)),
                    renamed: false,
                },
                log::StatusEntry::Other { .. } => unreachable!("handled above"),
            });
        }

        if planned.is_empty() {
            continue;
        }
        let catfile = catfile.as_mut().expect("spawned when commits exist");
        let blobs = fetch_planned(catfile, &planned, &opts.limits, registry)?;

        let mut changes: Vec<corpus::FileChange> = Vec::new();
        for (file, (pre, post)) in planned.iter().zip(blobs) {
            let mut quarantine = |kind: SkipKind, detail: String| {
                skips.push(IngestSkip {
                    commit: commit.id.clone(),
                    path: file.path.clone(),
                    kind,
                    detail,
                });
            };
            let sides = [(&file.pre, pre), (&file.post, post)];
            let mut contents: [Option<String>; 2] = [None, None];
            let mut failed = false;
            for (slot, (spec, fetched)) in contents.iter_mut().zip(sides) {
                match (spec, fetched) {
                    (None, _) | (Some(_), None) => {}
                    (Some(_), Some(BlobFetch::Content(text))) => *slot = Some(text),
                    (Some(spec), Some(BlobFetch::Missing)) => {
                        quarantine(SkipKind::Missing, format!("object {spec} missing"));
                        failed = true;
                    }
                    (Some(spec), Some(BlobFetch::Oversized { size })) => {
                        quarantine(
                            SkipKind::Oversized,
                            format!(
                                "{spec}: {size} bytes > budget {}",
                                opts.limits.max_blob_bytes
                            ),
                        );
                        failed = true;
                    }
                    (Some(spec), Some(BlobFetch::NonUtf8)) => {
                        quarantine(SkipKind::NonUtf8, format!("{spec}: invalid UTF-8"));
                        failed = true;
                    }
                }
                if failed {
                    break;
                }
            }
            if failed {
                continue;
            }
            let [old, new] = contents;
            stats.blob_bytes += old.as_deref().map_or(0, str::len) as u64
                + new.as_deref().map_or(0, str::len) as u64;
            match (&old, &new) {
                (Some(_), Some(_)) => {
                    stats.pairs += 1;
                    if file.renamed {
                        stats.renames_followed += 1;
                    }
                }
                (None, Some(_)) => stats.additions += 1,
                (Some(_), None) => stats.deletions += 1,
                (None, None) => continue,
            }
            changes.push(corpus::FileChange {
                path: file.path.clone(),
                old,
                new,
            });
        }

        if changes.is_empty() {
            continue;
        }
        stats.commits_ingested += 1;
        ingested_commits.push(corpus::Commit {
            id: commit.id.clone(),
            author: commit.author.clone(),
            message: commit.message.clone(),
            changes,
        });
    }

    record_metrics(registry, &stats, &skips);
    let project = corpus::Project {
        user: "git".to_owned(),
        name: project_name(repo),
        facts: corpus::ProjectFacts::default(),
        commits: ingested_commits,
    };
    Ok(IngestReport {
        corpus: corpus::Corpus {
            projects: vec![project],
        },
        stats,
        skips,
    })
}

/// The (pre, post) blob fetches for one planned file.
type FetchedPair = (Option<BlobFetch>, Option<BlobFetch>);

/// Fetches every blob a commit's plan needs, in bounded batches, and
/// reassembles (pre, post) per planned file.
fn fetch_planned(
    catfile: &mut CatFile,
    planned: &[PlannedFile],
    limits: &IngestLimits,
    registry: &mut MetricsRegistry,
) -> Result<Vec<FetchedPair>, GitError> {
    let specs: Vec<String> = planned
        .iter()
        .flat_map(|f| [f.pre.clone(), f.post.clone()])
        .flatten()
        .collect();
    let mut fetched: Vec<BlobFetch> = Vec::with_capacity(specs.len());
    for batch in specs.chunks(limits.catfile_batch.max(1)) {
        let sw = Stopwatch::start();
        fetched.extend(catfile.fetch(batch, limits.max_blob_bytes)?);
        registry.record_span("gitsrc.catfile.batch", sw.elapsed());
    }
    let mut it = fetched.into_iter();
    Ok(planned
        .iter()
        .map(|f| {
            let pre = f.pre.as_ref().map(|_| it.next().expect("one per spec"));
            let post = f.post.as_ref().map(|_| it.next().expect("one per spec"));
            (pre, post)
        })
        .collect())
}

/// Runs the single enumeration `git log`, treating an empty history as
/// an empty walk rather than an error.
///
/// The rev-range is the only caller-controlled argument, so it is both
/// rejected when option-shaped (a leading `-` could smuggle git options
/// like `--output=<path>` through remote callers such as
/// `POST /mine-repo`) and fenced behind `--end-of-options` (git ≥
/// 2.24), which forces git to parse everything after it as a revision.
fn run_log(repo: &Path, opts: &IngestOptions) -> Result<String, GitError> {
    let mut cmd = Command::new("git");
    cmd.arg("-C").arg(repo).args([
        "log",
        "--reverse",
        "--no-merges",
        "--date-order",
        "-M",
        "--name-status",
        &format!("--format={}", log::LOG_FORMAT),
    ]);
    if let Some(range) = &opts.rev_range {
        if range.starts_with('-') {
            return Err(GitError::Options(format!(
                "rev range {range:?} must not start with '-'"
            )));
        }
        cmd.arg("--end-of-options");
        cmd.arg(range);
    }
    cmd.arg("--");
    let output = cmd
        .output()
        .map_err(|e| GitError::Spawn(format!("git log: {e}")))?;
    if !output.status.success() {
        let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
        if stderr.contains("does not have any commits") {
            return Ok(String::new());
        }
        return Err(GitError::Log {
            status: output.status.code().unwrap_or(-1),
            stderr,
        });
    }
    String::from_utf8(output.stdout)
        .map_err(|_| GitError::Protocol("git log output is not UTF-8".to_owned()))
}

/// Counter/gauge names under the `gitsrc.` prefix, recorded once per
/// walk so repo mines carry the same observability discipline as
/// synthetic ones.
fn record_metrics(registry: &mut MetricsRegistry, stats: &IngestStats, skips: &[IngestSkip]) {
    registry.inc("gitsrc.commits_walked", stats.commits_walked as u64);
    registry.inc("gitsrc.commits_ingested", stats.commits_ingested as u64);
    registry.inc("gitsrc.files_seen", stats.files_seen as u64);
    registry.inc("gitsrc.non_java", stats.non_java as u64);
    registry.inc("gitsrc.pairs", stats.pairs as u64);
    registry.inc("gitsrc.renames_followed", stats.renames_followed as u64);
    registry.inc("gitsrc.additions", stats.additions as u64);
    registry.inc("gitsrc.deletions", stats.deletions as u64);
    registry.inc("gitsrc.blob_bytes", stats.blob_bytes);
    for skip in skips {
        registry.inc(&format!("gitsrc.skipped.{}", skip.kind.name()), 1);
    }
}

/// Path-independent project name: the repository directory's basename.
fn project_name(repo: &Path) -> String {
    let canonical = repo.canonicalize().unwrap_or_else(|_| repo.to_path_buf());
    canonical
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "repo".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_kinds_have_stable_names() {
        let names: Vec<&str> = SkipKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "oversized",
                "non-utf8",
                "missing",
                "commit-file-budget",
                "unknown-status"
            ]
        );
    }

    #[test]
    fn default_limits_are_sane() {
        let limits = IngestLimits::default();
        assert!(limits.max_blob_bytes >= 1 << 16);
        assert!(limits.max_files_per_commit >= 1);
        assert!(limits.catfile_batch >= 1);
    }

    #[test]
    fn project_name_falls_back_for_unresolvable_paths() {
        assert_eq!(project_name(Path::new("/definitely/not/here/x")), "x");
    }
}
