//! Batched blob extraction over one long-lived `git cat-file --batch`
//! child.
//!
//! cat-file's batch protocol answers each request line
//! (`<rev>:<path>\n`) with either
//! `<oid> <type> <size>\n<size bytes>\n` or `<spec> missing\n`.
//! Requests are pipelined in bounded batches: the client writes at most
//! [`crate::IngestLimits::catfile_batch`] request lines **and** at most
//! [`MAX_BATCH_REQUEST_BYTES`] of request text before reading the
//! matching responses back. The count bound alone is not enough — a
//! batch of long path specs can exceed the ~64 KiB stdin pipe buffer
//! while the child is itself blocked writing a response nobody has
//! drained yet (the classic cat-file deadlock) — so [`CatFile::fetch`]
//! additionally splits on total request bytes, keeping every write
//! comfortably inside one pipe buffer.
//!
//! Every response is fully consumed even when the blob is rejected —
//! an oversized blob is read and discarded byte-for-byte — so the
//! stream stays request/response aligned no matter which degradation
//! path a blob takes.

use crate::GitError;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

/// Outcome of fetching one blob spec. Only [`BlobFetch::Content`]
/// yields text for mining; every other variant quarantines the file it
/// belongs to (never the commit, never the run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobFetch {
    /// UTF-8 blob content within the size budget.
    Content(String),
    /// Object does not exist (garbled path, shallow clone boundary…).
    Missing,
    /// Blob exceeds the per-blob byte budget; content discarded.
    Oversized { size: u64 },
    /// Blob bytes are not valid UTF-8 (likely binary mislabeled .java).
    NonUtf8,
}

/// Most request bytes written before draining responses: half of the
/// smallest common pipe buffer (64 KiB on Linux), so a full batch plus
/// the child's own buffering can never wedge both pipes at once.
pub const MAX_BATCH_REQUEST_BYTES: usize = 32 << 10;

/// End index of the sub-batch starting at `start` whose request lines
/// (`spec` + newline each) fit in `max_bytes`. Always advances by at
/// least one spec: a single over-long spec is its own sub-batch, which
/// is safe because the child has no undrained response backlog while
/// its first request is still being written.
fn batch_end(specs: &[String], start: usize, max_bytes: usize) -> usize {
    let mut end = start;
    let mut bytes = 0usize;
    while end < specs.len() {
        let line = specs[end].len() + 1;
        if end > start && bytes + line > max_bytes {
            break;
        }
        bytes += line;
        end += 1;
    }
    end
}

/// A running `git cat-file --batch` child scoped to one repository.
pub struct CatFile {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl CatFile {
    /// Spawns the batch child for `repo`.
    pub fn spawn(repo: &Path) -> Result<Self, GitError> {
        let mut child = Command::new("git")
            .arg("-C")
            .arg(repo)
            .args(["cat-file", "--batch"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| GitError::Spawn(format!("git cat-file --batch: {e}")))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Ok(CatFile {
            child,
            stdin,
            stdout,
        })
    }

    /// Fetches one batch of specs (`<rev>:<path>` each), returning one
    /// [`BlobFetch`] per spec in request order. The caller bounds the
    /// batch *count*; this method additionally bounds the request
    /// *bytes*, splitting into write-flush-drain sub-batches of at most
    /// [`MAX_BATCH_REQUEST_BYTES`] so the stdin pipe can never fill
    /// while the child is blocked writing an undrained response.
    pub fn fetch(
        &mut self,
        specs: &[String],
        max_blob_bytes: u64,
    ) -> Result<Vec<BlobFetch>, GitError> {
        let mut results = Vec::with_capacity(specs.len());
        let mut start = 0;
        while start < specs.len() {
            let end = batch_end(specs, start, MAX_BATCH_REQUEST_BYTES);
            let window = &specs[start..end];
            let mut request = String::new();
            for spec in window {
                request.push_str(spec);
                request.push('\n');
            }
            self.stdin
                .write_all(request.as_bytes())
                .and_then(|()| self.stdin.flush())
                .map_err(|e| GitError::Io(format!("cat-file request write: {e}")))?;
            for spec in window {
                results.push(self.read_response(spec, max_blob_bytes)?);
            }
            start = end;
        }
        Ok(results)
    }

    /// Reads exactly one response, keeping the stream aligned on every
    /// path (including discarding oversized payloads).
    fn read_response(&mut self, spec: &str, max_blob_bytes: u64) -> Result<BlobFetch, GitError> {
        let mut header = String::new();
        let n = self
            .stdout
            .read_line(&mut header)
            .map_err(|e| GitError::Io(format!("cat-file response read: {e}")))?;
        if n == 0 {
            return Err(GitError::Protocol(format!(
                "cat-file stream closed before response for {spec:?}"
            )));
        }
        let header = header.trim_end_matches('\n');
        if header.ends_with(" missing") || header.ends_with(" ambiguous") {
            return Ok(BlobFetch::Missing);
        }
        // `<oid> <type> <size>`
        let mut fields = header.split(' ');
        let (Some(_oid), Some(kind), Some(size), None) =
            (fields.next(), fields.next(), fields.next(), fields.next())
        else {
            return Err(GitError::Protocol(format!(
                "unrecognized cat-file header {header:?} for {spec:?}"
            )));
        };
        let size: u64 = size
            .parse()
            .map_err(|_| GitError::Protocol(format!("bad size in cat-file header {header:?}")))?;
        // Payload is `size` bytes plus a trailing LF, always consumed.
        if kind != "blob" || size > max_blob_bytes {
            self.discard(size + 1)?;
            return Ok(if kind == "blob" {
                BlobFetch::Oversized { size }
            } else {
                // Tree/commit at a path spec: treat like missing text.
                BlobFetch::Missing
            });
        }
        let mut buf = vec![0u8; size as usize];
        self.stdout
            .read_exact(&mut buf)
            .map_err(|e| GitError::Io(format!("cat-file payload read: {e}")))?;
        self.discard(1)?;
        Ok(match String::from_utf8(buf) {
            Ok(text) => BlobFetch::Content(text),
            Err(_) => BlobFetch::NonUtf8,
        })
    }

    /// Reads and throws away `n` bytes from the response stream.
    fn discard(&mut self, n: u64) -> Result<(), GitError> {
        let copied = std::io::copy(&mut (&mut self.stdout).take(n), &mut std::io::sink())
            .map_err(|e| GitError::Io(format!("cat-file payload discard: {e}")))?;
        if copied != n {
            return Err(GitError::Protocol(format!(
                "cat-file stream truncated: wanted {n} bytes, got {copied}"
            )));
        }
        Ok(())
    }
}

impl Drop for CatFile {
    fn drop(&mut self) {
        // Closing stdin ends the batch session; reap the child so a
        // long mine doesn't accumulate zombies.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(lens: &[usize]) -> Vec<String> {
        lens.iter().map(|&n| "x".repeat(n)).collect()
    }

    #[test]
    fn batch_end_packs_specs_up_to_the_byte_budget() {
        // Lines cost len+1; budget 10 fits 4+1 and 4+1 but not a third.
        let s = specs(&[4, 4, 4]);
        assert_eq!(batch_end(&s, 0, 10), 2);
        assert_eq!(batch_end(&s, 2, 10), 3);
    }

    #[test]
    fn batch_end_always_advances_past_an_oversized_spec() {
        let s = specs(&[100, 4]);
        assert_eq!(batch_end(&s, 0, 10), 1);
        assert_eq!(batch_end(&s, 1, 10), 2);
    }

    #[test]
    fn batch_end_covers_every_spec_exactly_once() {
        let s = specs(&[3, 90, 7, 7, 7, 1, 200, 2]);
        let mut start = 0;
        let mut seen = 0;
        while start < s.len() {
            let end = batch_end(&s, start, 16);
            assert!(end > start, "sub-batch must make progress");
            let bytes: usize = s[start..end].iter().map(|x| x.len() + 1).sum();
            assert!(end - start == 1 || bytes <= 16);
            seen += end - start;
            start = end;
        }
        assert_eq!(seen, s.len());
    }
}
