//! Batched blob extraction over one long-lived `git cat-file --batch`
//! child.
//!
//! cat-file's batch protocol answers each request line
//! (`<rev>:<path>\n`) with either
//! `<oid> <type> <size>\n<size bytes>\n` or `<spec> missing\n`.
//! Requests are pipelined in bounded batches: the client writes at most
//! [`crate::IngestLimits::catfile_batch`] request lines before reading
//! the matching responses back, so neither side's pipe buffer can fill
//! while the other end waits (the classic cat-file deadlock).
//!
//! Every response is fully consumed even when the blob is rejected —
//! an oversized blob is read and discarded byte-for-byte — so the
//! stream stays request/response aligned no matter which degradation
//! path a blob takes.

use crate::GitError;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

/// Outcome of fetching one blob spec. Only [`BlobFetch::Content`]
/// yields text for mining; every other variant quarantines the file it
/// belongs to (never the commit, never the run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobFetch {
    /// UTF-8 blob content within the size budget.
    Content(String),
    /// Object does not exist (garbled path, shallow clone boundary…).
    Missing,
    /// Blob exceeds the per-blob byte budget; content discarded.
    Oversized { size: u64 },
    /// Blob bytes are not valid UTF-8 (likely binary mislabeled .java).
    NonUtf8,
}

/// A running `git cat-file --batch` child scoped to one repository.
pub struct CatFile {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl CatFile {
    /// Spawns the batch child for `repo`.
    pub fn spawn(repo: &Path) -> Result<Self, GitError> {
        let mut child = Command::new("git")
            .arg("-C")
            .arg(repo)
            .args(["cat-file", "--batch"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| GitError::Spawn(format!("git cat-file --batch: {e}")))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Ok(CatFile {
            child,
            stdin,
            stdout,
        })
    }

    /// Fetches one batch of specs (`<rev>:<path>` each), returning one
    /// [`BlobFetch`] per spec in request order. The caller bounds the
    /// batch size; this method writes all requests, flushes once, then
    /// drains all responses.
    pub fn fetch(
        &mut self,
        specs: &[String],
        max_blob_bytes: u64,
    ) -> Result<Vec<BlobFetch>, GitError> {
        let mut request = String::new();
        for spec in specs {
            request.push_str(spec);
            request.push('\n');
        }
        self.stdin
            .write_all(request.as_bytes())
            .and_then(|()| self.stdin.flush())
            .map_err(|e| GitError::Io(format!("cat-file request write: {e}")))?;
        let mut results = Vec::with_capacity(specs.len());
        for spec in specs {
            results.push(self.read_response(spec, max_blob_bytes)?);
        }
        Ok(results)
    }

    /// Reads exactly one response, keeping the stream aligned on every
    /// path (including discarding oversized payloads).
    fn read_response(&mut self, spec: &str, max_blob_bytes: u64) -> Result<BlobFetch, GitError> {
        let mut header = String::new();
        let n = self
            .stdout
            .read_line(&mut header)
            .map_err(|e| GitError::Io(format!("cat-file response read: {e}")))?;
        if n == 0 {
            return Err(GitError::Protocol(format!(
                "cat-file stream closed before response for {spec:?}"
            )));
        }
        let header = header.trim_end_matches('\n');
        if header.ends_with(" missing") || header.ends_with(" ambiguous") {
            return Ok(BlobFetch::Missing);
        }
        // `<oid> <type> <size>`
        let mut fields = header.split(' ');
        let (Some(_oid), Some(kind), Some(size), None) =
            (fields.next(), fields.next(), fields.next(), fields.next())
        else {
            return Err(GitError::Protocol(format!(
                "unrecognized cat-file header {header:?} for {spec:?}"
            )));
        };
        let size: u64 = size
            .parse()
            .map_err(|_| GitError::Protocol(format!("bad size in cat-file header {header:?}")))?;
        // Payload is `size` bytes plus a trailing LF, always consumed.
        if kind != "blob" || size > max_blob_bytes {
            self.discard(size + 1)?;
            return Ok(if kind == "blob" {
                BlobFetch::Oversized { size }
            } else {
                // Tree/commit at a path spec: treat like missing text.
                BlobFetch::Missing
            });
        }
        let mut buf = vec![0u8; size as usize];
        self.stdout
            .read_exact(&mut buf)
            .map_err(|e| GitError::Io(format!("cat-file payload read: {e}")))?;
        self.discard(1)?;
        Ok(match String::from_utf8(buf) {
            Ok(text) => BlobFetch::Content(text),
            Err(_) => BlobFetch::NonUtf8,
        })
    }

    /// Reads and throws away `n` bytes from the response stream.
    fn discard(&mut self, n: u64) -> Result<(), GitError> {
        let copied = std::io::copy(&mut (&mut self.stdout).take(n), &mut std::io::sink())
            .map_err(|e| GitError::Io(format!("cat-file payload discard: {e}")))?;
        if copied != n {
            return Err(GitError::Protocol(format!(
                "cat-file stream truncated: wanted {n} bytes, got {copied}"
            )));
        }
        Ok(())
    }
}

impl Drop for CatFile {
    fn drop(&mut self) {
        // Closing stdin ends the batch session; reap the child so a
        // long mine doesn't accumulate zombies.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}
