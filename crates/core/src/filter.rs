//! The four filters of §4.2: `fsame`, `fadd`, `frem`, `fdup`, applied
//! in that order, with per-stage survivor counts (Figure 6).

use crate::pipeline::MinedUsageChange;
use std::collections::BTreeSet;
use usagegraph::FeaturePath;

/// Which filter stage removed a usage change (or none).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterStage {
    /// Removed by `fsame` (no features added or removed).
    FSame,
    /// Removed by `fadd` (pure addition).
    FAdd,
    /// Removed by `frem` (pure removal).
    FRem,
    /// Removed by `fdup` (duplicate of an earlier change).
    FDup,
    /// Survived all filters.
    Remaining,
}

/// Survivor counts after each stage (one Figure 6 row, minus the class
/// name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterStats {
    /// Usage changes before filtering.
    pub total: usize,
    /// Remaining after `fsame`.
    pub after_fsame: usize,
    /// Remaining after `fadd`.
    pub after_fadd: usize,
    /// Remaining after `frem`.
    pub after_frem: usize,
    /// Remaining after `fdup`.
    pub after_fdup: usize,
}

/// A dedup key: the usage change's feature sets.
fn dup_key(change: &MinedUsageChange) -> (String, Vec<FeaturePath>, Vec<FeaturePath>) {
    (
        change.class.clone(),
        change.change.removed.clone(),
        change.change.added.clone(),
    )
}

/// Tags every change with the stage that removes it. `seen` carries
/// dedup state so callers can run several batches consistently.
pub fn stage_changes(
    changes: &[MinedUsageChange],
) -> Vec<(FilterStage, &MinedUsageChange)> {
    let mut seen: BTreeSet<(String, Vec<FeaturePath>, Vec<FeaturePath>)> =
        BTreeSet::new();
    changes
        .iter()
        .map(|c| {
            let stage = if c.change.is_same() {
                FilterStage::FSame
            } else if c.change.is_pure_addition() {
                FilterStage::FAdd
            } else if c.change.is_pure_removal() {
                FilterStage::FRem
            } else if !seen.insert(dup_key(c)) {
                FilterStage::FDup
            } else {
                FilterStage::Remaining
            };
            (stage, c)
        })
        .collect()
}

/// Applies the filters, returning the surviving changes and the
/// per-stage statistics.
pub fn apply_filters(
    changes: Vec<MinedUsageChange>,
) -> (Vec<MinedUsageChange>, FilterStats) {
    let staged = stage_changes(&changes);
    let mut stats = FilterStats { total: changes.len(), ..FilterStats::default() };
    let mut keep_indices = Vec::new();
    for (idx, (stage, _)) in staged.iter().enumerate() {
        match stage {
            FilterStage::FSame => {}
            FilterStage::FAdd => stats.after_fsame += 1,
            FilterStage::FRem => {
                stats.after_fsame += 1;
                stats.after_fadd += 1;
            }
            FilterStage::FDup => {
                stats.after_fsame += 1;
                stats.after_fadd += 1;
                stats.after_frem += 1;
            }
            FilterStage::Remaining => {
                stats.after_fsame += 1;
                stats.after_fadd += 1;
                stats.after_frem += 1;
                stats.after_fdup += 1;
                keep_indices.push(idx);
            }
        }
    }
    let mut keep_set: Vec<bool> = vec![false; changes.len()];
    for idx in keep_indices {
        keep_set[idx] = true;
    }
    let kept = changes
        .into_iter()
        .zip(keep_set)
        .filter_map(|(c, keep)| keep.then_some(c))
        .collect();
    (kept, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ChangeMeta;
    use usagegraph::{UsageChange, UsageDag};

    fn mk(class: &str, removed: &[&str], added: &[&str]) -> MinedUsageChange {
        let path = |s: &&str| FeaturePath(vec![class.to_owned(), (*s).to_owned()]);
        MinedUsageChange {
            meta: ChangeMeta {
                project: "u/p".into(),
                commit: "c".into(),
                message: String::new(),
                path: "A.java".into(),
            },
            class: class.to_owned(),
            old_dag: UsageDag::empty(class),
            new_dag: UsageDag::empty(class),
            change: UsageChange {
                class: class.to_owned(),
                removed: removed.iter().map(path).collect(),
                added: added.iter().map(path).collect(),
            },
        }
    }

    #[test]
    fn filters_apply_in_order() {
        let changes = vec![
            mk("Cipher", &[], &[]),               // fsame
            mk("Cipher", &[], &["x"]),            // fadd
            mk("Cipher", &["y"], &[]),            // frem
            mk("Cipher", &["a"], &["b"]),         // remaining
            mk("Cipher", &["a"], &["b"]),         // fdup
            mk("Cipher", &["a"], &["c"]),         // remaining
        ];
        let (kept, stats) = apply_filters(changes);
        assert_eq!(stats.total, 6);
        assert_eq!(stats.after_fsame, 5);
        assert_eq!(stats.after_fadd, 4);
        assert_eq!(stats.after_frem, 3);
        assert_eq!(stats.after_fdup, 2);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn duplicate_detection_is_class_scoped() {
        let changes = vec![
            mk("Cipher", &["a"], &["b"]),
            mk("MessageDigest", &["a"], &["b"]),
        ];
        let (kept, _) = apply_filters(changes);
        assert_eq!(kept.len(), 2, "same features on different classes are distinct");
    }

    #[test]
    fn empty_input() {
        let (kept, stats) = apply_filters(Vec::new());
        assert!(kept.is_empty());
        assert_eq!(stats, FilterStats::default());
    }
}
