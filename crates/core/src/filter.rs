//! The four filters of §4.2: `fsame`, `fadd`, `frem`, `fdup`, applied
//! in that order, with per-stage survivor counts (Figure 6).

use crate::decision::{record_decision, DecisionReason};
use crate::pipeline::MinedUsageChange;
use obs::{MetricsRegistry, Stopwatch, TraceSink};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// Which filter stage removed a usage change (or none).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterStage {
    /// Removed by `fsame` (no features added or removed).
    FSame,
    /// Removed by `fadd` (pure addition).
    FAdd,
    /// Removed by `frem` (pure removal).
    FRem,
    /// Removed by `fdup` (duplicate of an earlier change).
    FDup,
    /// Survived all filters.
    Remaining,
}

/// Survivor counts after each stage (one Figure 6 row, minus the class
/// name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterStats {
    /// Usage changes before filtering.
    pub total: usize,
    /// Remaining after `fsame`.
    pub after_fsame: usize,
    /// Remaining after `fadd`.
    pub after_fadd: usize,
    /// Remaining after `frem`.
    pub after_frem: usize,
    /// Remaining after `fdup`.
    pub after_fdup: usize,
}

impl FilterStats {
    /// `true` when the funnel invariant holds:
    /// `total ≥ after_fsame ≥ after_fadd ≥ after_frem ≥ after_fdup`.
    /// Asserted in debug builds at the filter stage boundary.
    pub fn is_monotone(&self) -> bool {
        self.total >= self.after_fsame
            && self.after_fsame >= self.after_fadd
            && self.after_fadd >= self.after_frem
            && self.after_frem >= self.after_fdup
    }

    /// Publishes the funnel as `filter.*` counters so metrics snapshots
    /// reconcile exactly with Figure 6.
    pub fn record(&self, registry: &mut MetricsRegistry) {
        registry.inc("filter.total", self.total as u64);
        registry.inc("filter.after_fsame", self.after_fsame as u64);
        registry.inc("filter.after_fadd", self.after_fadd as u64);
        registry.inc("filter.after_frem", self.after_frem as u64);
        registry.inc("filter.after_fdup", self.after_fdup as u64);
    }
}

/// A dedup key: a 128-bit fingerprint of the usage change's class and
/// feature sets.
///
/// Fingerprinting (two independent deterministic `SipHash` passes)
/// replaces the earlier owned `(String, Vec<FeaturePath>, Vec<FeaturePath>)`
/// key, which cloned all three fields for every staged change. The two
/// halves are domain-separated, so a collision requires two distinct
/// changes to collide under both keyed hashes at once (~2⁻¹²⁸ per
/// pair) — negligible against corpus-scale dedup sets.
pub type DupKey = (u64, u64);

/// Caller-owned `fdup` state: each key maps to the *change fingerprint*
/// ([`crate::pipeline::ChangeMeta::fingerprint`]) of its first
/// occurrence, which is what a later duplicate's
/// [`DecisionReason::DupOf`] decision names. (A plain set would suffice
/// for staging alone; the map is what makes `dup_of(<fingerprint>)`
/// provenance possible.)
pub type SeenDups = BTreeMap<DupKey, String>;

fn dup_key(change: &MinedUsageChange) -> DupKey {
    let fields = (&change.class, &change.change.removed, &change.change.added);
    let mut h1 = DefaultHasher::new();
    fields.hash(&mut h1);
    let mut h2 = DefaultHasher::new();
    0xD1FF_C0DEu64.hash(&mut h2);
    fields.hash(&mut h2);
    (h1.finish(), h2.finish())
}

/// Tags every change with the stage that removes it, deduplicating
/// within this call only. For batched mining where `fdup` must be
/// consistent *across* batches (the paper dedups corpus-wide), use
/// [`stage_changes_with_seen`] with one shared `seen` set.
pub fn stage_changes(changes: &[MinedUsageChange]) -> Vec<(FilterStage, &MinedUsageChange)> {
    stage_changes_with_seen(changes, &mut SeenDups::new())
}

/// [`stage_changes`] with caller-owned dedup state: `seen` carries the
/// `fdup` fingerprints forward, so staging several batches with the
/// same map yields exactly the stages a single concatenated run would
/// (a change is a duplicate if *any* earlier batch already produced
/// its key).
pub fn stage_changes_with_seen<'a>(
    changes: &'a [MinedUsageChange],
    seen: &mut SeenDups,
) -> Vec<(FilterStage, &'a MinedUsageChange)> {
    changes
        .iter()
        .map(|c| {
            let stage = if c.change.is_same() {
                FilterStage::FSame
            } else if c.change.is_pure_addition() {
                FilterStage::FAdd
            } else if c.change.is_pure_removal() {
                FilterStage::FRem
            } else {
                match seen.entry(dup_key(c)) {
                    std::collections::btree_map::Entry::Occupied(_) => FilterStage::FDup,
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(c.meta.fingerprint.clone());
                        FilterStage::Remaining
                    }
                }
            };
            (stage, c)
        })
        .collect()
}

/// Applies the filters, returning the surviving changes and the
/// per-stage statistics.
pub fn apply_filters(changes: Vec<MinedUsageChange>) -> (Vec<MinedUsageChange>, FilterStats) {
    apply_filters_with_seen(changes, &mut SeenDups::new())
}

/// [`apply_filters`] with caller-owned `fdup` state (see
/// [`stage_changes_with_seen`]): filtering shard outputs batch-by-batch
/// with one shared `seen` keeps corpus-wide dedup identical to
/// filtering the concatenated result in one call.
pub fn apply_filters_with_seen(
    changes: Vec<MinedUsageChange>,
    seen: &mut SeenDups,
) -> (Vec<MinedUsageChange>, FilterStats) {
    let stages: Vec<FilterStage> = stage_changes_with_seen(&changes, seen)
        .iter()
        .map(|(stage, _)| *stage)
        .collect();
    split_staged(changes, &stages)
}

/// Folds staged changes into (survivors, funnel stats) — the single
/// accounting path shared by the plain and traced filter entry points.
fn split_staged(
    changes: Vec<MinedUsageChange>,
    stages: &[FilterStage],
) -> (Vec<MinedUsageChange>, FilterStats) {
    let mut stats = FilterStats {
        total: changes.len(),
        ..FilterStats::default()
    };
    let mut keep_set: Vec<bool> = vec![false; changes.len()];
    for (idx, stage) in stages.iter().enumerate() {
        match stage {
            FilterStage::FSame => {}
            FilterStage::FAdd => stats.after_fsame += 1,
            FilterStage::FRem => {
                stats.after_fsame += 1;
                stats.after_fadd += 1;
            }
            FilterStage::FDup => {
                stats.after_fsame += 1;
                stats.after_fadd += 1;
                stats.after_frem += 1;
            }
            FilterStage::Remaining => {
                stats.after_fsame += 1;
                stats.after_fadd += 1;
                stats.after_frem += 1;
                stats.after_fdup += 1;
                keep_set[idx] = true;
            }
        }
    }
    let kept: Vec<MinedUsageChange> = changes
        .into_iter()
        .zip(keep_set)
        .filter_map(|(c, keep)| keep.then_some(c))
        .collect();
    debug_assert!(stats.is_monotone(), "filter funnel not monotone: {stats:?}");
    debug_assert_eq!(
        stats.after_fdup,
        kept.len(),
        "survivors must equal after_fdup"
    );
    (kept, stats)
}

/// [`apply_filters`] with stage observability: records the
/// `filter.apply` timing span and the `filter.*` funnel counters into
/// `registry`.
pub fn apply_filters_with_metrics(
    changes: Vec<MinedUsageChange>,
    registry: &mut MetricsRegistry,
) -> (Vec<MinedUsageChange>, FilterStats) {
    let (kept, stats) = registry.time("filter.apply", || apply_filters(changes));
    stats.record(registry);
    debug_assert!(obs::check_funnel(
        registry,
        &[
            "filter.total",
            "filter.after_fsame",
            "filter.after_fadd",
            "filter.after_frem",
            "filter.after_fdup",
        ],
    )
    .is_ok());
    (kept, stats)
}

/// [`apply_filters_with_metrics`] with caller-owned `fdup` state and
/// structured tracing: wraps the stage in a `filter.apply` span and
/// emits one decision event per usage change — `kept`,
/// `filtered(refactoring|pure_addition|pure_removal)`, or
/// `dup_of(<fingerprint>)` naming the first occurrence the duplicate
/// collapsed into. The `index` attribute is the change's position in
/// the filter input (offset by `index_base` so batched calls number
/// changes corpus-wide).
pub fn apply_filters_traced(
    changes: Vec<MinedUsageChange>,
    seen: &mut SeenDups,
    registry: &mut MetricsRegistry,
    trace: &mut TraceSink,
    index_base: usize,
) -> (Vec<MinedUsageChange>, FilterStats) {
    let clock = Stopwatch::start();
    let span = trace.begin_with("filter.apply", |a| {
        a.u64("changes", changes.len() as u64);
    });
    let staged = stage_changes_with_seen(&changes, seen);
    let mut stages: Vec<FilterStage> = Vec::with_capacity(staged.len());
    for (idx, (stage, change)) in staged.iter().enumerate() {
        stages.push(*stage);
        let reason = match stage {
            FilterStage::FSame => DecisionReason::FilteredRefactoring,
            FilterStage::FAdd => DecisionReason::FilteredPureAddition,
            FilterStage::FRem => DecisionReason::FilteredPureRemoval,
            FilterStage::FDup => {
                DecisionReason::DupOf(seen.get(&dup_key(change)).cloned().unwrap_or_default())
            }
            FilterStage::Remaining => DecisionReason::Kept,
        };
        record_decision(trace, &change.meta, &reason, |a| {
            a.u64("index", (index_base + idx) as u64);
            a.str("class", change.class.as_str());
        });
    }
    drop(staged);
    let (kept, stats) = split_staged(changes, &stages);
    trace.end(span);
    registry.record_span("filter.apply", clock.elapsed());
    stats.record(registry);
    debug_assert!(obs::check_funnel(
        registry,
        &[
            "filter.total",
            "filter.after_fsame",
            "filter.after_fadd",
            "filter.after_frem",
            "filter.after_fdup",
        ],
    )
    .is_ok());
    (kept, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ChangeMeta;
    use std::collections::BTreeSet;
    use usagegraph::{FeaturePath, UsageChange, UsageDag};

    fn mk(class: &str, removed: &[&str], added: &[&str]) -> MinedUsageChange {
        let path = |s: &&str| FeaturePath(vec![class.into(), (*s).into()]);
        MinedUsageChange {
            meta: ChangeMeta {
                project: "u/p".into(),
                commit: "c".into(),
                author: String::new(),
                message: String::new(),
                path: "A.java".into(),
                fingerprint: format!("fp:{class}:{removed:?}->{added:?}"),
            },
            class: class.to_owned(),
            old_dag: UsageDag::empty(class),
            new_dag: UsageDag::empty(class),
            change: UsageChange {
                class: class.to_owned(),
                removed: removed.iter().map(path).collect(),
                added: added.iter().map(path).collect(),
            },
        }
    }

    #[test]
    fn filters_apply_in_order() {
        let changes = vec![
            mk("Cipher", &[], &[]),       // fsame
            mk("Cipher", &[], &["x"]),    // fadd
            mk("Cipher", &["y"], &[]),    // frem
            mk("Cipher", &["a"], &["b"]), // remaining
            mk("Cipher", &["a"], &["b"]), // fdup
            mk("Cipher", &["a"], &["c"]), // remaining
        ];
        let (kept, stats) = apply_filters(changes);
        assert_eq!(stats.total, 6);
        assert_eq!(stats.after_fsame, 5);
        assert_eq!(stats.after_fadd, 4);
        assert_eq!(stats.after_frem, 3);
        assert_eq!(stats.after_fdup, 2);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn duplicate_detection_is_class_scoped() {
        let changes = vec![
            mk("Cipher", &["a"], &["b"]),
            mk("MessageDigest", &["a"], &["b"]),
        ];
        let (kept, _) = apply_filters(changes);
        assert_eq!(
            kept.len(),
            2,
            "same features on different classes are distinct"
        );
    }

    #[test]
    fn empty_input() {
        let (kept, stats) = apply_filters(Vec::new());
        assert!(kept.is_empty());
        assert_eq!(stats, FilterStats::default());
    }

    /// The pre-fingerprint dedup key: clones class + both feature sets.
    /// Retained here as the specification the hash key must agree with.
    fn reference_key(change: &MinedUsageChange) -> (String, Vec<FeaturePath>, Vec<FeaturePath>) {
        (
            change.class.clone(),
            change.change.removed.clone(),
            change.change.added.clone(),
        )
    }

    #[test]
    fn hash_key_dedups_identically_to_cloning_key() {
        // A battery with every collision-relevant shape: exact dups,
        // class-only differences, removed/added swaps, prefix overlap.
        let changes = vec![
            mk("Cipher", &["a"], &["b"]),
            mk("Cipher", &["a"], &["b"]),        // dup of 0
            mk("MessageDigest", &["a"], &["b"]), // other class
            mk("Cipher", &["b"], &["a"]),        // swapped sides
            mk("Cipher", &["a", "b"], &["c"]),
            mk("Cipher", &["a"], &["b", "c"]),
            mk("Cipher", &["a", "b"], &["c"]), // dup of 4
            mk("Cipher", &[], &["b"]),         // fadd, never keyed
            mk("Cipher", &["x"], &["b"]),
        ];
        let mut by_reference = BTreeSet::new();
        let mut by_hash = BTreeSet::new();
        for c in &changes {
            if c.change.is_same() || c.change.is_pure_addition() || c.change.is_pure_removal() {
                continue;
            }
            assert_eq!(
                by_reference.insert(reference_key(c)),
                by_hash.insert(dup_key(c)),
                "keys disagree on {c:?}"
            );
        }
        // And end-to-end: the staging decisions match the reference.
        let staged = stage_changes(&changes);
        let expected = [
            FilterStage::Remaining,
            FilterStage::FDup,
            FilterStage::Remaining,
            FilterStage::Remaining,
            FilterStage::Remaining,
            FilterStage::Remaining,
            FilterStage::FDup,
            FilterStage::FAdd,
            FilterStage::Remaining,
        ];
        let got: Vec<FilterStage> = staged.iter().map(|(s, _)| *s).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn shared_seen_dedups_across_batches_like_one_run() {
        let all = vec![
            mk("Cipher", &["a"], &["b"]),
            mk("Cipher", &["c"], &["d"]),
            mk("Cipher", &["a"], &["b"]), // dup of batch 1's first
            mk("Cipher", &["e"], &["f"]),
            mk("Cipher", &["c"], &["d"]), // dup of batch 1's second
        ];
        let one_shot: Vec<FilterStage> = stage_changes(&all).iter().map(|(s, _)| *s).collect();

        let mut seen = SeenDups::new();
        let mut batched = Vec::new();
        for batch in all.chunks(2) {
            batched.extend(
                stage_changes_with_seen(batch, &mut seen)
                    .iter()
                    .map(|(s, _)| *s),
            );
        }
        assert_eq!(batched, one_shot);

        // Fresh sets per batch would *not* reproduce the one-shot run —
        // the cross-batch duplicates would survive.
        let mut per_batch = Vec::new();
        for batch in all.chunks(2) {
            per_batch.extend(stage_changes(batch).iter().map(|(s, _)| *s));
        }
        assert_ne!(per_batch, one_shot, "test must exercise cross-batch dups");
    }

    #[test]
    fn apply_filters_with_seen_matches_concatenated_run() {
        let all = vec![
            mk("Cipher", &["a"], &["b"]),
            mk("Cipher", &[], &[]),
            mk("Cipher", &["a"], &["b"]),
            mk("Cipher", &["c"], &["d"]),
            mk("Cipher", &["a"], &["b"]),
        ];
        let (kept_once, stats_once) = apply_filters(all.clone());

        let mut seen = SeenDups::new();
        let mut kept_batched = Vec::new();
        let mut totals = FilterStats::default();
        for batch in all.chunks(2) {
            let (kept, stats) = apply_filters_with_seen(batch.to_vec(), &mut seen);
            kept_batched.extend(kept);
            totals.total += stats.total;
            totals.after_fsame += stats.after_fsame;
            totals.after_fadd += stats.after_fadd;
            totals.after_frem += stats.after_frem;
            totals.after_fdup += stats.after_fdup;
        }
        assert_eq!(kept_batched, kept_once);
        assert_eq!(totals, stats_once);
    }

    #[test]
    fn metrics_variant_publishes_the_funnel() {
        let changes = vec![
            mk("Cipher", &[], &[]),
            mk("Cipher", &["a"], &["b"]),
            mk("Cipher", &["a"], &["b"]),
        ];
        let mut reg = obs::MetricsRegistry::new();
        let (kept, stats) = apply_filters_with_metrics(changes, &mut reg);
        assert_eq!(kept.len(), 1);
        assert_eq!(reg.counter("filter.total"), stats.total as u64);
        assert_eq!(reg.counter("filter.after_fdup"), stats.after_fdup as u64);
        assert!(reg.span("filter.apply").is_some());
        obs::check_funnel(
            &reg,
            &[
                "filter.total",
                "filter.after_fsame",
                "filter.after_fadd",
                "filter.after_frem",
                "filter.after_fdup",
            ],
        )
        .unwrap();
    }
}
