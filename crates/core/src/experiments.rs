//! Drivers that regenerate every table and figure of the paper's
//! evaluation (§6). Each `figure*` method returns structured rows plus
//! a rendered text table, so tests can assert on the shape and the
//! bench binaries can print the table.

use crate::elicit::{elicit, render_dendrogram, Elicitation};
use crate::filter::{apply_filters, stage_changes, FilterStage, FilterStats};
use crate::pipeline::{DiffCode, MinedUsageChange, MiningResult};
use crate::report::Table;
use analysis::TARGET_CLASSES;
use corpus::Corpus;
use rules::{
    all_rules, classify_dag_pair, cryptolint_rules, ChangeClass, CheckedProject, CryptoChecker,
    ProjectContext, RuleStats,
};
use std::collections::BTreeMap;

/// A corpus mined once, shared by the per-figure drivers.
#[derive(Debug)]
pub struct Experiments {
    /// The corpus under study.
    pub corpus: Corpus,
    mining: MiningResult,
    pipeline: DiffCode,
    metrics: obs::MetricsRegistry,
}

impl Experiments {
    /// Mines `corpus` for all six target classes, using one worker per
    /// available core.
    pub fn new(corpus: Corpus) -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let mut metrics = obs::MetricsRegistry::new();
        corpus::corpus_stats(&corpus).record(&mut metrics);
        let mining =
            crate::pipeline::mine_parallel_with_metrics(&corpus, &[], threads, &mut metrics);
        Experiments {
            corpus,
            mining,
            pipeline: DiffCode::new(),
            metrics,
        }
    }

    /// The observability registry from mining (merged across worker
    /// shards): `mine.*` counters, the `mine.run`/`mine.change` spans,
    /// and the `corpus.*` gauges. The bench binaries report timings
    /// from these spans instead of their own ad-hoc clocks.
    pub fn metrics(&self) -> &obs::MetricsRegistry {
        &self.metrics
    }

    /// All mined usage changes.
    pub fn mined_changes(&self) -> &[MinedUsageChange] {
        &self.mining.changes
    }

    /// Number of code changes processed.
    pub fn code_changes(&self) -> usize {
        self.mining.stats.code_changes
    }

    // ------------------------------------------------------------------
    // Figure 6
    // ------------------------------------------------------------------

    /// Figure 6: per target class, usage-change counts after each
    /// filtering stage.
    pub fn figure6(&self) -> Vec<Figure6Row> {
        TARGET_CLASSES
            .iter()
            .map(|class| {
                let class_changes: Vec<MinedUsageChange> = self
                    .mining
                    .changes
                    .iter()
                    .filter(|c| c.class == *class)
                    .cloned()
                    .collect();
                let (_, stats) = apply_filters(class_changes);
                Figure6Row {
                    class: (*class).to_owned(),
                    stats,
                }
            })
            .collect()
    }

    /// Renders Figure 6 as a text table.
    pub fn figure6_table(&self) -> String {
        let mut table = Table::new([
            "Target API Class",
            "Usage Changes",
            "fsame",
            "fadd",
            "frem",
            "fdup",
        ]);
        for row in self.figure6() {
            table.row([
                row.class.clone(),
                row.stats.total.to_string(),
                row.stats.after_fsame.to_string(),
                row.stats.after_fadd.to_string(),
                row.stats.after_frem.to_string(),
                row.stats.after_fdup.to_string(),
            ]);
        }
        table.render()
    }

    // ------------------------------------------------------------------
    // Figure 7
    // ------------------------------------------------------------------

    /// Figure 7: per CryptoLint rule, fix/bug/none classification of
    /// the usage changes, and how many of each are removed by each
    /// filter.
    ///
    /// Classification follows the paper (§6.2): a change is a fix/bug
    /// if the rule's trigger state flips at the level of the whole
    /// *program version pair*; the flip is then attributed to the usage
    /// changes whose own object-level state flipped the same way.
    /// (Adding one more insecure usage to a program that already
    /// violates the rule is a non-semantic change with respect to it.)
    pub fn figure7(&self) -> Vec<Figure7Row> {
        let staged = stage_changes(&self.mining.changes);
        // Group usage changes by (code change, class) to evaluate the
        // program-level trigger state.
        let mut groups: BTreeMap<(String, String, String, String), Vec<usize>> = BTreeMap::new();
        for (idx, change) in self.mining.changes.iter().enumerate() {
            groups
                .entry((
                    change.meta.project.clone(),
                    change.meta.commit.clone(),
                    change.meta.path.clone(),
                    change.class.clone(),
                ))
                .or_default()
                .push(idx);
        }

        cryptolint_rules()
            .into_iter()
            .map(|rule| {
                let clause = &rule.positive[0];
                // Program-level classification per code change.
                let mut program_class: Vec<ChangeClass> =
                    vec![ChangeClass::NonSemantic; self.mining.changes.len()];
                for members in groups.values() {
                    if self.mining.changes[members[0]].class != rule.subject_class() {
                        continue;
                    }
                    let old_triggers = members
                        .iter()
                        .any(|&i| rules::clause_triggers(clause, &self.mining.changes[i].old_dag));
                    let new_triggers = members
                        .iter()
                        .any(|&i| rules::clause_triggers(clause, &self.mining.changes[i].new_dag));
                    let program = match (old_triggers, new_triggers) {
                        (true, false) => ChangeClass::Fix,
                        (false, true) => ChangeClass::Bug,
                        _ => ChangeClass::NonSemantic,
                    };
                    for &i in members {
                        program_class[i] = program;
                    }
                }

                let mut cells: BTreeMap<ChangeClass, Figure7Cell> = BTreeMap::from([
                    (ChangeClass::Fix, Figure7Cell::default()),
                    (ChangeClass::Bug, Figure7Cell::default()),
                    (ChangeClass::NonSemantic, Figure7Cell::default()),
                ]);
                for (idx, (stage, change)) in staged.iter().enumerate() {
                    if change.class != rule.subject_class() {
                        continue;
                    }
                    let object = classify_dag_pair(&rule, &change.old_dag, &change.new_dag);
                    let class = if object == program_class[idx] {
                        object
                    } else {
                        ChangeClass::NonSemantic
                    };
                    let cell = cells.get_mut(&class).expect("all classes present");
                    cell.total += 1;
                    match stage {
                        FilterStage::FSame => cell.fsame += 1,
                        FilterStage::FAdd => cell.fadd += 1,
                        FilterStage::FRem => cell.frem += 1,
                        FilterStage::FDup => cell.fdup += 1,
                        FilterStage::Remaining => cell.remaining += 1,
                    }
                }
                Figure7Row {
                    rule_id: rule.id.clone(),
                    class: rule.subject_class().to_owned(),
                    fix: cells[&ChangeClass::Fix],
                    bug: cells[&ChangeClass::Bug],
                    none: cells[&ChangeClass::NonSemantic],
                }
            })
            .collect()
    }

    /// Renders Figure 7 as a text table.
    pub fn figure7_table(&self) -> String {
        let mut table = Table::new([
            "Rule",
            "Type",
            "Total",
            "fsame",
            "fadd",
            "frem",
            "fdup",
            "Remaining",
        ]);
        for row in self.figure7() {
            for (label, cell) in [("fix", row.fix), ("bug", row.bug), ("none", row.none)] {
                table.row([
                    row.rule_id.clone(),
                    label.to_owned(),
                    cell.total.to_string(),
                    cell.fsame.to_string(),
                    cell.fadd.to_string(),
                    cell.frem.to_string(),
                    cell.fdup.to_string(),
                    cell.remaining.to_string(),
                ]);
            }
        }
        table.render()
    }

    // ------------------------------------------------------------------
    // Figure 8
    // ------------------------------------------------------------------

    /// Figure 8: hierarchical clustering of the filtered usage changes
    /// for one target class (the paper shows `Cipher`).
    pub fn figure8(&self, class: &str, threshold: f64) -> Figure8Output {
        let class_changes: Vec<MinedUsageChange> = self
            .mining
            .changes
            .iter()
            .filter(|c| c.class == class)
            .cloned()
            .collect();
        let (filtered, _) = apply_filters(class_changes);
        let elicitation = elicit(&filtered, threshold);
        let rendering = render_dendrogram(&filtered, &elicitation.dendrogram);
        Figure8Output {
            filtered,
            elicitation,
            rendering,
        }
    }

    // ------------------------------------------------------------------
    // Figure 10
    // ------------------------------------------------------------------

    /// Builds the checker's view of each project (HEAD files analyzed).
    pub fn checked_projects(&mut self) -> Vec<CheckedProject> {
        let corpus = self.corpus.clone();
        corpus
            .projects
            .iter()
            .map(|project| CheckedProject {
                name: project.full_name(),
                usages: project
                    .head_files()
                    .values()
                    .filter_map(|src| self.pipeline.analyze_source(src).ok())
                    .map(|rc| (*rc).clone())
                    .collect(),
                context: ProjectContext {
                    min_sdk_version: project.facts.min_sdk_version,
                    has_lprng_fix: project.facts.has_lprng_fix,
                },
            })
            .collect()
    }

    /// Figure 10: CryptoChecker over the corpus projects.
    pub fn figure10(&mut self) -> Figure10Output {
        let projects = self.checked_projects();
        let checker = CryptoChecker::standard();
        let rows = checker.check_all(&projects);
        let any_violation = checker.projects_with_any_violation(&projects);
        Figure10Output {
            rows,
            total_projects: projects.len(),
            any_violation,
        }
    }
}

/// One Figure 6 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure6Row {
    /// Target API class.
    pub class: String,
    /// The filtering funnel.
    pub stats: FilterStats,
}

/// Counts for one (rule, change type) Figure 7 cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Figure7Cell {
    /// Usage changes of the rule's class with this classification.
    pub total: usize,
    /// Removed by `fsame`.
    pub fsame: usize,
    /// Removed by `fadd`.
    pub fadd: usize,
    /// Removed by `frem`.
    pub frem: usize,
    /// Removed by `fdup`.
    pub fdup: usize,
    /// Surviving all filters.
    pub remaining: usize,
}

/// One Figure 7 row (one CryptoLint rule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure7Row {
    /// Oracle rule id (CL1–CL5).
    pub rule_id: String,
    /// The rule's subject class.
    pub class: String,
    /// Security fixes.
    pub fix: Figure7Cell,
    /// Buggy changes.
    pub bug: Figure7Cell,
    /// Non-semantic changes.
    pub none: Figure7Cell,
}

/// Figure 8 output.
#[derive(Debug)]
pub struct Figure8Output {
    /// The filtered changes that were clustered.
    pub filtered: Vec<MinedUsageChange>,
    /// Dendrogram and clusters.
    pub elicitation: Elicitation,
    /// ASCII rendering of the dendrogram.
    pub rendering: String,
}

/// Figure 10 output.
#[derive(Debug, Clone)]
pub struct Figure10Output {
    /// Per-rule statistics.
    pub rows: Vec<RuleStats>,
    /// Number of checked projects.
    pub total_projects: usize,
    /// Projects violating at least one rule.
    pub any_violation: usize,
}

impl Figure10Output {
    /// Renders the Figure 10 table.
    pub fn table(&self) -> String {
        let mut table = Table::new(["Rule", "Applicable (% of total)", "Matching (% of appl.)"]);
        for row in &self.rows {
            table.row([
                row.rule_id.clone(),
                format!(
                    "{} ({:.1}%)",
                    row.applicable,
                    row.applicable_pct(self.total_projects)
                ),
                format!("{} ({:.1}%)", row.matching, row.matching_pct()),
            ]);
        }
        table.render()
    }
}

/// Figure 9: the rule table itself, with the per-rule citations as
/// footnotes.
pub fn figure9_table() -> String {
    let mut table = Table::new(["ID", "Description", "Rule"]);
    let rules = all_rules();
    for rule in &rules {
        let display = rule.display.replace('\n', " ");
        table.row([rule.id.clone(), rule.description.clone(), display]);
    }
    let mut out = table.render();
    out.push_str("\nReferences:\n");
    for rule in &rules {
        for reference in &rule.references {
            out.push_str(&format!("  {:4} {reference}\n", rule.id));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::GeneratorConfig;

    fn small_experiments() -> Experiments {
        Experiments::new(corpus::generate(&GeneratorConfig::small(12, 2024)))
    }

    #[test]
    fn figure6_funnel_is_monotone() {
        let exp = small_experiments();
        let rows = exp.figure6();
        assert_eq!(rows.len(), 6);
        let mut any_changes = false;
        for row in &rows {
            let s = &row.stats;
            assert!(s.total >= s.after_fsame);
            assert!(s.after_fsame >= s.after_fadd);
            assert!(s.after_fadd >= s.after_frem);
            assert!(s.after_frem >= s.after_fdup);
            if s.total > 0 {
                any_changes = true;
                // Abstraction filters the overwhelming majority.
                assert!(
                    (s.after_fsame as f64) < 0.35 * s.total as f64,
                    "{}: {s:?}",
                    row.class
                );
            }
        }
        assert!(any_changes);
    }

    #[test]
    fn figure7_fixes_dominate_bugs() {
        let exp = Experiments::new(corpus::generate(&GeneratorConfig::small(150, 7)));
        let rows = exp.figure7();
        assert_eq!(rows.len(), 5);
        let fixes: usize = rows.iter().map(|r| r.fix.total).sum();
        let bugs: usize = rows.iter().map(|r| r.bug.total).sum();
        assert!(fixes > bugs, "fixes={fixes} bugs={bugs}");
        // Fixes survive filtering: fsame never removes a fix.
        for row in &rows {
            assert_eq!(row.fix.fsame, 0, "{row:?}");
            assert_eq!(row.bug.fsame, 0, "{row:?}");
        }
    }

    #[test]
    fn figure9_lists_thirteen_rules() {
        let table = figure9_table();
        for i in 1..=13 {
            assert!(table.contains(&format!("R{i}")), "{table}");
        }
    }

    #[test]
    fn figure10_majority_violates_something() {
        let mut exp = small_experiments();
        let out = exp.figure10();
        assert_eq!(out.total_projects, 12);
        assert!(
            out.any_violation * 100 / out.total_projects >= 57,
            "{}/{}",
            out.any_violation,
            out.total_projects
        );
        assert_eq!(out.rows.len(), 13);
        let table = out.table();
        assert!(table.contains("R1"));
    }
}
