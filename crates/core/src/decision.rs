//! Per-change decision provenance: the typed outcome each pipeline
//! stage records for every change it sees.
//!
//! Every change that enters a traced pipeline run produces exactly one
//! [`DecisionReason`] per stage that rules on it — one from mining
//! (mined vs. quarantined), one from filtering (kept vs. which filter
//! dropped it), and one from clustering (its cluster at the cut) when
//! it survived that far. Decision events are never sampled out
//! ([`obs::TraceSink::decision_with`]), so per-reason counts reconcile
//! exactly with the `MetricsRegistry` funnel counters at any sampling
//! rate — the trace ≡ metrics invariant the tests pin.

use crate::pipeline::ChangeMeta;
use crate::quarantine::ErrorKind;
use obs::{AttrSet, TraceSink};
use std::fmt;

/// The event name every decision record is emitted under.
pub const DECISION_EVENT: &str = "decision";

/// Why a pipeline stage ruled the way it did on one change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecisionReason {
    /// Mining analyzed the change to completion.
    Mined,
    /// Mining skipped the change; the kind names the failing stage.
    Quarantined(ErrorKind),
    /// Dropped by `fsame`: no features changed (a refactoring under
    /// the abstraction).
    FilteredRefactoring,
    /// Dropped by `fadd`: a pure addition (new usage, nothing removed).
    FilteredPureAddition,
    /// Dropped by `frem`: a pure removal.
    FilteredPureRemoval,
    /// Dropped by `fdup`: a duplicate of the earlier change with this
    /// fingerprint.
    DupOf(String),
    /// Survived all four filters.
    Kept,
    /// Assigned to this cluster at the silhouette-optimal cut.
    Cluster(usize),
}

impl DecisionReason {
    /// Which pipeline stage emits this reason (`mine`, `filter`, or
    /// `cluster`) — the `stage` attribute of the decision event.
    pub fn stage(&self) -> &'static str {
        match self {
            DecisionReason::Mined | DecisionReason::Quarantined(_) => "mine",
            DecisionReason::FilteredRefactoring
            | DecisionReason::FilteredPureAddition
            | DecisionReason::FilteredPureRemoval
            | DecisionReason::DupOf(_)
            | DecisionReason::Kept => "filter",
            DecisionReason::Cluster(_) => "cluster",
        }
    }
}

impl fmt::Display for DecisionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecisionReason::Mined => write!(f, "mined"),
            DecisionReason::Quarantined(kind) => write!(f, "quarantined({})", kind.name()),
            DecisionReason::FilteredRefactoring => write!(f, "filtered(refactoring)"),
            DecisionReason::FilteredPureAddition => write!(f, "filtered(pure_addition)"),
            DecisionReason::FilteredPureRemoval => write!(f, "filtered(pure_removal)"),
            DecisionReason::DupOf(fingerprint) => write!(f, "dup_of({fingerprint})"),
            DecisionReason::Kept => write!(f, "kept"),
            DecisionReason::Cluster(id) => write!(f, "cluster({id})"),
        }
    }
}

/// Emits one decision event: stage + reason + full provenance
/// (project, commit, path, change fingerprint), plus any stage-specific
/// extras from `extra`. No-op on a disabled sink.
pub(crate) fn record_decision(
    sink: &mut TraceSink,
    meta: &ChangeMeta,
    reason: &DecisionReason,
    extra: impl FnOnce(&mut AttrSet),
) {
    sink.decision_with(DECISION_EVENT, |a| {
        a.str("stage", reason.stage());
        a.str("reason", reason.to_string());
        a.str("project", &meta.project);
        a.str("commit", &meta.commit);
        a.str("author", &meta.author);
        a.str("path", &meta.path);
        a.str("fingerprint", &meta.fingerprint);
        extra(a);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_render_their_typed_labels() {
        assert_eq!(DecisionReason::Mined.to_string(), "mined");
        assert_eq!(
            DecisionReason::Quarantined(ErrorKind::Lex).to_string(),
            "quarantined(lex)"
        );
        assert_eq!(
            DecisionReason::Quarantined(ErrorKind::AnalysisBudget).to_string(),
            "quarantined(analysis-budget)"
        );
        assert_eq!(
            DecisionReason::FilteredRefactoring.to_string(),
            "filtered(refactoring)"
        );
        assert_eq!(
            DecisionReason::FilteredPureAddition.to_string(),
            "filtered(pure_addition)"
        );
        assert_eq!(
            DecisionReason::FilteredPureRemoval.to_string(),
            "filtered(pure_removal)"
        );
        assert_eq!(
            DecisionReason::DupOf("00ab".into()).to_string(),
            "dup_of(00ab)"
        );
        assert_eq!(DecisionReason::Kept.to_string(), "kept");
        assert_eq!(DecisionReason::Cluster(3).to_string(), "cluster(3)");
    }

    #[test]
    fn stages_partition_the_reasons() {
        assert_eq!(DecisionReason::Mined.stage(), "mine");
        assert_eq!(
            DecisionReason::Quarantined(ErrorKind::Panic).stage(),
            "mine"
        );
        assert_eq!(DecisionReason::Kept.stage(), "filter");
        assert_eq!(DecisionReason::DupOf(String::new()).stage(), "filter");
        assert_eq!(DecisionReason::Cluster(0).stage(), "cluster");
    }

    #[test]
    fn record_decision_carries_full_provenance() {
        let meta = ChangeMeta {
            project: "u/p".into(),
            commit: "c1".into(),
            author: "a dev <dev@example.com>".into(),
            message: "fix".into(),
            path: "A.java".into(),
            fingerprint: "deadbeef".into(),
        };
        let mut sink = TraceSink::enabled(1);
        record_decision(&mut sink, &meta, &DecisionReason::Kept, |a| {
            a.u64("index", 4);
        });
        let [event] = sink.events() else {
            panic!("one event expected")
        };
        assert_eq!(event.kind, obs::TraceKind::Decision);
        assert_eq!(sink.attr_str(event, "stage"), Some("filter"));
        assert_eq!(sink.attr_str(event, "reason"), Some("kept"));
        assert_eq!(sink.attr_str(event, "project"), Some("u/p"));
        assert_eq!(sink.attr_str(event, "commit"), Some("c1"));
        assert_eq!(
            sink.attr_str(event, "author"),
            Some("a dev <dev@example.com>")
        );
        assert_eq!(sink.attr_str(event, "path"), Some("A.java"));
        assert_eq!(sink.attr_str(event, "fingerprint"), Some("deadbeef"));
        assert_eq!(
            sink.attr(event, "index").and_then(obs::TraceValue::as_u64),
            Some(4)
        );
    }
}
