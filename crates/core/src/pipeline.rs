//! The end-to-end DiffCode pipeline (paper Figure 1): mine code
//! changes, analyze both versions, derive usage changes per target API
//! class.
//!
//! Mining is **total**: no code change can abort a run. Each change is
//! processed under per-stage resource budgets
//! ([`crate::quarantine::PipelineLimits`]) and behind a panic-isolation
//! boundary; failures degrade to per-kind counted skips with a
//! [`QuarantineReport`] carrying provenance.

use crate::decision::{record_decision, DecisionReason};
use crate::mcache::{CachedLookup, ChangeOutcome, MiningCache, MiningCacheView};
use crate::quarantine::{
    excerpt, ErrorKind, PipelineError, PipelineLimits, QuarantineReport, SkipCounters,
};
use analysis::{analyze, try_analyze_counted, ApiModel, Usages, TARGET_CLASSES};
use corpus::Corpus;
use javalang::ParseError;
use obs::{MetricsRegistry, Stopwatch, TraceSink};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use usagegraph::{
    dags_for_class, diff_dags, pair_dags, try_dags_for_class, DagLimits, UsageChange, UsageDag,
    DEFAULT_MAX_DEPTH,
};

/// Provenance of a mined usage change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeMeta {
    /// `user/project`.
    pub project: String,
    /// Commit id.
    pub commit: String,
    /// Commit author (`Name <email>`; empty when unknown). Real for
    /// git-ingested corpora, a deterministic bot for generated ones.
    pub author: String,
    /// Commit message.
    pub message: String,
    /// Changed file.
    pub path: String,
    /// Content fingerprint of the `(old, new)` source pair
    /// ([`change_fingerprint`]): 32 lowercase hex chars, stable across
    /// runs and configurations — the identity `diffcode explain`
    /// queries by.
    pub fingerprint: String,
}

/// The 128-bit content fingerprint of one code change: a hash of the
/// old and new file bytes only (no configuration, no provenance), so
/// the same textual change carries the same fingerprint wherever it
/// appears. Rendered as 32 lowercase hex chars.
pub fn change_fingerprint(old: &str, new: &str) -> String {
    cache::fingerprint(&[old.as_bytes(), new.as_bytes()]).to_string()
}

/// One usage change with provenance and the DAG pair it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedUsageChange {
    /// Where the change was mined.
    pub meta: ChangeMeta,
    /// The target API class.
    pub class: String,
    /// The paired old-version DAG.
    pub old_dag: UsageDag,
    /// The paired new-version DAG.
    pub new_dag: UsageDag,
    /// The `(F⁻, F⁺)` feature diff.
    pub change: UsageChange,
}

/// Aggregate counters from a mining run.
///
/// Invariant (checked by [`MiningStats::is_balanced`]): every processed
/// change is either mined or skipped under exactly one kind,
/// `code_changes == mined + skipped.total()`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MiningStats {
    /// Code changes (program version pairs) processed.
    pub code_changes: usize,
    /// Files that failed to lex or parse on either side (skipped).
    /// Kept as the historical aggregate of `skipped.lex + skipped.parse`.
    pub parse_failures: usize,
    /// Code changes analyzed to completion (with or without usage
    /// changes to show for it).
    pub mined: usize,
    /// Per-kind skip counters.
    pub skipped: SkipCounters,
}

impl MiningStats {
    /// `true` when the accounting invariant holds:
    /// `code_changes == mined + skipped.total()`.
    pub fn is_balanced(&self) -> bool {
        self.code_changes == self.mined + self.skipped.total()
    }
}

/// The result of mining a corpus.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MiningResult {
    /// All derived usage changes, in corpus order.
    pub changes: Vec<MinedUsageChange>,
    /// Counters.
    pub stats: MiningStats,
    /// One report per skipped code change, in corpus order.
    pub quarantine: Vec<QuarantineReport>,
}

/// The DiffCode system: configuration + analysis cache.
#[derive(Debug, Default)]
pub struct DiffCode {
    api: ApiModel,
    max_depth: usize,
    cache: HashMap<u64, Rc<Usages>>,
    limits: PipelineLimits,
    metrics: MetricsRegistry,
    trace: TraceSink,
    /// Cooperative cancellation: checked between code changes by
    /// [`DiffCode::mine_cached`]. `None` (the default) means mining
    /// runs to completion; explicit opt-in only — a resident server
    /// drains in-flight requests rather than aborting them, so only
    /// the one-shot CLI wires a signal flag in here.
    cancel: Option<&'static AtomicBool>,
}

impl DiffCode {
    /// A pipeline with the paper's defaults (DAG depth 5) and the
    /// default resource budgets.
    pub fn new() -> Self {
        DiffCode {
            api: ApiModel::standard(),
            max_depth: DEFAULT_MAX_DEPTH,
            cache: HashMap::new(),
            limits: PipelineLimits::DEFAULT,
            metrics: MetricsRegistry::new(),
            trace: TraceSink::disabled(),
            cancel: None,
        }
    }

    /// Installs a cooperative cancellation flag: once it reads `true`,
    /// [`Self::mine_cached`] stops *between* code changes — the change
    /// in flight completes normally, the remainder are never counted,
    /// and the partial result still satisfies
    /// `code_changes == mined + skipped`.
    pub fn set_cancel_flag(&mut self, flag: &'static AtomicBool) {
        self.cancel = Some(flag);
    }

    fn cancelled(&self) -> bool {
        self.cancel
            .map(|flag| flag.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    /// Overrides the DAG construction depth.
    pub fn with_depth(max_depth: usize) -> Self {
        DiffCode {
            max_depth,
            ..DiffCode::new()
        }
    }

    /// Overrides the per-stage resource budgets.
    pub fn with_limits(limits: PipelineLimits) -> Self {
        DiffCode {
            limits,
            ..DiffCode::new()
        }
    }

    /// The budgets this pipeline applies while mining.
    pub fn limits(&self) -> &PipelineLimits {
        &self.limits
    }

    /// The observability registry this pipeline has accumulated:
    /// `mine.*` / `analyze.*` / `analysis.*` counters and the
    /// `mine.run` / `mine.change` timing spans, cumulative across every
    /// [`Self::mine`] call on this instance.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Takes the accumulated registry, leaving an empty one — how
    /// [`mine_parallel_with_metrics`] collects per-shard metrics from
    /// worker pipelines on join.
    pub fn take_metrics(&mut self) -> MetricsRegistry {
        std::mem::take(&mut self.metrics)
    }

    /// Installs a trace sink; subsequent mining records spans per
    /// change/stage and one decision event per code change. Pipelines
    /// start with a disabled sink (zero-cost: every trace call is one
    /// branch).
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// The trace events recorded so far.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Takes the accumulated trace, leaving a disabled sink — how
    /// [`mine_parallel_traced`] collects per-shard traces from worker
    /// pipelines on join.
    pub fn take_trace(&mut self) -> TraceSink {
        std::mem::replace(&mut self.trace, TraceSink::disabled())
    }

    /// Parses and analyzes one source file, caching by content. Parsing
    /// runs under the configured front-end budgets; analysis is
    /// unbudgeted — this is the trusted-input entry point used by the
    /// CLI on local files. The mining loop uses
    /// [`Self::try_analyze_source`] instead.
    ///
    /// # Errors
    ///
    /// Propagates lexer-level failures; member-level parse problems are
    /// tolerated by the parser itself.
    pub fn analyze_source(&mut self, source: &str) -> Result<Rc<Usages>, ParseError> {
        let key = content_key(source);
        if let Some(hit) = self.cache.get(&key) {
            let hit = Rc::clone(hit);
            self.metrics.inc("analyze.cache_hit", 1);
            return Ok(hit);
        }
        self.metrics.inc("analyze.cache_miss", 1);
        // `parse_snippet` accepts full units, bare class bodies, and
        // bare statement sequences — the partial programs DiffCode
        // mines (paper §5.1).
        let unit = javalang::parse_snippet_with_limits(source, self.limits.parse)?;
        let usages = Rc::new(analyze(&unit, &self.api));
        self.cache.insert(key, Rc::clone(&usages));
        Ok(usages)
    }

    /// Parses and analyzes one untrusted source file under the full
    /// budget stack, caching by content.
    ///
    /// The cache is only written *after* parse and analysis both
    /// succeeded, so a panic anywhere in this function leaves the
    /// pipeline state exactly as it was — the property that makes the
    /// per-change `AssertUnwindSafe` in [`Self::mine`] sound. (The
    /// metrics counters may reflect a half-finished attempt after an
    /// unwind, but counters are monotone aggregates with no validity
    /// invariant to break.)
    ///
    /// # Errors
    ///
    /// Typed [`PipelineError`]s for lexer/parser failures and
    /// analysis-budget overruns.
    pub fn try_analyze_source(&mut self, source: &str) -> Result<Rc<Usages>, PipelineError> {
        if let Some(marker) = chaos_panic_marker() {
            if source.contains(&marker) {
                panic!("chaos fault injection: panic marker present in source");
            }
        }
        let key = content_key(source);
        if let Some(hit) = self.cache.get(&key) {
            let hit = Rc::clone(hit);
            self.metrics.inc("analyze.cache_hit", 1);
            self.trace.instant("analyze.cache_hit");
            return Ok(hit);
        }
        self.metrics.inc("analyze.cache_miss", 1);
        // Each fallible stage's span is closed *before* the error
        // propagates, so failed changes still leave balanced traces.
        let parse_span = self.trace.begin("parse");
        let unit = javalang::parse_snippet_with_limits(source, self.limits.parse);
        self.trace.end(parse_span);
        let unit = unit?;
        let analysis_span = self.trace.begin("analysis");
        let analyzed = try_analyze_counted(&unit, &self.api, &self.limits.analysis);
        self.trace.end(analysis_span);
        let (usages, steps) = analyzed?;
        self.metrics.inc("analysis.steps", steps);
        let usages = Rc::new(usages);
        self.cache.insert(key, Rc::clone(&usages));
        Ok(usages)
    }

    /// Derives the usage changes of `class` between two source
    /// versions, returning the paired DAGs alongside each diff.
    ///
    /// # Errors
    ///
    /// Fails if either source cannot be lexed.
    pub fn usage_changes_from_pair(
        &mut self,
        old_source: &str,
        new_source: &str,
        class: &str,
    ) -> Result<Vec<(UsageDag, UsageDag, UsageChange)>, ParseError> {
        let old = self.analyze_source(old_source)?;
        let new = self.analyze_source(new_source)?;
        Ok(self.usage_changes_from_usages(&old, &new, class))
    }

    /// Same as [`Self::usage_changes_from_pair`] but over pre-analyzed
    /// usages.
    pub fn usage_changes_from_usages(
        &self,
        old: &Usages,
        new: &Usages,
        class: &str,
    ) -> Vec<(UsageDag, UsageDag, UsageChange)> {
        let old_dags = dags_for_class(old, class, self.max_depth);
        let new_dags = dags_for_class(new, class, self.max_depth);
        if old_dags.is_empty() && new_dags.is_empty() {
            return Vec::new();
        }
        pair_dags(old_dags, new_dags, class)
            .into_iter()
            .map(|(a, b)| {
                let change = diff_dags(&a, &b);
                (a, b, change)
            })
            .collect()
    }

    /// [`Self::usage_changes_from_usages`] under the configured DAG
    /// budgets — the variant the mining loop uses.
    ///
    /// # Errors
    ///
    /// Propagates [`usagegraph::DagError`] budget failures.
    pub fn try_usage_changes_from_usages(
        &self,
        old: &Usages,
        new: &Usages,
        class: &str,
    ) -> Result<Vec<(UsageDag, UsageDag, UsageChange)>, PipelineError> {
        let limits = DagLimits {
            max_depth: self.max_depth,
            ..self.limits.dag
        };
        let old_dags = try_dags_for_class(old, class, &limits)?;
        let new_dags = try_dags_for_class(new, class, &limits)?;
        if old_dags.is_empty() && new_dags.is_empty() {
            return Ok(Vec::new());
        }
        Ok(pair_dags(old_dags, new_dags, class)
            .into_iter()
            .map(|(a, b)| {
                let change = diff_dags(&a, &b);
                (a, b, change)
            })
            .collect())
    }

    /// Mines every code change of `corpus` for usage changes of the
    /// given target classes (defaults to the paper's six, Figure 5).
    ///
    /// Mining never aborts: a change that fails any stage — or panics —
    /// is skipped, counted under its [`ErrorKind`], and quarantined
    /// with provenance, while the remaining changes proceed.
    pub fn mine(&mut self, corpus: &Corpus, classes: &[&str]) -> MiningResult {
        self.mine_cached(corpus, classes, None)
    }

    /// [`Self::mine`] with an optional look-aside result cache: each
    /// change's key is looked up before any analysis work, a hit
    /// replays the cached [`ChangeOutcome`] (mined tuples *or* the
    /// quarantined skip — cached skips stay skipped, so
    /// `processed = mined + skipped` balances identically on warm
    /// runs), and a miss computes the outcome and records it in the
    /// view's write log. Lookup results are counted as `cache.hit` /
    /// `cache.miss` / `cache.stale_version`.
    ///
    /// The caller is responsible for opening the cache with the same
    /// target classes, limits, and depth this pipeline mines with —
    /// the cache's configuration fingerprint is part of every key, so
    /// a mismatched handle can only cause misses, never wrong replays
    /// of *its own* entries, but keys from a different configuration
    /// would alias if the handle lies about the configuration.
    pub fn mine_cached(
        &mut self,
        corpus: &Corpus,
        classes: &[&str],
        mut cache: Option<&mut MiningCacheView<'_>>,
    ) -> MiningResult {
        let classes: Vec<&str> = if classes.is_empty() {
            TARGET_CLASSES.to_vec()
        } else {
            classes.to_vec()
        };
        if let Some(project) = chaos_shard_panic_project() {
            if corpus.projects.iter().any(|p| p.name == project) {
                panic!("chaos fault injection: shard-panic project `{project}` present");
            }
        }
        let run_clock = Stopwatch::start();
        let run_span = self.trace.begin("mine.run");
        let mut result = MiningResult::default();
        for code_change in corpus.code_changes() {
            if self.cancelled() {
                // Between-change interruption: nothing in flight, the
                // untouched remainder is simply never counted, so the
                // partial accounting still balances.
                self.metrics.inc("mine.interrupted", 1);
                break;
            }
            let change_clock = Stopwatch::start();
            result.stats.code_changes += 1;
            let meta = ChangeMeta {
                project: code_change.project.full_name(),
                commit: code_change.commit.id.clone(),
                author: code_change.commit.author.clone(),
                message: code_change.commit.message.clone(),
                path: code_change.path.to_owned(),
                fingerprint: change_fingerprint(code_change.old, code_change.new),
            };
            let change_span = self.trace.begin_with("mine.change", |a| {
                a.str("project", meta.project.as_str());
                a.str("commit", meta.commit.as_str());
                a.str("path", meta.path.as_str());
                a.str("fingerprint", meta.fingerprint.as_str());
            });
            // Look aside before any analysis work. Both the replayed
            // and the freshly-computed paths apply a `ChangeOutcome`
            // through the same function below, so a warm run is
            // byte-identical to the cold run by construction.
            let (outcome, cache_status) = self.outcome_for_pair(
                code_change.old,
                code_change.new,
                &classes,
                cache.as_deref_mut(),
            );
            // The per-change decision: emitted inside the change span,
            // always retained regardless of sampling.
            let reason = match &outcome {
                ChangeOutcome::Mined(_) => DecisionReason::Mined,
                ChangeOutcome::Skipped { kind, .. } => DecisionReason::Quarantined(*kind),
            };
            let usage_changes = match &outcome {
                ChangeOutcome::Mined(tuples) => tuples.len() as u64,
                ChangeOutcome::Skipped { .. } => 0,
            };
            record_decision(&mut self.trace, &meta, &reason, |a| {
                a.str("cache", cache_status);
                a.u64("usage_changes", usage_changes);
            });
            apply_outcome(&mut result, meta, outcome);
            self.trace.end(change_span);
            self.metrics
                .record_span("mine.change", change_clock.elapsed());
        }
        self.trace.end(run_span);
        self.metrics.record_span("mine.run", run_clock.elapsed());
        self.metrics
            .inc("mine.code_changes", result.stats.code_changes as u64);
        self.metrics.inc("mine.mined", result.stats.mined as u64);
        self.metrics
            .inc("mine.usage_changes", result.changes.len() as u64);
        result.stats.skipped.record(&mut self.metrics);
        debug_assert!(result.stats.is_balanced());
        // Stage boundary: the cumulative counters must partition the
        // same way the per-run stats do.
        debug_assert!(obs::check_partition(
            &self.metrics,
            "mine.code_changes",
            &["mine.mined", "mine.skipped"],
        )
        .is_ok());
        result
    }

    /// Processes one `(old, new)` source pair through the full
    /// budgeted, panic-isolated pipeline, optionally through a cache
    /// view — the resident-service entry point (one request = one
    /// change). Resolves an empty class list to the paper's targets,
    /// exactly like [`Self::mine`], so a served verdict is computed
    /// under the same configuration as a one-shot mining run's.
    ///
    /// Returns the outcome plus the cache status this lookup recorded
    /// (`"hit"`, `"miss"`, `"stale_version"`, or `"off"` without a
    /// cache).
    pub fn process_pair_cached(
        &mut self,
        old: &str,
        new: &str,
        classes: &[&str],
        cache: Option<&mut MiningCacheView<'_>>,
    ) -> (ChangeOutcome, &'static str) {
        let classes: Vec<&str> = if classes.is_empty() {
            TARGET_CLASSES.to_vec()
        } else {
            classes.to_vec()
        };
        self.outcome_for_pair(old, new, &classes, cache)
    }

    /// The shared look-aside path: cache lookup (hit replays, miss
    /// computes and records), with `cache.*` counters and trace
    /// markers. Both the mining loop and [`Self::process_pair_cached`]
    /// go through here, so a served verdict and a mined one are the
    /// same computation by construction.
    fn outcome_for_pair(
        &mut self,
        old: &str,
        new: &str,
        classes: &[&str],
        cache: Option<&mut MiningCacheView<'_>>,
    ) -> (ChangeOutcome, &'static str) {
        match cache {
            Some(view) => {
                let key = view.change_key(old, new);
                match view.get(key) {
                    CachedLookup::Hit(outcome) => {
                        self.metrics.inc("cache.hit", 1);
                        self.trace.instant("cache.hit");
                        (outcome, "hit")
                    }
                    lookup => {
                        let (counter, status) = match lookup {
                            CachedLookup::StaleVersion => ("cache.stale_version", "stale_version"),
                            _ => ("cache.miss", "miss"),
                        };
                        self.metrics.inc(counter, 1);
                        self.trace.instant(counter);
                        let outcome = self.compute_outcome(old, new, classes);
                        view.record(key, &outcome);
                        (outcome, status)
                    }
                }
            }
            None => (self.compute_outcome(old, new, classes), "off"),
        }
    }

    /// [`Self::process_change`] with the result folded into the
    /// cacheable [`ChangeOutcome`] form (the error reduced to its kind,
    /// message, and excerpt — exactly what a [`QuarantineReport`]
    /// keeps).
    fn compute_outcome(&mut self, old: &str, new: &str, classes: &[&str]) -> ChangeOutcome {
        match self.process_change(old, new, classes) {
            Ok(mined) => ChangeOutcome::Mined(mined),
            Err((error, excerpt)) => ChangeOutcome::Skipped {
                kind: error.kind(),
                error: error.to_string(),
                excerpt,
            },
        }
    }

    /// Runs one code change through analyze → DAG diff behind a panic
    /// boundary. On failure returns the typed error plus the triage
    /// excerpt of the offending side (the new version when the side is
    /// unknowable, i.e. for panics and DAG-stage failures).
    ///
    /// `AssertUnwindSafe` audit: the only state the closure can leave
    /// inconsistent on unwind is `self` — and every `&mut self` path
    /// ([`Self::try_analyze_source`]) mutates only the content-keyed
    /// analysis cache, *after* the fallible work for that entry has
    /// fully succeeded. An unwind therefore observes either no cache
    /// entry or a complete, valid one; no partially-initialized state
    /// survives the catch.
    fn process_change(
        &mut self,
        old_source: &str,
        new_source: &str,
        classes: &[&str],
    ) -> Result<MinedTuples, (PipelineError, String)> {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let span = self.trace.begin("analyze.old");
            let old = self.try_analyze_source(old_source);
            self.trace.end(span);
            let old = old.map_err(|e| (e, excerpt(old_source)))?;
            let span = self.trace.begin("analyze.new");
            let new = self.try_analyze_source(new_source);
            self.trace.end(span);
            let new = new.map_err(|e| (e, excerpt(new_source)))?;
            let dags_span = self.trace.begin("dags.diff");
            let mut mined = MinedTuples::new();
            for class in classes {
                let tuples = self.try_usage_changes_from_usages(&old, &new, class);
                let tuples = match tuples {
                    Ok(tuples) => tuples,
                    Err(e) => {
                        self.trace.end(dags_span);
                        return Err((e, excerpt(new_source)));
                    }
                };
                for (old_dag, new_dag, change) in tuples {
                    mined.push(((*class).to_owned(), old_dag, new_dag, change));
                }
            }
            self.trace.end(dags_span);
            Ok(mined)
        }));
        match outcome {
            Ok(processed) => processed,
            Err(payload) => Err((
                PipelineError::Panic(panic_message(payload)),
                excerpt(new_source),
            )),
        }
    }
}

type MinedTuples = Vec<(String, UsageDag, UsageDag, UsageChange)>;

/// Folds one per-change outcome — replayed from cache or freshly
/// computed — into the running result. The single accounting path for
/// both, which is what makes warm runs byte-identical to cold ones.
fn apply_outcome(result: &mut MiningResult, meta: ChangeMeta, outcome: ChangeOutcome) {
    match outcome {
        ChangeOutcome::Mined(mined) => {
            result.stats.mined += 1;
            for (class, old_dag, new_dag, change) in mined {
                result.changes.push(MinedUsageChange {
                    meta: meta.clone(),
                    class,
                    old_dag,
                    new_dag,
                    change,
                });
            }
        }
        ChangeOutcome::Skipped {
            kind,
            error,
            excerpt,
        } => {
            result.stats.skipped.bump(kind);
            if matches!(kind, ErrorKind::Lex | ErrorKind::Parse) {
                result.stats.parse_failures += 1;
            }
            result.quarantine.push(QuarantineReport {
                meta,
                kind,
                error,
                excerpt,
            });
        }
    }
}

/// Renders a caught panic payload as a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Fault-injection hook: when the `DIFFCODE_CHAOS_PANIC_MARKER`
/// environment variable is set (non-empty), any source containing the
/// marker panics inside [`DiffCode::try_analyze_source`]. This lets the
/// chaos harness drive a real panic through the release pipeline and
/// assert that per-change isolation contains it; with the variable
/// unset (production) the check is a single `env::var` miss.
fn chaos_panic_marker() -> Option<String> {
    std::env::var("DIFFCODE_CHAOS_PANIC_MARKER")
        .ok()
        .filter(|m| !m.is_empty())
}

/// Companion hook for shard-level faults: when
/// `DIFFCODE_CHAOS_SHARD_PANIC_PROJECT` names a project in the corpus,
/// [`DiffCode::mine`] panics *before* entering the per-change isolation
/// loop — exercising [`mine_parallel`]'s thread-join degradation path.
fn chaos_shard_panic_project() -> Option<String> {
    std::env::var("DIFFCODE_CHAOS_SHARD_PANIC_PROJECT")
        .ok()
        .filter(|m| !m.is_empty())
}

/// Mines `corpus` using one [`DiffCode`] per worker thread, sharding by
/// project. The result is identical to [`DiffCode::mine`] — shards are
/// contiguous project runs concatenated in project order — but
/// wall-clock scales with cores. Shard boundaries balance the number of
/// *code changes* per shard rather than the number of projects: mining
/// cost is driven by how many old/new file pairs a shard parses, and
/// real corpora are heavily skewed (a handful of projects contribute
/// most commits), so equal-project chunks leave most threads idle
/// behind the one that drew the giant project.
pub fn mine_parallel(corpus: &Corpus, classes: &[&str], n_threads: usize) -> MiningResult {
    mine_parallel_with_metrics(corpus, classes, n_threads, &mut MetricsRegistry::new())
}

/// [`mine_parallel`] with stage observability: each worker pipeline
/// accumulates its own [`MetricsRegistry`] (no locks on the hot path)
/// and the per-shard registries are merged into `registry` on join —
/// counters add, `mine.change` span aggregates fold together. A shard
/// whose worker died contributes its all-skipped accounting plus a
/// `mine.shard_failures` increment.
pub fn mine_parallel_with_metrics(
    corpus: &Corpus,
    classes: &[&str],
    n_threads: usize,
    registry: &mut MetricsRegistry,
) -> MiningResult {
    mine_parallel_cached(corpus, classes, n_threads, registry, None)
}

/// [`mine_parallel_with_metrics`] with an optional persistent result
/// cache. Every worker thread gets a read-only view of the cache's
/// loaded index plus its own append log — no locks on the hot path —
/// and the logs are merged back into the store on join, in shard
/// order, so the flushed file is deterministic. A shard whose worker
/// died never gets its log absorbed: its changes were folded in as
/// skips, and caching half-finished outcomes from a dead worker would
/// let a warm run disagree with the cold one.
///
/// Absorbed entries live in memory until the caller invokes
/// [`MiningCache::flush`]; this function does no I/O.
pub fn mine_parallel_cached(
    corpus: &Corpus,
    classes: &[&str],
    n_threads: usize,
    registry: &mut MetricsRegistry,
    cache: Option<&mut MiningCache>,
) -> MiningResult {
    mine_parallel_traced(
        corpus,
        classes,
        n_threads,
        registry,
        cache,
        &mut TraceSink::disabled(),
    )
}

/// [`mine_parallel_cached`] with structured tracing: each worker shard
/// records into its own [`TraceSink`] (same no-locks discipline as the
/// per-shard registries), and the shard sinks are absorbed into `trace`
/// on join, **in shard order** — each shard becomes its own lane, so a
/// parallel trace is the sequential trace's events re-grouped by lane,
/// with identical decision events per change. A shard whose worker died
/// contributes no lane; its changes' quarantine decisions are emitted
/// into the orchestrator's own lane so the one-decision-per-change
/// completeness invariant survives worker loss.
pub fn mine_parallel_traced(
    corpus: &Corpus,
    classes: &[&str],
    n_threads: usize,
    registry: &mut MetricsRegistry,
    cache: Option<&mut MiningCache>,
    trace: &mut TraceSink,
) -> MiningResult {
    mine_parallel_interruptible(corpus, classes, n_threads, registry, cache, trace, None)
}

/// [`mine_parallel_traced`] with an optional cooperative cancellation
/// flag, propagated to every worker pipeline: once the flag reads
/// `true`, each shard stops between code changes and the partial
/// results merge normally — shard logs are absorbed, the accounting
/// balances over what was actually processed, and nothing in flight is
/// abandoned mid-change. This is the Ctrl-C path for one-shot
/// `diffcode mine`; a `None` flag is exactly [`mine_parallel_traced`].
pub fn mine_parallel_interruptible(
    corpus: &Corpus,
    classes: &[&str],
    n_threads: usize,
    registry: &mut MetricsRegistry,
    cache: Option<&mut MiningCache>,
    trace: &mut TraceSink,
    cancel: Option<&'static AtomicBool>,
) -> MiningResult {
    let trace_config = trace.config();
    let n_threads = n_threads.max(1).min(corpus.projects.len().max(1));
    if n_threads <= 1 {
        let mut view = cache.as_ref().map(|c| c.view());
        let mut dc = DiffCode::new();
        dc.set_trace(TraceSink::from_config(trace_config));
        if let Some(flag) = cancel {
            dc.set_cancel_flag(flag);
        }
        let result = dc.mine_cached(corpus, classes, view.as_mut());
        registry.merge(&dc.take_metrics());
        trace.absorb(dc.take_trace());
        let log = view.map(MiningCacheView::into_log);
        if let (Some(cache), Some(log)) = (cache, log) {
            cache.absorb(log);
        }
        return result;
    }
    let shards = shard_by_code_changes(corpus, n_threads);
    // Immutable reborrow for the workers; the mutable handle is used
    // again only after the scope ends and every view is consumed.
    let shared: Option<&MiningCache> = cache.as_deref();
    type ShardOutcome = (
        MiningResult,
        MetricsRegistry,
        Option<cache::ShardLog>,
        Option<TraceSink>,
    );
    let results: Vec<ShardOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let mut view = shared.map(|c| c.view());
                (
                    shard,
                    scope.spawn(move || {
                        let mut dc = DiffCode::new();
                        dc.set_trace(TraceSink::from_config(trace_config));
                        if let Some(flag) = cancel {
                            dc.set_cancel_flag(flag);
                        }
                        let result = dc.mine_cached(shard, classes, view.as_mut());
                        (
                            result,
                            dc.take_metrics(),
                            view.map(MiningCacheView::into_log),
                            Some(dc.take_trace()),
                        )
                    }),
                )
            })
            .collect();
        handles
            .into_iter()
            .map(|(shard, handle)| match handle.join() {
                Ok(outcome) => outcome,
                // A worker died outside the per-change isolation (mine
                // itself never panics on input). Fold the shard in as
                // all-skipped so sibling shards' results survive and
                // the merged accounting still balances; its in-flight
                // metrics died with the thread, so rebuild the counters
                // the accounting requires from the skip totals. The
                // shard's cache log died with it too — deliberately.
                Err(payload) => {
                    let result = shard_failure_result(shard, &panic_message(payload), trace);
                    let mut shard_metrics = MetricsRegistry::new();
                    shard_metrics.inc("mine.shard_failures", 1);
                    shard_metrics.inc("mine.code_changes", result.stats.code_changes as u64);
                    shard_metrics.inc("mine.mined", 0);
                    result.stats.skipped.record(&mut shard_metrics);
                    (result, shard_metrics, None, None)
                }
            })
            .collect()
    });
    let mut merged = MiningResult::default();
    let mut logs = Vec::new();
    for (result, shard_metrics, log, shard_trace) in results {
        merged.stats.code_changes += result.stats.code_changes;
        merged.stats.parse_failures += result.stats.parse_failures;
        merged.stats.mined += result.stats.mined;
        merged.stats.skipped.absorb(&result.stats.skipped);
        merged.changes.extend(result.changes);
        merged.quarantine.extend(result.quarantine);
        registry.merge(&shard_metrics);
        logs.extend(log);
        if let Some(shard_trace) = shard_trace {
            trace.absorb(shard_trace);
        }
    }
    if let Some(cache) = cache {
        for log in logs {
            cache.absorb(log);
        }
    }
    debug_assert!(merged.stats.is_balanced());
    debug_assert!(obs::check_partition(
        registry,
        "mine.code_changes",
        &["mine.mined", "mine.skipped"]
    )
    .is_ok());
    merged
}

/// The accounting for a shard whose worker thread panicked before
/// returning: every code change of the shard is recorded as a
/// [`ErrorKind::Panic`] skip with a quarantine report, so
/// `code_changes == mined + skipped.total()` holds for the merged run.
/// The per-change decision events die with the worker's sink, so they
/// are re-emitted here into the orchestrator's `trace` (after a
/// `mine.shard_failure` marker), keeping the trace's decision set
/// complete even when a whole shard is lost.
fn shard_failure_result(shard: &Corpus, message: &str, trace: &mut TraceSink) -> MiningResult {
    trace.instant_with("mine.shard_failure", |a| {
        a.str("message", message);
    });
    let mut result = MiningResult::default();
    for code_change in shard.code_changes() {
        result.stats.code_changes += 1;
        result.stats.skipped.bump(ErrorKind::Panic);
        let meta = ChangeMeta {
            project: code_change.project.full_name(),
            commit: code_change.commit.id.clone(),
            author: code_change.commit.author.clone(),
            message: code_change.commit.message.clone(),
            path: code_change.path.to_owned(),
            fingerprint: change_fingerprint(code_change.old, code_change.new),
        };
        record_decision(
            trace,
            &meta,
            &DecisionReason::Quarantined(ErrorKind::Panic),
            |a| {
                a.str("cache", "off");
                a.u64("usage_changes", 0);
            },
        );
        result.quarantine.push(QuarantineReport {
            meta,
            kind: ErrorKind::Panic,
            error: format!("mining shard panicked: {message}"),
            excerpt: excerpt(code_change.new),
        });
    }
    result
}

/// Splits `corpus` into at most `n_shards` contiguous project runs
/// whose total code-change counts are as even as a greedy in-order
/// partition can make them. Projects are never reordered, so
/// concatenating shard results reproduces sequential mining exactly.
fn shard_by_code_changes(corpus: &Corpus, n_shards: usize) -> Vec<Corpus> {
    let weights: Vec<usize> = corpus
        .projects
        .iter()
        .map(|project| {
            project
                .commits
                .iter()
                .map(|commit| {
                    commit
                        .changes
                        .iter()
                        .filter(|change| change.old.is_some() && change.new.is_some())
                        .count()
                })
                .sum()
        })
        .collect();
    let total: usize = weights.iter().sum();
    let mut shards = Vec::with_capacity(n_shards);
    let mut start = 0;
    let mut consumed = 0usize;
    for s in 0..n_shards {
        if start >= corpus.projects.len() {
            break;
        }
        // Re-derive the ideal share from what is still unassigned, so
        // one oversized project early on does not starve later shards.
        let ideal = (total - consumed).div_ceil(n_shards - s);
        let mut end = start;
        let mut acc = 0usize;
        while end < corpus.projects.len() {
            if end > start && acc + weights[end] > ideal {
                break;
            }
            acc += weights[end];
            end += 1;
        }
        consumed += acc;
        shards.push(Corpus {
            projects: corpus.projects[start..end].to_vec(),
        });
        start = end;
    }
    // The last pass always takes the remainder (ideal == total − consumed).
    debug_assert_eq!(start, corpus.projects.len());
    shards
}

fn content_key(source: &str) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    source.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::fixtures;

    #[test]
    fn figure2_pair_produces_two_changes() {
        let mut dc = DiffCode::new();
        let changes = dc
            .usage_changes_from_pair(fixtures::FIGURE2_OLD, fixtures::FIGURE2_NEW, "Cipher")
            .unwrap();
        assert_eq!(changes.len(), 2, "enc and dec");
        for (_, _, change) in &changes {
            assert!(!change.is_same());
            assert!(!change.removed.is_empty() && !change.added.is_empty());
        }
    }

    #[test]
    fn cache_hits_for_identical_content() {
        let mut dc = DiffCode::new();
        let a = dc.analyze_source(fixtures::FIGURE2_OLD).unwrap();
        let b = dc.analyze_source(fixtures::FIGURE2_OLD).unwrap();
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn parallel_mining_equals_sequential() {
        let corpus = corpus::generate(&corpus::GeneratorConfig::small(8, 77));
        let sequential = DiffCode::new().mine(&corpus, &[]);
        let parallel = super::mine_parallel(&corpus, &[], 4);
        assert_eq!(sequential.stats, parallel.stats);
        assert_eq!(sequential.changes.len(), parallel.changes.len());
        for (a, b) in sequential.changes.iter().zip(&parallel.changes) {
            assert_eq!(a.change, b.change);
            assert_eq!(a.meta, b.meta);
            assert_eq!(a.old_dag, b.old_dag);
        }
    }

    /// A project with `k` code changes (and one file-added change that
    /// must not count toward the shard weight).
    fn project_with_changes(name: &str, k: usize) -> corpus::Project {
        let changes = |i: usize| corpus::FileChange {
            path: format!("F{i}.java"),
            old: Some(format!("class F{i} {{}}")),
            new: Some(format!("class F{i} {{ int x; }}")),
        };
        corpus::Project {
            user: "u".into(),
            name: name.into(),
            facts: corpus::ProjectFacts::default(),
            commits: vec![corpus::Commit {
                id: format!("{name}-1"),
                author: String::new(),
                message: "edit".into(),
                changes: (0..k)
                    .map(changes)
                    .chain(std::iter::once(corpus::FileChange {
                        path: "New.java".into(),
                        old: None,
                        new: Some("class New {}".into()),
                    }))
                    .collect(),
            }],
        }
    }

    #[test]
    fn shards_balance_by_code_change_count_not_project_count() {
        // One giant project followed by six tiny ones: equal-project
        // chunking at 4 threads would pair the giant with a tiny one
        // and leave that shard with 13/19 of the work.
        let sizes = [12usize, 2, 1, 1, 1, 1, 1];
        let corpus = corpus::Corpus {
            projects: sizes
                .iter()
                .enumerate()
                .map(|(i, &k)| project_with_changes(&format!("p{i}"), k))
                .collect(),
        };
        let shards = super::shard_by_code_changes(&corpus, 4);
        let loads: Vec<usize> = shards.iter().map(|s| s.code_changes().count()).collect();
        // The giant project is alone in its shard and the tiny ones
        // spread over the remaining shards instead of queueing behind it.
        assert_eq!(loads[0], 12, "{loads:?}");
        assert!(loads.len() >= 3, "{loads:?}");
        assert!(loads[1..].iter().all(|&l| l <= 4), "{loads:?}");
        // Order is preserved: concatenated shards reproduce the corpus.
        let concatenated: Vec<_> = shards
            .iter()
            .flat_map(|s| s.projects.iter().map(|p| p.name.clone()))
            .collect();
        let original: Vec<_> = corpus.projects.iter().map(|p| p.name.clone()).collect();
        assert_eq!(concatenated, original);
    }

    #[test]
    fn skewed_parallel_mining_equals_sequential() {
        let mut corpus = corpus::generate(&corpus::GeneratorConfig::small(6, 21));
        // Skew the corpus: duplicate the first project's commits so one
        // project dominates the work distribution.
        for _ in 0..3 {
            let extra = corpus.projects[0].commits.clone();
            corpus.projects[0].commits.extend(extra);
        }
        let sequential = DiffCode::new().mine(&corpus, &[]);
        let parallel = super::mine_parallel(&corpus, &[], 3);
        assert_eq!(sequential.stats, parallel.stats);
        assert_eq!(sequential.changes.len(), parallel.changes.len());
        for (a, b) in sequential.changes.iter().zip(&parallel.changes) {
            assert_eq!(a.change, b.change);
            assert_eq!(a.meta, b.meta);
        }
    }

    /// A one-project corpus with one code change per (old, new) pair.
    fn corpus_of_pairs(name: &str, pairs: &[(&str, &str)]) -> corpus::Corpus {
        corpus::Corpus {
            projects: vec![corpus::Project {
                user: "u".into(),
                name: name.into(),
                facts: corpus::ProjectFacts::default(),
                commits: pairs
                    .iter()
                    .enumerate()
                    .map(|(i, (old, new))| corpus::Commit {
                        id: format!("c{i}"),
                        author: String::new(),
                        message: format!("change {i}"),
                        changes: vec![corpus::FileChange {
                            path: format!("F{i}.java"),
                            old: Some((*old).to_owned()),
                            new: Some((*new).to_owned()),
                        }],
                    })
                    .collect(),
            }],
        }
    }

    #[test]
    fn malformed_inputs_are_skipped_and_quarantined() {
        let corpus = corpus_of_pairs(
            "p",
            &[
                ("class A {}", "class A { int x; }"),
                ("class B {}", "class B { String s = \"unterminated; }"),
            ],
        );
        let result = DiffCode::new().mine(&corpus, &[]);
        assert_eq!(result.stats.code_changes, 2);
        assert_eq!(result.stats.mined, 1);
        assert_eq!(result.stats.skipped.lex, 1);
        assert_eq!(result.stats.parse_failures, 1);
        assert!(result.stats.is_balanced());
        assert_eq!(result.quarantine.len(), 1);
        let report = &result.quarantine[0];
        assert_eq!(report.kind, crate::quarantine::ErrorKind::Lex);
        assert_eq!(report.meta.project, "u/p");
        assert_eq!(report.meta.commit, "c1");
        assert_eq!(report.meta.path, "F1.java");
        assert!(
            report.error.contains("unterminated string"),
            "{}",
            report.error
        );
        assert!(report.excerpt.contains("class B"), "{}", report.excerpt);
    }

    #[test]
    fn panics_are_isolated_per_change() {
        // Per-call env read: safe to set here even with sibling tests
        // running — their sources never contain the marker.
        std::env::set_var("DIFFCODE_CHAOS_PANIC_MARKER", "@@CHAOS_PANIC@@");
        let corpus = corpus_of_pairs(
            "p",
            &[
                ("class A {}", "class A { int x; }"),
                ("class B {}", "class B { /* @@CHAOS_PANIC@@ */ }"),
                ("class C {}", "class C { int y; }"),
            ],
        );
        let result = DiffCode::new().mine(&corpus, &[]);
        assert_eq!(result.stats.code_changes, 3);
        assert_eq!(result.stats.mined, 2);
        assert_eq!(result.stats.skipped.panic, 1);
        assert_eq!(result.stats.parse_failures, 0);
        assert!(result.stats.is_balanced());
        assert_eq!(result.quarantine.len(), 1);
        assert_eq!(
            result.quarantine[0].kind,
            crate::quarantine::ErrorKind::Panic
        );
        assert_eq!(result.quarantine[0].meta.commit, "c1");
        assert!(
            result.quarantine[0].error.contains("chaos fault injection"),
            "{}",
            result.quarantine[0].error
        );
    }

    #[test]
    fn shard_panic_folds_partial_results() {
        std::env::set_var("DIFFCODE_CHAOS_SHARD_PANIC_PROJECT", "__chaos_shard__");
        let mut corpus = corpus_of_pairs("ok-project", &[("class A {}", "class A { int x; }")]);
        corpus.projects.extend(
            corpus_of_pairs("__chaos_shard__", &[("class B {}", "class B { int y; }")]).projects,
        );
        let result = super::mine_parallel(&corpus, &[], 2);
        assert_eq!(result.stats.code_changes, 2);
        assert_eq!(result.stats.mined, 1, "healthy shard survives");
        assert_eq!(result.stats.skipped.panic, 1, "dead shard folded as skips");
        assert!(result.stats.is_balanced());
        assert_eq!(result.quarantine.len(), 1);
        assert_eq!(result.quarantine[0].meta.project, "u/__chaos_shard__");
        assert!(
            result.quarantine[0].error.contains("mining shard panicked"),
            "{}",
            result.quarantine[0].error
        );
    }

    #[test]
    fn budget_overruns_quarantine_as_analysis_kind() {
        let limits = PipelineLimits {
            analysis: analysis::AnalysisLimits {
                max_steps: 1,
                ..analysis::AnalysisLimits::DEFAULT
            },
            ..PipelineLimits::DEFAULT
        };
        let corpus = corpus_of_pairs(
            "p",
            &[(
                "class A { void m() { int x = 1; } }",
                "class A { void m() { int x = 2; } }",
            )],
        );
        let result = DiffCode::with_limits(limits).mine(&corpus, &[]);
        assert_eq!(result.stats.skipped.analysis_budget, 1);
        assert_eq!(
            result.stats.parse_failures, 0,
            "budget skip is not a parse failure"
        );
        assert!(result.stats.is_balanced());
    }

    #[test]
    fn cancel_flag_stops_mining_between_changes_with_balanced_stats() {
        static FLAG: AtomicBool = AtomicBool::new(true);
        let corpus = corpus::generate(&corpus::GeneratorConfig::small(4, 11));
        let mut dc = DiffCode::new();
        dc.set_cancel_flag(&FLAG);
        let result = dc.mine(&corpus, &[]);
        assert_eq!(
            result.stats.code_changes, 0,
            "pre-set flag processes nothing"
        );
        assert!(result.stats.is_balanced());

        let mut registry = MetricsRegistry::new();
        let partial = mine_parallel_interruptible(
            &corpus,
            &[],
            2,
            &mut registry,
            None,
            &mut TraceSink::disabled(),
            Some(&FLAG),
        );
        assert_eq!(partial.stats.code_changes, 0);
        assert!(partial.stats.is_balanced());
        assert!(registry.counter("mine.interrupted") > 0);
    }

    #[test]
    fn process_pair_matches_mining_outcome() {
        let (old, new) = (fixtures::FIGURE2_OLD, fixtures::FIGURE2_NEW);
        let mut dc = DiffCode::new();
        let (outcome, status) = dc.process_pair_cached(old, new, &[], None);
        assert_eq!(status, "off");
        let ChangeOutcome::Mined(tuples) = outcome else {
            panic!("figure 2 pair must mine");
        };
        let corpus = corpus_of_pairs("p", &[(old, new)]);
        let mined = DiffCode::new().mine(&corpus, &[]);
        assert_eq!(tuples.len(), mined.changes.len());
        for (tuple, mined_change) in tuples.iter().zip(&mined.changes) {
            assert_eq!(tuple.0, mined_change.class);
            assert_eq!(tuple.3, mined_change.change);
        }
    }

    #[test]
    fn mining_small_corpus_produces_changes() {
        let corpus = corpus::generate(&corpus::GeneratorConfig::small(4, 11));
        let mut dc = DiffCode::new();
        let result = dc.mine(&corpus, &[]);
        assert!(result.stats.code_changes > 50);
        assert_eq!(result.stats.parse_failures, 0, "templates must parse");
        assert!(!result.changes.is_empty());
        // The vast majority of mined usage changes are non-semantic.
        let same = result.changes.iter().filter(|c| c.change.is_same()).count();
        assert!(
            same as f64 > 0.8 * result.changes.len() as f64,
            "{same}/{}",
            result.changes.len()
        );
    }
}
