//! The end-to-end DiffCode pipeline (paper Figure 1): mine code
//! changes, analyze both versions, derive usage changes per target API
//! class.

use analysis::{analyze, ApiModel, Usages, TARGET_CLASSES};
use corpus::Corpus;
use javalang::ParseError;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use usagegraph::{dags_for_class, diff_dags, pair_dags, UsageChange, UsageDag, DEFAULT_MAX_DEPTH};

/// Provenance of a mined usage change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeMeta {
    /// `user/project`.
    pub project: String,
    /// Commit id.
    pub commit: String,
    /// Commit message.
    pub message: String,
    /// Changed file.
    pub path: String,
}

/// One usage change with provenance and the DAG pair it came from.
#[derive(Debug, Clone)]
pub struct MinedUsageChange {
    /// Where the change was mined.
    pub meta: ChangeMeta,
    /// The target API class.
    pub class: String,
    /// The paired old-version DAG.
    pub old_dag: UsageDag,
    /// The paired new-version DAG.
    pub new_dag: UsageDag,
    /// The `(F⁻, F⁺)` feature diff.
    pub change: UsageChange,
}

/// Aggregate counters from a mining run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MiningStats {
    /// Code changes (program version pairs) processed.
    pub code_changes: usize,
    /// Files that failed to parse on either side (skipped).
    pub parse_failures: usize,
}

/// The result of mining a corpus.
#[derive(Debug, Clone, Default)]
pub struct MiningResult {
    /// All derived usage changes, in corpus order.
    pub changes: Vec<MinedUsageChange>,
    /// Counters.
    pub stats: MiningStats,
}

/// The DiffCode system: configuration + analysis cache.
#[derive(Debug, Default)]
pub struct DiffCode {
    api: ApiModel,
    max_depth: usize,
    cache: HashMap<u64, Rc<Usages>>,
}

impl DiffCode {
    /// A pipeline with the paper's defaults (DAG depth 5).
    pub fn new() -> Self {
        DiffCode { api: ApiModel::standard(), max_depth: DEFAULT_MAX_DEPTH, cache: HashMap::new() }
    }

    /// Overrides the DAG construction depth.
    pub fn with_depth(max_depth: usize) -> Self {
        DiffCode { max_depth, ..DiffCode::new() }
    }

    /// Parses and analyzes one source file, caching by content.
    ///
    /// # Errors
    ///
    /// Propagates lexer-level failures; member-level parse problems are
    /// tolerated by the parser itself.
    pub fn analyze_source(&mut self, source: &str) -> Result<Rc<Usages>, ParseError> {
        let key = content_key(source);
        if let Some(hit) = self.cache.get(&key) {
            return Ok(Rc::clone(hit));
        }
        // `parse_snippet` accepts full units, bare class bodies, and
        // bare statement sequences — the partial programs DiffCode
        // mines (paper §5.1).
        let unit = javalang::parse_snippet(source)?;
        let usages = Rc::new(analyze(&unit, &self.api));
        self.cache.insert(key, Rc::clone(&usages));
        Ok(usages)
    }

    /// Derives the usage changes of `class` between two source
    /// versions, returning the paired DAGs alongside each diff.
    ///
    /// # Errors
    ///
    /// Fails if either source cannot be lexed.
    pub fn usage_changes_from_pair(
        &mut self,
        old_source: &str,
        new_source: &str,
        class: &str,
    ) -> Result<Vec<(UsageDag, UsageDag, UsageChange)>, ParseError> {
        let old = self.analyze_source(old_source)?;
        let new = self.analyze_source(new_source)?;
        Ok(self.usage_changes_from_usages(&old, &new, class))
    }

    /// Same as [`Self::usage_changes_from_pair`] but over pre-analyzed
    /// usages.
    pub fn usage_changes_from_usages(
        &self,
        old: &Usages,
        new: &Usages,
        class: &str,
    ) -> Vec<(UsageDag, UsageDag, UsageChange)> {
        let old_dags = dags_for_class(old, class, self.max_depth);
        let new_dags = dags_for_class(new, class, self.max_depth);
        if old_dags.is_empty() && new_dags.is_empty() {
            return Vec::new();
        }
        pair_dags(&old_dags, &new_dags, class)
            .into_iter()
            .map(|(a, b)| {
                let change = diff_dags(&a, &b);
                (a, b, change)
            })
            .collect()
    }

    /// Mines every code change of `corpus` for usage changes of the
    /// given target classes (defaults to the paper's six, Figure 5).
    pub fn mine(&mut self, corpus: &Corpus, classes: &[&str]) -> MiningResult {
        let classes: Vec<&str> =
            if classes.is_empty() { TARGET_CLASSES.to_vec() } else { classes.to_vec() };
        let mut result = MiningResult::default();
        for code_change in corpus.code_changes() {
            result.stats.code_changes += 1;
            let (old, new) = match (
                self.analyze_source(code_change.old),
                self.analyze_source(code_change.new),
            ) {
                (Ok(old), Ok(new)) => (old, new),
                _ => {
                    result.stats.parse_failures += 1;
                    continue;
                }
            };
            for class in &classes {
                for (old_dag, new_dag, change) in
                    self.usage_changes_from_usages(&old, &new, class)
                {
                    result.changes.push(MinedUsageChange {
                        meta: ChangeMeta {
                            project: code_change.project.full_name(),
                            commit: code_change.commit.id.clone(),
                            message: code_change.commit.message.clone(),
                            path: code_change.path.to_owned(),
                        },
                        class: (*class).to_owned(),
                        old_dag,
                        new_dag,
                        change,
                    });
                }
            }
        }
        result
    }
}

/// Mines `corpus` using one [`DiffCode`] per worker thread, sharding by
/// project. The result is identical to [`DiffCode::mine`] — shards are
/// contiguous project runs concatenated in project order — but
/// wall-clock scales with cores. Shard boundaries balance the number of
/// *code changes* per shard rather than the number of projects: mining
/// cost is driven by how many old/new file pairs a shard parses, and
/// real corpora are heavily skewed (a handful of projects contribute
/// most commits), so equal-project chunks leave most threads idle
/// behind the one that drew the giant project.
pub fn mine_parallel(
    corpus: &Corpus,
    classes: &[&str],
    n_threads: usize,
) -> MiningResult {
    let n_threads = n_threads.max(1).min(corpus.projects.len().max(1));
    if n_threads <= 1 {
        return DiffCode::new().mine(corpus, classes);
    }
    let shards = shard_by_code_changes(corpus, n_threads);
    let results: Vec<MiningResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                scope.spawn(move || DiffCode::new().mine(shard, classes))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("miner thread")).collect()
    });
    let mut merged = MiningResult::default();
    for result in results {
        merged.stats.code_changes += result.stats.code_changes;
        merged.stats.parse_failures += result.stats.parse_failures;
        merged.changes.extend(result.changes);
    }
    merged
}

/// Splits `corpus` into at most `n_shards` contiguous project runs
/// whose total code-change counts are as even as a greedy in-order
/// partition can make them. Projects are never reordered, so
/// concatenating shard results reproduces sequential mining exactly.
fn shard_by_code_changes(corpus: &Corpus, n_shards: usize) -> Vec<Corpus> {
    let weights: Vec<usize> = corpus
        .projects
        .iter()
        .map(|project| {
            project
                .commits
                .iter()
                .map(|commit| {
                    commit
                        .changes
                        .iter()
                        .filter(|change| change.old.is_some() && change.new.is_some())
                        .count()
                })
                .sum()
        })
        .collect();
    let total: usize = weights.iter().sum();
    let mut shards = Vec::with_capacity(n_shards);
    let mut start = 0;
    let mut consumed = 0usize;
    for s in 0..n_shards {
        if start >= corpus.projects.len() {
            break;
        }
        // Re-derive the ideal share from what is still unassigned, so
        // one oversized project early on does not starve later shards.
        let ideal = (total - consumed).div_ceil(n_shards - s);
        let mut end = start;
        let mut acc = 0usize;
        while end < corpus.projects.len() {
            if end > start && acc + weights[end] > ideal {
                break;
            }
            acc += weights[end];
            end += 1;
        }
        consumed += acc;
        shards.push(Corpus { projects: corpus.projects[start..end].to_vec() });
        start = end;
    }
    // The last pass always takes the remainder (ideal == total − consumed).
    debug_assert_eq!(start, corpus.projects.len());
    shards
}

fn content_key(source: &str) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    source.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::fixtures;

    #[test]
    fn figure2_pair_produces_two_changes() {
        let mut dc = DiffCode::new();
        let changes = dc
            .usage_changes_from_pair(fixtures::FIGURE2_OLD, fixtures::FIGURE2_NEW, "Cipher")
            .unwrap();
        assert_eq!(changes.len(), 2, "enc and dec");
        for (_, _, change) in &changes {
            assert!(!change.is_same());
            assert!(!change.removed.is_empty() && !change.added.is_empty());
        }
    }

    #[test]
    fn cache_hits_for_identical_content() {
        let mut dc = DiffCode::new();
        let a = dc.analyze_source(fixtures::FIGURE2_OLD).unwrap();
        let b = dc.analyze_source(fixtures::FIGURE2_OLD).unwrap();
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn parallel_mining_equals_sequential() {
        let corpus = corpus::generate(&corpus::GeneratorConfig::small(8, 77));
        let sequential = DiffCode::new().mine(&corpus, &[]);
        let parallel = super::mine_parallel(&corpus, &[], 4);
        assert_eq!(sequential.stats, parallel.stats);
        assert_eq!(sequential.changes.len(), parallel.changes.len());
        for (a, b) in sequential.changes.iter().zip(&parallel.changes) {
            assert_eq!(a.change, b.change);
            assert_eq!(a.meta, b.meta);
            assert_eq!(a.old_dag, b.old_dag);
        }
    }

    /// A project with `k` code changes (and one file-added change that
    /// must not count toward the shard weight).
    fn project_with_changes(name: &str, k: usize) -> corpus::Project {
        let changes = |i: usize| corpus::FileChange {
            path: format!("F{i}.java"),
            old: Some(format!("class F{i} {{}}")),
            new: Some(format!("class F{i} {{ int x; }}")),
        };
        corpus::Project {
            user: "u".into(),
            name: name.into(),
            facts: corpus::ProjectFacts::default(),
            commits: vec![corpus::Commit {
                id: format!("{name}-1"),
                message: "edit".into(),
                changes: (0..k)
                    .map(changes)
                    .chain(std::iter::once(corpus::FileChange {
                        path: "New.java".into(),
                        old: None,
                        new: Some("class New {}".into()),
                    }))
                    .collect(),
            }],
        }
    }

    #[test]
    fn shards_balance_by_code_change_count_not_project_count() {
        // One giant project followed by six tiny ones: equal-project
        // chunking at 4 threads would pair the giant with a tiny one
        // and leave that shard with 13/19 of the work.
        let sizes = [12usize, 2, 1, 1, 1, 1, 1];
        let corpus = corpus::Corpus {
            projects: sizes
                .iter()
                .enumerate()
                .map(|(i, &k)| project_with_changes(&format!("p{i}"), k))
                .collect(),
        };
        let shards = super::shard_by_code_changes(&corpus, 4);
        let loads: Vec<usize> =
            shards.iter().map(|s| s.code_changes().count()).collect();
        // The giant project is alone in its shard and the tiny ones
        // spread over the remaining shards instead of queueing behind it.
        assert_eq!(loads[0], 12, "{loads:?}");
        assert!(loads.len() >= 3, "{loads:?}");
        assert!(loads[1..].iter().all(|&l| l <= 4), "{loads:?}");
        // Order is preserved: concatenated shards reproduce the corpus.
        let concatenated: Vec<_> = shards
            .iter()
            .flat_map(|s| s.projects.iter().map(|p| p.name.clone()))
            .collect();
        let original: Vec<_> = corpus.projects.iter().map(|p| p.name.clone()).collect();
        assert_eq!(concatenated, original);
    }

    #[test]
    fn skewed_parallel_mining_equals_sequential() {
        let mut corpus = corpus::generate(&corpus::GeneratorConfig::small(6, 21));
        // Skew the corpus: duplicate the first project's commits so one
        // project dominates the work distribution.
        for _ in 0..3 {
            let extra = corpus.projects[0].commits.clone();
            corpus.projects[0].commits.extend(extra);
        }
        let sequential = DiffCode::new().mine(&corpus, &[]);
        let parallel = super::mine_parallel(&corpus, &[], 3);
        assert_eq!(sequential.stats, parallel.stats);
        assert_eq!(sequential.changes.len(), parallel.changes.len());
        for (a, b) in sequential.changes.iter().zip(&parallel.changes) {
            assert_eq!(a.change, b.change);
            assert_eq!(a.meta, b.meta);
        }
    }

    #[test]
    fn mining_small_corpus_produces_changes() {
        let corpus = corpus::generate(&corpus::GeneratorConfig::small(4, 11));
        let mut dc = DiffCode::new();
        let result = dc.mine(&corpus, &[]);
        assert!(result.stats.code_changes > 50);
        assert_eq!(result.stats.parse_failures, 0, "templates must parse");
        assert!(!result.changes.is_empty());
        // The vast majority of mined usage changes are non-semantic.
        let same = result.changes.iter().filter(|c| c.change.is_same()).count();
        assert!(
            same as f64 > 0.8 * result.changes.len() as f64,
            "{same}/{}",
            result.changes.len()
        );
    }
}
