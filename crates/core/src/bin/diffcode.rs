//! The `diffcode` command-line tool. See [`diffcode::cli::USAGE`].

use diffcode::cli;
use rules::ProjectContext;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        print!("{}", cli::USAGE);
        return Ok(ExitCode::from(2));
    };
    match command.as_str() {
        "analyze" => {
            let (paths, classes, _) = parse_flags(&args[1..])?;
            let [path] = paths.as_slice() else {
                return Err("analyze takes exactly one file".to_owned());
            };
            let source = read(path)?;
            let classes: Vec<&str> = classes.iter().map(String::as_str).collect();
            print!(
                "{}",
                cli::render_analysis(&source, &classes).map_err(|e| e.to_string())?
            );
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let (paths, classes, _) = parse_flags(&args[1..])?;
            let [old, new] = paths.as_slice() else {
                return Err("diff takes exactly two files".to_owned());
            };
            let old_source = read(old)?;
            let new_source = read(new)?;
            let classes: Vec<&str> = classes.iter().map(String::as_str).collect();
            print!(
                "{}",
                cli::render_diff(&old_source, &new_source, &classes).map_err(|e| e.to_string())?
            );
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let (paths, _, android) = parse_flags(&args[1..])?;
            if paths.is_empty() {
                return Err("check needs at least one file or directory".to_owned());
            }
            let mut files = Vec::new();
            for path in &paths {
                collect_java_files(path, &mut files)?;
            }
            if files.is_empty() {
                return Err("no .java files found".to_owned());
            }
            let context = match android {
                Some(min_sdk) => ProjectContext::android(min_sdk),
                None => ProjectContext::plain(),
            };
            let (report, violations) = cli::render_check(&files, context);
            print!("{report}");
            Ok(if violations == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "rules" => {
            print!("{}", cli::render_rules());
            Ok(ExitCode::SUCCESS)
        }
        "chaos" => {
            let (seed, rate, projects) = parse_chaos_flags(&args[1..])?;
            print!("{}", cli::render_chaos(seed, rate, projects));
            Ok(ExitCode::SUCCESS)
        }
        "mine" => {
            let opts = parse_mine_flags(&args[1..])?;
            let source = opts.source()?;
            let threads = opts.threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
            let registry = match &opts.trace_out {
                Some(trace_path) => {
                    let (report, registry, trace) = cli::run_mine_traced(
                        &source,
                        threads,
                        opts.cache_dir.as_deref(),
                        opts.cluster_cache_dir.as_deref(),
                        opts.trace_sample.unwrap_or(1),
                    )?;
                    std::fs::write(trace_path, obs::to_chrome_json(&trace))
                        .map_err(|e| format!("{}: {e}", trace_path.display()))?;
                    print!("{report}");
                    println!(
                        "trace: {} event(s) written to {}",
                        trace.len(),
                        trace_path.display()
                    );
                    registry
                }
                None => {
                    // Graceful Ctrl-C: mining stops between changes,
                    // the cache log is flushed, the partial summary
                    // prints, and the process exits 130.
                    diffcode::shutdown::install();
                    let (report, registry, interrupted) = cli::run_mine_interruptible(
                        &source,
                        threads,
                        opts.cache_dir.as_deref(),
                        opts.cluster_cache_dir.as_deref(),
                        diffcode::shutdown::flag(),
                    )?;
                    print!("{report}");
                    if interrupted {
                        if let Some(path) = opts.metrics_json {
                            std::fs::write(&path, registry.to_json())
                                .map_err(|e| format!("{}: {e}", path.display()))?;
                        }
                        return Ok(ExitCode::from(130));
                    }
                    registry
                }
            };
            if let Some(path) = opts.metrics_json {
                std::fs::write(&path, registry.to_json())
                    .map_err(|e| format!("{}: {e}", path.display()))?;
            }
            Ok(ExitCode::SUCCESS)
        }
        "serve" => {
            // Cargo-style external subcommand: the server depends on
            // this crate, so it lives in its own binary
            // (`diffcode-serve`, crates/serve) installed next to this
            // one. On Unix, exec() replaces this process so the server
            // keeps our pid — a supervisor's SIGTERM reaches the drain
            // logic directly instead of killing a wrapper and orphaning
            // the listener.
            let exe = std::env::current_exe()
                .map_err(|e| format!("resolving current executable: {e}"))?;
            let name = if cfg!(windows) {
                "diffcode-serve.exe"
            } else {
                "diffcode-serve"
            };
            let sibling = exe.with_file_name(name);
            let mut cmd = std::process::Command::new(&sibling);
            cmd.args(&args[1..]);
            let launch_err = |e: std::io::Error| {
                format!(
                    "launching {}: {e} (is the diffcode-serve binary installed \
                     next to diffcode?)",
                    sibling.display()
                )
            };
            #[cfg(unix)]
            {
                use std::os::unix::process::CommandExt as _;
                // exec only returns on failure.
                Err(launch_err(cmd.exec()))
            }
            #[cfg(not(unix))]
            {
                let status = cmd.status().map_err(launch_err)?;
                let code = status.code().unwrap_or(130);
                Ok(ExitCode::from(u8::try_from(code).unwrap_or(1)))
            }
        }
        "explain" => {
            let (query, opts) = parse_explain_flags(&args[1..])?;
            let source = opts.source()?;
            let threads = opts.threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
            print!("{}", cli::run_explain_source(&query, &source, threads)?);
            Ok(ExitCode::SUCCESS)
        }
        "cache" => {
            let (action, dir, namespace) = parse_cache_args(&args[1..])?;
            let namespace = namespace.as_deref();
            match action.as_str() {
                "stats" => {
                    print!("{}", cli::render_cache_stats(&dir, namespace)?);
                    Ok(ExitCode::SUCCESS)
                }
                "vacuum" => {
                    print!("{}", cli::render_cache_vacuum(&dir, namespace)?);
                    Ok(ExitCode::SUCCESS)
                }
                "verify" => {
                    let (report, clean) = cli::render_cache_verify(&dir, namespace)?;
                    print!("{report}");
                    Ok(if clean {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    })
                }
                other => Err(format!(
                    "unknown cache action `{other}` (expected stats, vacuum, or verify)"
                )),
            }
        }
        "metrics" => {
            let (seed, projects, threads, json_path) = parse_metrics_flags(&args[1..])?;
            let threads = threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
            let (report, registry) = cli::run_metrics(seed, projects, threads);
            print!("{report}");
            if let Some(path) = json_path {
                std::fs::write(&path, registry.to_json())
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                println!("metrics snapshot written to {}", path.display());
            }
            Ok(ExitCode::SUCCESS)
        }
        "help" | "--help" | "-h" => {
            print!("{}", cli::USAGE);
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n\n{}", cli::USAGE)),
    }
}

/// Parsed positional paths, `--class` values, and `--android` minSdk.
type ParsedFlags = (Vec<PathBuf>, Vec<String>, Option<i64>);

/// Splits positional arguments from `--class <Name>` (repeatable) and
/// `--android <minSdk>` flags.
fn parse_flags(args: &[String]) -> Result<ParsedFlags, String> {
    let mut paths = Vec::new();
    let mut classes = Vec::new();
    let mut android = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--class" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--class needs a value".to_owned())?;
                classes.push(value.clone());
            }
            "--android" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--android needs a minSdkVersion".to_owned())?;
                android = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad minSdkVersion `{value}`"))?,
                );
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    Ok((paths, classes, android))
}

/// Parses `chaos` flags: `--seed <N>` (default 42), `--rate <0..1>`
/// (default 0.4), `--projects <N>` (default 6).
fn parse_chaos_flags(args: &[String]) -> Result<(u64, f64, usize), String> {
    let mut seed = 42u64;
    let mut rate = 0.4f64;
    let mut projects = 6usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_for = |flag: &str| iter.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--seed" => {
                let value = value_for("--seed")?;
                seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
            }
            "--rate" => {
                let value = value_for("--rate")?;
                rate = value.parse().map_err(|_| format!("bad rate `{value}`"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("rate `{value}` not in 0..1"));
                }
            }
            "--projects" => {
                let value = value_for("--projects")?;
                projects = value
                    .parse()
                    .map_err(|_| format!("bad project count `{value}`"))?;
            }
            other => return Err(format!("unknown chaos argument `{other}`")),
        }
    }
    Ok((seed, rate, projects))
}

/// Parsed `mine` flags.
struct MineOpts {
    seed: Option<u64>,
    projects: Option<usize>,
    repo: Option<PathBuf>,
    rev_range: Option<String>,
    max_commits: Option<usize>,
    threads: Option<usize>,
    cache_dir: Option<PathBuf>,
    cluster_cache_dir: Option<PathBuf>,
    metrics_json: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    trace_sample: Option<u64>,
}

impl MineOpts {
    /// Resolves the seeded-vs-repo source, rejecting mixed flags (a
    /// repo walk has no seed or project count to vary).
    fn source(&self) -> Result<cli::MineSource, String> {
        match &self.repo {
            Some(repo) => {
                if self.seed.is_some() || self.projects.is_some() {
                    return Err("--repo conflicts with --seed/--projects".to_owned());
                }
                Ok(cli::MineSource::Repo {
                    repo: repo.clone(),
                    rev_range: self.rev_range.clone(),
                    max_commits: self.max_commits,
                })
            }
            None => {
                if self.rev_range.is_some() || self.max_commits.is_some() {
                    return Err("--rev-range/--max-commits need --repo".to_owned());
                }
                Ok(cli::MineSource::Seeded {
                    seed: self.seed.unwrap_or(42),
                    n_projects: self.projects.unwrap_or(12),
                })
            }
        }
    }
}

/// Parses `mine` flags: `--seed <N>` (default 42), `--projects <N>`
/// (default 12), `--threads <N>` (default: all cores), `--cache-dir
/// <dir>` (enables the persistent result cache), `--cluster-cache-dir
/// <dir>` (clusters the mined changes through persisted distance
/// cells), `--metrics-json <path>` (optional snapshot output),
/// `--trace-out <path>` (Chrome trace-event JSON export), and
/// `--trace-sample <N>` (keep every Nth span; needs `--trace-out`).
fn parse_mine_flags(args: &[String]) -> Result<MineOpts, String> {
    let mut opts = MineOpts {
        seed: None,
        projects: None,
        repo: None,
        rev_range: None,
        max_commits: None,
        threads: None,
        cache_dir: None,
        cluster_cache_dir: None,
        metrics_json: None,
        trace_out: None,
        trace_sample: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_for = |flag: &str| iter.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--seed" => {
                let value = value_for("--seed")?;
                opts.seed = Some(value.parse().map_err(|_| format!("bad seed `{value}`"))?);
            }
            "--projects" => {
                let value = value_for("--projects")?;
                opts.projects = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad project count `{value}`"))?,
                );
            }
            "--repo" => {
                opts.repo = Some(PathBuf::from(value_for("--repo")?));
            }
            "--rev-range" => {
                opts.rev_range = Some(value_for("--rev-range")?.clone());
            }
            "--max-commits" => {
                let value = value_for("--max-commits")?;
                opts.max_commits = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad commit count `{value}`"))?,
                );
            }
            "--threads" => {
                let value = value_for("--threads")?;
                opts.threads = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad thread count `{value}`"))?,
                );
            }
            "--cache-dir" => {
                opts.cache_dir = Some(PathBuf::from(value_for("--cache-dir")?));
            }
            "--cluster-cache-dir" => {
                opts.cluster_cache_dir = Some(PathBuf::from(value_for("--cluster-cache-dir")?));
            }
            "--metrics-json" => {
                opts.metrics_json = Some(PathBuf::from(value_for("--metrics-json")?));
            }
            "--trace-out" => {
                opts.trace_out = Some(PathBuf::from(value_for("--trace-out")?));
            }
            "--trace-sample" => {
                let value = value_for("--trace-sample")?;
                let sample: u64 = value
                    .parse()
                    .map_err(|_| format!("bad sample interval `{value}`"))?;
                if sample == 0 {
                    return Err("--trace-sample must be at least 1".to_owned());
                }
                opts.trace_sample = Some(sample);
            }
            other => return Err(format!("unknown mine argument `{other}`")),
        }
    }
    if opts.trace_sample.is_some() && opts.trace_out.is_none() {
        return Err("--trace-sample needs --trace-out".to_owned());
    }
    Ok(opts)
}

/// Parses `explain` arguments: one positional query (a fingerprint
/// prefix or a `project/path` substring) plus the same corpus-source
/// flags as `mine` — `--seed <N>` (default 42), `--projects <N>`
/// (default 12) or `--repo <path>` with optional `--rev-range <A..B>`
/// and `--max-commits <N>` — and `--threads <N>` (default: all cores).
fn parse_explain_flags(args: &[String]) -> Result<(String, MineOpts), String> {
    let mut query = None;
    let mut opts = MineOpts {
        seed: None,
        projects: None,
        repo: None,
        rev_range: None,
        max_commits: None,
        threads: None,
        cache_dir: None,
        cluster_cache_dir: None,
        metrics_json: None,
        trace_out: None,
        trace_sample: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_for = |flag: &str| iter.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--seed" => {
                let value = value_for("--seed")?;
                opts.seed = Some(value.parse().map_err(|_| format!("bad seed `{value}`"))?);
            }
            "--projects" => {
                let value = value_for("--projects")?;
                opts.projects = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad project count `{value}`"))?,
                );
            }
            "--repo" => {
                opts.repo = Some(PathBuf::from(value_for("--repo")?));
            }
            "--rev-range" => {
                opts.rev_range = Some(value_for("--rev-range")?.clone());
            }
            "--max-commits" => {
                let value = value_for("--max-commits")?;
                opts.max_commits = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad commit count `{value}`"))?,
                );
            }
            "--threads" => {
                let value = value_for("--threads")?;
                opts.threads = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad thread count `{value}`"))?,
                );
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown explain flag `{flag}`"));
            }
            word => {
                if query.replace(word.to_owned()).is_some() {
                    return Err("explain takes exactly one query".to_owned());
                }
            }
        }
    }
    let query = query
        .ok_or_else(|| "explain needs a query: a fingerprint prefix or project/path".to_owned())?;
    Ok((query, opts))
}

/// Parses `cache` arguments: one action (`stats`, `vacuum`, `verify`)
/// plus a required `--cache-dir <dir>` and an optional `--namespace
/// <ns>` selecting which log in the directory to operate on (`cache`,
/// the mining default, or `cluster`).
fn parse_cache_args(args: &[String]) -> Result<(String, PathBuf, Option<String>), String> {
    let mut action = None;
    let mut dir = None;
    let mut namespace = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--cache-dir" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--cache-dir needs a value".to_owned())?;
                dir = Some(PathBuf::from(value));
            }
            "--namespace" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--namespace needs a value".to_owned())?;
                namespace = Some(value.clone());
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown cache flag `{flag}`"));
            }
            word => {
                if action.replace(word.to_owned()).is_some() {
                    return Err("cache takes exactly one action".to_owned());
                }
            }
        }
    }
    let action =
        action.ok_or_else(|| "cache needs an action: stats, vacuum, or verify".to_owned())?;
    let dir = dir.ok_or_else(|| "cache needs --cache-dir <dir>".to_owned())?;
    Ok((action, dir, namespace))
}

/// Parses `metrics` flags: `--seed <N>` (default 42), `--projects <N>`
/// (default 12), `--threads <N>` (default: all cores), and
/// `--metrics-json <path>` (optional snapshot output).
fn parse_metrics_flags(
    args: &[String],
) -> Result<(u64, usize, Option<usize>, Option<PathBuf>), String> {
    let mut seed = 42u64;
    let mut projects = 12usize;
    let mut threads = None;
    let mut json_path = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_for = |flag: &str| iter.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--seed" => {
                let value = value_for("--seed")?;
                seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
            }
            "--projects" => {
                let value = value_for("--projects")?;
                projects = value
                    .parse()
                    .map_err(|_| format!("bad project count `{value}`"))?;
            }
            "--threads" => {
                let value = value_for("--threads")?;
                threads = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad thread count `{value}`"))?,
                );
            }
            "--metrics-json" => {
                json_path = Some(PathBuf::from(value_for("--metrics-json")?));
            }
            other => return Err(format!("unknown metrics argument `{other}`")),
        }
    }
    Ok((seed, projects, threads, json_path))
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn collect_java_files(path: &Path, out: &mut Vec<(String, String)>) -> Result<(), String> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            collect_java_files(&entry, out)?;
        }
        return Ok(());
    }
    if path.extension().is_some_and(|ext| ext == "java") {
        out.push((path.display().to_string(), read(path)?));
    }
    Ok(())
}
