//! Std-only SIGINT/SIGTERM handling for graceful shutdown.
//!
//! Both the one-shot CLI (flush the cache log, print partial stats)
//! and the resident server (stop accepting, drain, flush) need to
//! observe Ctrl-C / SIGTERM without pulling in a signal-handling
//! crate. The mechanism is the minimal async-signal-safe one: a
//! process-wide atomic flag set by a `signal(2)`-installed handler.
//! The handler does nothing but store `true` — every other reaction
//! (draining, flushing, exiting 130) happens on ordinary threads that
//! poll [`requested`] or [`flag`].
//!
//! On non-Unix targets installation is a no-op: the flag exists and
//! can be set programmatically (tests do this), it just is not wired
//! to any OS signal.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

/// The process-wide shutdown flag.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

static INSTALL: Once = Once::new();

/// `true` once SIGINT or SIGTERM has been received (or the flag was
/// set programmatically via [`flag`]).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// The raw flag, for wiring into
/// [`crate::pipeline::mine_parallel_interruptible`] or polling loops.
/// `'static` by construction, so no lifetime threads through the
/// pipeline types.
pub fn flag() -> &'static AtomicBool {
    &SHUTDOWN
}

/// Installs the SIGINT + SIGTERM handler (idempotent; later calls are
/// no-ops). Call early in `main`, before any worker threads exist.
pub fn install() {
    INSTALL.call_once(|| {
        imp::install();
    });
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // `signal(2)` from libc, which every Unix target links anyway.
    // Handlers are passed and returned as plain addresses, which is
    // all the std-only FFI needs: we never inspect the previous
    // handler.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // The only async-signal-safe thing worth doing: set the flag.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        // Failure (SIG_ERR) is deliberately ignored: a process that
        // cannot install handlers degrades to default signal behavior,
        // which is the pre-existing state of the world.
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn flag_round_trips_and_install_is_idempotent() {
        install();
        install();
        assert!(!requested(), "fresh process has no pending shutdown");
        flag().store(true, Ordering::SeqCst);
        assert!(requested());
        flag().store(false, Ordering::SeqCst);
        assert!(!requested());
    }
}
