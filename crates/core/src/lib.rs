//! # DiffCode — inferring crypto-API rules from code changes
//!
//! A Rust reproduction of the PLDI'18 paper *"Inferring Crypto API
//! Rules from Code Changes"* (Paletov, Tsankov, Raychev, Vechev).
//!
//! The pipeline (paper Figure 1):
//!
//! 1. **Mine** code changes from a corpus of Java projects
//!    ([`DiffCode::mine`], corpus provided by the [`corpus`] crate).
//! 2. **Abstract** each change into semantic *usage changes* via a
//!    lightweight AST-based static analysis ([`analysis`]) and
//!    depth-bounded usage DAGs ([`usagegraph`]).
//! 3. **Filter** non-semantic changes — refactorings, pure additions/
//!    removals, duplicates ([`filter::apply_filters`]).
//! 4. **Cluster** the survivors hierarchically and **elicit** security
//!    rules ([`elicit::elicit`], [`rules`]).
//! 5. **Check** projects against the elicited rules with CryptoChecker
//!    ([`rules::CryptoChecker`]).
//!
//! # Quickstart
//!
//! ```
//! use diffcode::DiffCode;
//! use corpus::fixtures;
//!
//! let mut dc = DiffCode::new();
//! let changes = dc.usage_changes_from_pair(
//!     fixtures::FIGURE2_OLD,
//!     fixtures::FIGURE2_NEW,
//!     "Cipher",
//! )?;
//! // The paper's Figure 2(d): the `enc` object loses the bare "AES"
//! // feature and gains CBC + an IV.
//! let (_, _, change) = &changes[0];
//! assert_eq!(
//!     change.removed[0].to_string(),
//!     "Cipher getInstance arg1:AES"
//! );
//! # Ok::<(), javalang::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod ccache;
pub mod cli;
pub mod decision;
pub mod elicit;
pub mod experiments;
pub mod filter;
pub mod mcache;
pub mod pipeline;
pub mod quarantine;
pub mod report;
pub mod shutdown;

pub use ccache::{CellLookup, ClusterCache, CLUSTERING_VERSION, CLUSTER_NAMESPACE};
pub use decision::{DecisionReason, DECISION_EVENT};
pub use elicit::{elicit, elicit_auto, render_dendrogram, ClusterReport, Elicitation};
pub use elicit::{elicit_auto_cached, elicit_auto_traced, elicit_auto_with_metrics, CLUSTER_MAX_K};
pub use experiments::{
    figure9_table, Experiments, Figure10Output, Figure6Row, Figure7Cell, Figure7Row, Figure8Output,
};
pub use filter::{
    apply_filters, apply_filters_traced, apply_filters_with_metrics, apply_filters_with_seen,
    stage_changes, stage_changes_with_seen, DupKey, FilterStage, FilterStats, SeenDups,
};
pub use mcache::{CachedLookup, ChangeOutcome, MiningCache, MiningCacheView, ANALYSIS_VERSION};
pub use pipeline::{
    change_fingerprint, mine_parallel, mine_parallel_cached, mine_parallel_interruptible,
    mine_parallel_traced, mine_parallel_with_metrics, ChangeMeta, DiffCode, MinedUsageChange,
    MiningResult, MiningStats,
};
pub use quarantine::{ErrorKind, PipelineError, PipelineLimits, QuarantineReport, SkipCounters};
pub use report::{display_width, Table};
