//! Incremental clustering: the persisted distance-cell cache.
//!
//! A [`usage_dist`](cluster::usage_dist) cell is a pure function of the
//! two usage changes it compares (and the clustering configuration), so
//! — exactly like mining outcomes in [`crate::mcache`] — it can be
//! persisted and replayed instead of recomputed. On a warm re-cluster
//! over a grown corpus, only the cells touching *new* changes are
//! evaluated; everything else streams back out of the
//! [`cache`] append log (the `"cluster"` namespace of the same cache
//! directory the mining cache uses).
//!
//! - **Keys** ([`ClusterCache::cell_key`]): a 128-bit fingerprint of
//!   the clustering configuration fingerprint plus the two changes'
//!   content fingerprints in *sorted* order — one key per unordered
//!   pair, independent of corpus position, so a change keeps its cells
//!   no matter where a later run enumerates it.
//! - **Payloads**: the raw `f64::to_bits` of the distance, 8 bytes
//!   little-endian. An `f64` round-trips bit-exactly, which is what
//!   lets a warm matrix (and everything downstream: dendrogram,
//!   silhouette cut, report) be **byte-identical** to a cold run.
//! - **Label memo** ([`ClusterCache::label_memo`]): the
//!   [`LabelCache`](cluster::LabelCache) similarity memo is persisted
//!   under a single well-known key (last write wins), so even the
//!   *new* cells of a warm run skip recomputing known label pairs.
//! - **Versioning** ([`CLUSTERING_VERSION`]): bumped on any semantic
//!   change to the distance stack (`cluster::dist`, `cluster::lev`);
//!   entries under another version report stale and are recomputed.
//! - **Config stamp**: the configuration fingerprint folds in the
//!   codec version, the distance function's identity, and the linkage.
//!   Linkage cannot change a *cell*, only the dendrogram built from
//!   cells — folding it in anyway is deliberately conservative: a
//!   config flip must trigger a visible full recompute, never a silent
//!   partial reuse (the same rule `ANALYSIS_VERSION` enforces for
//!   mining).

use cache::wire::{Reader, Writer};
use cache::{fingerprint, CacheStore, Fingerprint, Lookup, StoreError};
use cluster::Linkage;
use std::path::Path;
use usagegraph::UsageChange;

/// The semantic version of the distance stack (label classification,
/// Levenshtein units, path/usage distance). **Bump this on any change
/// to `cluster::lev` or `cluster::dist` that can alter a distance** —
/// persisted cells from an older version are then reported stale and
/// recomputed instead of replayed.
pub const CLUSTERING_VERSION: u32 = 1;

/// The cache-directory namespace of the clustering log (the mining
/// cache owns the default `"cache"` namespace).
pub const CLUSTER_NAMESPACE: &str = "cluster";

/// Version tag of the cell/memo payload encodings (bumped on codec
/// change; folded into the configuration fingerprint).
const CODEC_VERSION: &str = "cells-v1";

/// What a cell lookup produced.
#[derive(Debug, PartialEq)]
pub enum CellLookup {
    /// The persisted distance, bit-exact.
    Hit(f64),
    /// An entry exists but was written under another
    /// [`CLUSTERING_VERSION`].
    StaleVersion,
    /// No usable entry (absent, or present but not 8 payload bytes).
    Miss,
}

/// A persistent distance-cell cache bound to the `"cluster"` namespace
/// of a cache directory.
#[derive(Debug)]
pub struct ClusterCache {
    store: CacheStore,
    config_fp: Fingerprint,
}

impl ClusterCache {
    /// Opens (creating if needed) the cluster log under `dir` at
    /// [`CLUSTERING_VERSION`], stamped with the configuration
    /// fingerprint for `linkage`.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on I/O failures or mid-log corruption (see
    /// [`CacheStore::open`]); a damaged log is refused, not silently
    /// truncated.
    pub fn open(dir: &Path, linkage: Linkage) -> Result<ClusterCache, StoreError> {
        ClusterCache::open_at_version(dir, linkage, CLUSTERING_VERSION)
    }

    /// [`ClusterCache::open`] under the pipeline's own configuration —
    /// complete linkage, what `diffcode mine --cluster-cache-dir` runs.
    /// The server opens through this so its cells share keys with the
    /// one-shot runs (and so it needn't name the cluster crate).
    ///
    /// # Errors
    ///
    /// As [`ClusterCache::open`].
    pub fn open_default(dir: &Path) -> Result<ClusterCache, StoreError> {
        ClusterCache::open(dir, Linkage::Complete)
    }

    /// [`ClusterCache::open`] at an explicit version — the invalidation
    /// tests flip the version without editing this crate.
    pub fn open_at_version(
        dir: &Path,
        linkage: Linkage,
        version: u32,
    ) -> Result<ClusterCache, StoreError> {
        let store = CacheStore::open_ns(dir, version, CLUSTER_NAMESPACE)?;
        Ok(ClusterCache {
            store,
            config_fp: config_fingerprint(linkage),
        })
    }

    /// The content fingerprint of one usage change: class, removed
    /// paths, added paths — everything [`cluster::usage_dist`] reads,
    /// nothing it doesn't (no provenance, no corpus position).
    pub fn change_fingerprint(change: &UsageChange) -> Fingerprint {
        let mut w = Writer::new();
        w.str(&change.class);
        for side in [&change.removed, &change.added] {
            w.u64(side.len() as u64);
            for path in side.iter() {
                w.u64(path.0.len() as u64);
                for label in &path.0 {
                    w.str(label);
                }
            }
        }
        let bytes = w.finish();
        fingerprint(&[&bytes])
    }

    /// The cache key of the cell for an unordered pair of change
    /// fingerprints: configuration fingerprint plus the two content
    /// fingerprints in sorted order.
    pub fn cell_key(&self, a: Fingerprint, b: Fingerprint) -> Fingerprint {
        let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        fingerprint(&[
            &self.config_fp.0.to_le_bytes(),
            &lo.0.to_le_bytes(),
            &hi.0.to_le_bytes(),
        ])
    }

    /// Looks up the persisted cell for an unordered fingerprint pair.
    pub fn cell(&self, a: Fingerprint, b: Fingerprint) -> CellLookup {
        match self.store.get(self.cell_key(a, b)) {
            Lookup::Hit(bytes) => match <[u8; 8]>::try_from(bytes) {
                Ok(raw) => CellLookup::Hit(f64::from_bits(u64::from_le_bytes(raw))),
                Err(_) => CellLookup::Miss,
            },
            Lookup::StaleVersion => CellLookup::StaleVersion,
            Lookup::Miss => CellLookup::Miss,
        }
    }

    /// Records a freshly computed cell. Visible to [`ClusterCache::cell`]
    /// immediately; durable after [`ClusterCache::flush`].
    pub fn record_cell(&mut self, a: Fingerprint, b: Fingerprint, distance: f64) {
        let key = self.cell_key(a, b);
        self.store
            .insert(key, distance.to_bits().to_le_bytes().to_vec());
    }

    /// The persisted label-similarity memo, or empty when absent,
    /// stale, or undecodable (the memo is a pure accelerator — losing
    /// it costs time, never correctness).
    pub fn label_memo(&self) -> Vec<(String, String, f64)> {
        let Lookup::Hit(bytes) = self.store.get(self.memo_key()) else {
            return Vec::new();
        };
        decode_memo(bytes).unwrap_or_default()
    }

    /// Persists the full label-similarity memo (supersedes the prior
    /// record — last write wins, and vacuum compacts the old ones).
    pub fn record_label_memo(&mut self, entries: &[(String, String, f64)]) {
        let key = self.memo_key();
        self.store.insert(key, encode_memo(entries));
    }

    fn memo_key(&self) -> Fingerprint {
        fingerprint(&[b"label-memo", &self.config_fp.0.to_le_bytes()])
    }

    /// Persists recorded entries to disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; entries stay queued.
    pub fn flush(&mut self) -> std::io::Result<usize> {
        self.store.flush()
    }

    /// The underlying store (stats, vacuum).
    pub fn store(&self) -> &CacheStore {
        &self.store
    }

    /// The underlying store, mutably (vacuum).
    pub fn store_mut(&mut self) -> &mut CacheStore {
        &mut self.store
    }
}

fn encode_memo(entries: &[(String, String, f64)]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(entries.len() as u64);
    for (a, b, sim) in entries {
        w.str(a);
        w.str(b);
        w.u64(sim.to_bits());
    }
    w.finish()
}

fn decode_memo(bytes: &[u8]) -> Option<Vec<(String, String, f64)>> {
    let mut r = Reader::new(bytes);
    let n = r.u64().ok()?;
    let mut out = Vec::new();
    for _ in 0..n {
        let a = r.str().ok()?.to_owned();
        let b = r.str().ok()?.to_owned();
        let sim = f64::from_bits(r.u64().ok()?);
        out.push((a, b, sim));
    }
    if !r.is_exhausted() {
        return None;
    }
    Some(out)
}

/// Fingerprints everything configurable that must invalidate persisted
/// cells: the payload codec, the distance function's identity, and the
/// linkage (conservatively — see the module docs).
fn config_fingerprint(linkage: Linkage) -> Fingerprint {
    let parts = [
        CODEC_VERSION.to_owned(),
        "dist:usage-v1".to_owned(),
        format!("linkage:{linkage:?}"),
    ];
    let parts: Vec<&str> = parts.iter().map(String::as_str).collect();
    cache::fingerprint_str(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usagegraph::{FeaturePath, Label};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("diffcode-ccache-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn path(labels: &[&str]) -> FeaturePath {
        FeaturePath(labels.iter().copied().map(Label::from).collect())
    }

    fn change(from: &str, to: &str) -> UsageChange {
        UsageChange {
            class: "Cipher".to_owned(),
            removed: vec![path(&["Cipher", "getInstance", from])],
            added: vec![path(&["Cipher", "getInstance", to])],
        }
    }

    #[test]
    fn change_fingerprint_is_content_addressed() {
        let a = change("arg1:AES/ECB", "arg1:AES/CBC");
        let same = change("arg1:AES/ECB", "arg1:AES/CBC");
        assert_eq!(
            ClusterCache::change_fingerprint(&a),
            ClusterCache::change_fingerprint(&same)
        );
        let swapped = change("arg1:AES/CBC", "arg1:AES/ECB");
        assert_ne!(
            ClusterCache::change_fingerprint(&a),
            ClusterCache::change_fingerprint(&swapped),
            "removed vs added sides are ordered"
        );
        let other_class = UsageChange {
            class: "Mac".to_owned(),
            ..change("arg1:AES/ECB", "arg1:AES/CBC")
        };
        assert_ne!(
            ClusterCache::change_fingerprint(&a),
            ClusterCache::change_fingerprint(&other_class)
        );
    }

    #[test]
    fn cells_round_trip_bit_exactly_across_reopen() {
        let dir = temp_dir("cells");
        let (fa, fb) = (
            ClusterCache::change_fingerprint(&change("arg1:A", "arg1:B")),
            ClusterCache::change_fingerprint(&change("arg1:C", "arg1:D")),
        );
        // A value with a busy mantissa: bit-exactness is the contract.
        let d = 0.123_456_789_012_345_67_f64;
        let mut cache = ClusterCache::open(&dir, Linkage::Complete).unwrap();
        assert_eq!(cache.cell(fa, fb), CellLookup::Miss);
        cache.record_cell(fa, fb, d);
        cache.flush().unwrap();

        let cache = ClusterCache::open(&dir, Linkage::Complete).unwrap();
        match cache.cell(fa, fb) {
            CellLookup::Hit(got) => assert_eq!(got.to_bits(), d.to_bits()),
            other => panic!("expected hit, got {other:?}"),
        }
        // The pair is unordered: both orientations address one cell.
        assert_eq!(cache.cell(fb, fa), CellLookup::Hit(d));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_bump_reports_stale() {
        let dir = temp_dir("version");
        let (fa, fb) = (
            ClusterCache::change_fingerprint(&change("arg1:A", "arg1:B")),
            ClusterCache::change_fingerprint(&change("arg1:C", "arg1:D")),
        );
        let mut cache =
            ClusterCache::open_at_version(&dir, Linkage::Complete, CLUSTERING_VERSION).unwrap();
        cache.record_cell(fa, fb, 0.5);
        cache.flush().unwrap();
        let bumped =
            ClusterCache::open_at_version(&dir, Linkage::Complete, CLUSTERING_VERSION + 1).unwrap();
        assert_eq!(bumped.cell(fa, fb), CellLookup::StaleVersion);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_flip_changes_every_cell_key() {
        let dir = temp_dir("config");
        let (fa, fb) = (
            ClusterCache::change_fingerprint(&change("arg1:A", "arg1:B")),
            ClusterCache::change_fingerprint(&change("arg1:C", "arg1:D")),
        );
        let mut cache = ClusterCache::open(&dir, Linkage::Complete).unwrap();
        cache.record_cell(fa, fb, 0.5);
        cache.flush().unwrap();
        // A different linkage addresses a disjoint key space: the old
        // cell is invisible, so the run recomputes from scratch.
        let flipped = ClusterCache::open(&dir, Linkage::Average).unwrap();
        assert_eq!(flipped.cell(fa, fb), CellLookup::Miss);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn label_memo_round_trips_and_last_write_wins() {
        let dir = temp_dir("memo");
        let mut cache = ClusterCache::open(&dir, Linkage::Complete).unwrap();
        assert!(cache.label_memo().is_empty());
        let first = vec![("a".to_owned(), "b".to_owned(), 0.25)];
        cache.record_label_memo(&first);
        cache.flush().unwrap();
        let grown = vec![
            ("a".to_owned(), "b".to_owned(), 0.25),
            ("a".to_owned(), "c".to_owned(), 0.75),
        ];
        let mut cache = ClusterCache::open(&dir, Linkage::Complete).unwrap();
        assert_eq!(cache.label_memo(), first);
        cache.record_label_memo(&grown);
        cache.flush().unwrap();
        let cache = ClusterCache::open(&dir, Linkage::Complete).unwrap();
        assert_eq!(cache.label_memo(), grown);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
