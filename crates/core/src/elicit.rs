//! Clustering the filtered usage changes and eliciting rule candidates
//! (paper §4.3 and §6.3).

use crate::ccache::{CellLookup, ClusterCache};
use crate::decision::{record_decision, DecisionReason};
use crate::pipeline::MinedUsageChange;
use cache::Fingerprint;
use cluster::{
    cluster_usage_changes_matrix, cluster_usage_changes_matrix_metered,
    cluster_usage_changes_matrix_traced, Dendrogram,
};
use obs::{MetricsRegistry, TraceSink};
use rules::SuggestedRule;
use usagegraph::UsageChange;

/// Cap on the silhouette search of the cached clustering path. The
/// search is O(k·n²) — unbounded k (what [`elicit_auto`] uses) turns an
/// n≥2000 corpus cubic, while real rule corpora cut into far fewer
/// groups than this.
pub const CLUSTER_MAX_K: usize = 64;

/// One cluster of similar usage changes, with an automatically
/// suggested rule.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Indices into the filtered change list.
    pub members: Vec<usize>,
    /// The representative change (first member).
    pub representative: UsageChange,
    /// The §6.3 auto-suggested rule for the representative.
    pub suggested: SuggestedRule,
}

/// The elicitation output: the dendrogram plus per-cluster reports at
/// the given cut threshold.
#[derive(Debug, Clone)]
pub struct Elicitation {
    /// Full merge tree over the filtered changes.
    pub dendrogram: Dendrogram,
    /// Clusters at the cut, largest first.
    pub clusters: Vec<ClusterReport>,
}

/// Clusters `changes` and cuts the dendrogram at `threshold`.
pub fn elicit(changes: &[MinedUsageChange], threshold: f64) -> Elicitation {
    let usage_changes: Vec<UsageChange> = changes.iter().map(|c| c.change.clone()).collect();
    let (dendrogram, _) = cluster_usage_changes_matrix(&usage_changes);
    let members = dendrogram.cut(threshold);
    build_elicitation(dendrogram, members, &usage_changes)
}

/// Like [`elicit`], but chooses the cut automatically by maximising the
/// mean silhouette coefficient (no threshold to tune).
///
/// The silhouette search reuses the distance matrix the dendrogram was
/// built from, so no pairwise distance is ever evaluated twice.
pub fn elicit_auto(changes: &[MinedUsageChange]) -> Elicitation {
    let usage_changes: Vec<UsageChange> = changes.iter().map(|c| c.change.clone()).collect();
    let (dendrogram, matrix) = cluster_usage_changes_matrix(&usage_changes);
    let (_, members, _) = dendrogram.best_cut(&matrix, usage_changes.len());
    build_elicitation(dendrogram, members, &usage_changes)
}

/// [`elicit_auto`] with stage observability: the clustering spans come
/// from [`cluster_usage_changes_matrix_metered`], the silhouette search
/// is timed as `elicit.cut`, and the resulting cluster count is
/// published as `elicit.clusters`.
pub fn elicit_auto_with_metrics(
    changes: &[MinedUsageChange],
    registry: &mut MetricsRegistry,
) -> Elicitation {
    let usage_changes: Vec<UsageChange> = changes.iter().map(|c| c.change.clone()).collect();
    let (dendrogram, matrix) = cluster_usage_changes_matrix_metered(&usage_changes, registry);
    let members = registry.time("elicit.cut", || {
        dendrogram.best_cut(&matrix, usage_changes.len()).1
    });
    let elicitation = build_elicitation(dendrogram, members, &usage_changes);
    registry.inc("elicit.clusters", elicitation.clusters.len() as u64);
    elicitation
}

/// [`elicit_auto_with_metrics`] with decision provenance: wraps the
/// whole stage in an `elicit` span, times the silhouette search as an
/// `elicit.cut` span, and emits one `cluster(<id>)` decision per
/// surviving change, where `<id>` is the change's cluster index in the
/// final (largest-first) report order. The decisions carry the
/// change's index into `changes` so tests can reconcile membership
/// lists against the trace exactly.
pub fn elicit_auto_traced(
    changes: &[MinedUsageChange],
    registry: &mut MetricsRegistry,
    trace: &mut TraceSink,
) -> Elicitation {
    let stage_span = trace.begin_with("elicit", |a| {
        a.u64("changes", changes.len() as u64);
    });
    let usage_changes: Vec<UsageChange> = changes.iter().map(|c| c.change.clone()).collect();
    let (dendrogram, matrix) = cluster_usage_changes_matrix_traced(&usage_changes, registry, trace);
    let cut_span = trace.begin("elicit.cut");
    let members = registry.time("elicit.cut", || {
        dendrogram.best_cut(&matrix, usage_changes.len()).1
    });
    trace.end(cut_span);
    let elicitation = build_elicitation(dendrogram, members, &usage_changes);
    registry.inc("elicit.clusters", elicitation.clusters.len() as u64);
    for (cluster_id, cluster) in elicitation.clusters.iter().enumerate() {
        for &member in &cluster.members {
            record_decision(
                trace,
                &changes[member].meta,
                &DecisionReason::Cluster(cluster_id),
                |a| {
                    a.u64("index", member as u64);
                    a.u64("cluster_size", cluster.members.len() as u64);
                },
            );
        }
    }
    trace.end(stage_span);
    elicitation
}

/// [`elicit_auto`] through the persistent distance-cell cache: prior
/// cells (keyed by content fingerprints, so corpus position does not
/// matter) are replayed bit-exactly and only pairs touching changes
/// *new* to the cache are evaluated. With `cache` absent (or empty)
/// this **is** the cold path — one code path for warm and cold is what
/// makes their output byte-identical, the same discipline
/// `mine_cached` follows.
///
/// Differences from [`elicit_auto`], both deliberate:
///
/// - distance arguments are orientation-normalized by content
///   fingerprint before evaluation, so a cell's bits never depend on
///   which corpus position enumerated the pair first;
/// - the silhouette search is capped at [`CLUSTER_MAX_K`] clusters.
///
/// Counters: `cluster.cache.hit` / `cluster.cache.miss` /
/// `cluster.cache.stale_version` (one per pair), plus the usual
/// `cluster.*` and `elicit.*` metrics. When `trace` is enabled the
/// stage emits the same spans and per-member cluster decisions as
/// [`elicit_auto_traced`]. Freshly computed cells and the label memo
/// are recorded into `cache`; the caller flushes.
pub fn elicit_auto_cached(
    changes: &[MinedUsageChange],
    mut cache: Option<&mut ClusterCache>,
    registry: &mut MetricsRegistry,
    trace: &mut TraceSink,
) -> Elicitation {
    let stage_span = trace.begin_with("elicit", |a| {
        a.u64("changes", changes.len() as u64);
        a.u64("cached", 1);
    });
    let usage_changes: Vec<UsageChange> = changes.iter().map(|c| c.change.clone()).collect();
    let n = usage_changes.len();
    registry.inc("cluster.items", n as u64);
    registry.inc("cluster.pairs", cluster::pair_count(n));
    let fps: Vec<Fingerprint> = usage_changes
        .iter()
        .map(ClusterCache::change_fingerprint)
        .collect();

    // Assemble the prior condensed vector: every persisted cell, NaN
    // where the cache has nothing usable. Stale-version entries are
    // recomputed like misses but counted separately.
    let (mut hits, mut misses, mut stale) = (0u64, 0u64, 0u64);
    let mut prior: Vec<f64> = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            let looked_up = match cache.as_deref() {
                Some(c) => c.cell(fps[i], fps[j]),
                None => CellLookup::Miss,
            };
            prior.push(match looked_up {
                CellLookup::Hit(d) => {
                    hits += 1;
                    d
                }
                CellLookup::StaleVersion => {
                    stale += 1;
                    f64::NAN
                }
                CellLookup::Miss => {
                    misses += 1;
                    f64::NAN
                }
            });
        }
    }
    registry.inc("cluster.cache.hit", hits);
    registry.inc("cluster.cache.miss", misses);
    registry.inc("cluster.cache.stale_version", stale);

    // Seed the label-similarity memo from the cache, so even the new
    // cells skip recomputing known label pairs.
    let label_cache = cluster::LabelCache::default();
    if let Some(c) = cache.as_deref() {
        for (a, b, sim) in c.label_memo() {
            label_cache.preload(&a, &b, sim);
        }
    }

    let matrix_span = trace.begin_with("cluster.matrix", |a| {
        a.u64("items", n as u64);
    });
    let warm = registry.time("cluster.matrix", || {
        cluster::matrix_from_prior(n, &prior, None, |i, j| {
            // Orientation-normalize by fingerprint: the Hungarian
            // assignment inside usage_dist sums floats in an
            // argument-order-dependent order, and a persisted cell must
            // replay identically no matter which side enumerated it.
            let (x, y) = if fps[i].0 <= fps[j].0 { (i, j) } else { (j, i) };
            cluster::usage_dist_cached(&usage_changes[x], &usage_changes[y], &label_cache)
        })
    });
    trace.end(matrix_span);
    let Ok(warm) = warm else {
        // Unreachable: `prior` was just materialized at exactly the
        // condensed length, so the size checks cannot fail. Degrade to
        // an empty elicitation rather than panicking.
        trace.end(stage_span);
        return Elicitation {
            dendrogram: Dendrogram::default(),
            clusters: Vec::new(),
        };
    };
    if let Some(c) = cache.as_mut() {
        for &(i, j, d) in &warm.computed {
            c.record_cell(fps[i], fps[j], d);
        }
        // The memo only grows when new cells were computed; re-recording
        // an unchanged memo would just bloat the append log.
        if !warm.computed.is_empty() {
            c.record_label_memo(&label_cache.memo_entries());
        }
    }

    let agg_span = trace.begin("cluster.agglomerate");
    let dendrogram = registry.time("cluster.agglomerate", || {
        cluster::agglomerate_matrix(&warm.matrix, cluster::Linkage::Complete)
    });
    trace.end(agg_span);
    let cut_span = trace.begin("elicit.cut");
    let members = registry.time("elicit.cut", || {
        dendrogram.best_cut(&warm.matrix, CLUSTER_MAX_K).1
    });
    trace.end(cut_span);
    let elicitation = build_elicitation(dendrogram, members, &usage_changes);
    registry.inc("elicit.clusters", elicitation.clusters.len() as u64);
    if trace.is_enabled() {
        for (cluster_id, cluster) in elicitation.clusters.iter().enumerate() {
            for &member in &cluster.members {
                record_decision(
                    trace,
                    &changes[member].meta,
                    &DecisionReason::Cluster(cluster_id),
                    |a| {
                        a.u64("index", member as u64);
                        a.u64("cluster_size", cluster.members.len() as u64);
                    },
                );
            }
        }
    }
    trace.end(stage_span);
    elicitation
}

fn build_elicitation(
    dendrogram: Dendrogram,
    members: Vec<Vec<usize>>,
    usage_changes: &[UsageChange],
) -> Elicitation {
    let mut clusters: Vec<ClusterReport> = members
        .into_iter()
        .map(|members| {
            let representative = usage_changes[members[0]].clone();
            let suggested = SuggestedRule::from_change(&representative);
            ClusterReport {
                members,
                representative,
                suggested,
            }
        })
        .collect();
    clusters.sort_by_key(|c| std::cmp::Reverse(c.members.len()));
    Elicitation {
        dendrogram,
        clusters,
    }
}

/// Renders the dendrogram with one-line change summaries as leaf
/// labels, the way Figure 8 presents it.
pub fn render_dendrogram(changes: &[MinedUsageChange], dendrogram: &Dendrogram) -> String {
    dendrogram.render_ascii(|leaf| {
        let c = &changes[leaf].change;
        let removed: Vec<String> = c.removed.iter().map(|p| format!("-{p}")).collect();
        let added: Vec<String> = c.added.iter().map(|p| format!("+{p}")).collect();
        format!(
            "[{}] {} | {}",
            changes[leaf].meta.project,
            removed.join(", "),
            added.join(", ")
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DiffCode;
    use corpus::fixtures;

    fn mined(pair: &corpus::fixtures::FixPair, class: &str) -> Vec<MinedUsageChange> {
        let mut dc = DiffCode::new();
        dc.usage_changes_from_pair(pair.old, pair.new, class)
            .unwrap()
            .into_iter()
            .map(|(old_dag, new_dag, change)| MinedUsageChange {
                meta: crate::pipeline::ChangeMeta {
                    project: format!("fixtures/{}", pair.name),
                    commit: pair.name.to_owned(),
                    author: String::new(),
                    message: pair.description.to_owned(),
                    path: "A.java".into(),
                    fingerprint: crate::pipeline::change_fingerprint(pair.old, pair.new),
                },
                class: class.to_owned(),
                old_dag,
                new_dag,
                change,
            })
            .collect()
    }

    #[test]
    fn auto_cut_finds_the_same_grouping() {
        let mut changes = Vec::new();
        changes.extend(mined(&fixtures::ECB_TO_CBC, "Cipher"));
        changes.extend(mined(&fixtures::ECB_TO_GCM, "Cipher"));
        changes.extend(mined(&fixtures::DEFAULT_AES_TO_CBC, "Cipher"));
        changes.extend(mined(&fixtures::SHA1_TO_SHA256, "MessageDigest"));
        let auto = elicit_auto(&changes);
        // The silhouette-optimal cut separates the ECB family from the
        // digest fix. Memberships are pinned exactly: the silhouette
        // search now runs over the shared distance matrix, and this
        // grouping is the one the closure-based search produced before
        // that change.
        let members: Vec<Vec<usize>> = auto.clusters.iter().map(|c| c.members.clone()).collect();
        assert_eq!(members, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn figure8_shape_ecb_fixes_cluster_together() {
        let mut changes = Vec::new();
        changes.extend(mined(&fixtures::ECB_TO_CBC, "Cipher"));
        changes.extend(mined(&fixtures::ECB_TO_GCM, "Cipher"));
        changes.extend(mined(&fixtures::DEFAULT_AES_TO_CBC, "Cipher"));
        changes.extend(mined(&fixtures::SHA1_TO_SHA256, "MessageDigest"));
        assert_eq!(changes.len(), 4);

        let elicitation = elicit(&changes, 0.45);
        // The three ECB fixes must share a cluster that excludes the
        // SHA-1 fix.
        let ecb_cluster = elicitation
            .clusters
            .iter()
            .find(|c| c.members.contains(&0))
            .unwrap();
        assert!(
            ecb_cluster.members.contains(&1),
            "{:?}",
            elicitation.clusters
        );
        assert!(
            ecb_cluster.members.contains(&2),
            "{:?}",
            elicitation.clusters
        );
        assert!(
            !ecb_cluster.members.contains(&3),
            "{:?}",
            elicitation.clusters
        );

        // The suggested rule for the representative mentions the ECB
        // feature on the must-have side.
        let text = ecb_cluster.suggested.to_string();
        assert!(text.contains("Cipher :"), "{text}");

        let rendering = render_dendrogram(&changes, &elicitation.dendrogram);
        assert!(rendering.contains("AES/ECB"), "{rendering}");
    }
}
