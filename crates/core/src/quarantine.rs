//! Fault-tolerant mining support: the shared pipeline error taxonomy,
//! per-stage resource budgets, skip accounting, and quarantine reports.
//!
//! Mining runs over untrusted input at corpus scale, so the pipeline
//! is **total**: no input may abort, hang, or poison a run. Every
//! stage (lexing/parsing, abstract interpretation, DAG construction)
//! returns a typed error instead of panicking, a last-resort
//! `catch_unwind` around each code change converts residual panics
//! into [`ErrorKind::Panic`] skips, and every skip is accounted —
//! `code_changes == mined + skipped.total()` is an invariant of
//! [`crate::MiningStats`] — and quarantined with provenance for later
//! triage.

use crate::pipeline::ChangeMeta;
use analysis::{AnalysisError, AnalysisLimits};
use javalang::{Limits, ParseError};
use std::fmt;
use usagegraph::{DagError, DagLimits};

/// Coarse classification of why a code change was skipped. One counter
/// per variant lives in [`crate::MiningStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorKind {
    /// The source could not be lexed (malformed literals, budget
    /// overruns caught before or during tokenization).
    Lex,
    /// The token stream could not be parsed into any compilation unit
    /// (including nesting-budget overruns).
    Parse,
    /// The abstract interpreter exceeded its step budget or refused a
    /// too-deep AST.
    AnalysisBudget,
    /// Usage-DAG construction exceeded its path or object budget.
    DagBudget,
    /// A panic escaped a pipeline stage and was caught at the
    /// per-change isolation boundary.
    Panic,
}

impl ErrorKind {
    /// All kinds, in severity-agnostic display order.
    pub const ALL: [ErrorKind; 5] = [
        ErrorKind::Lex,
        ErrorKind::Parse,
        ErrorKind::AnalysisBudget,
        ErrorKind::DagBudget,
        ErrorKind::Panic,
    ];

    /// Stable machine-readable name, used in reports and CI greps.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorKind::Lex => "lex",
            ErrorKind::Parse => "parse",
            ErrorKind::AnalysisBudget => "analysis-budget",
            ErrorKind::DagBudget => "dag-budget",
            ErrorKind::Panic => "panic",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One typed failure from any pipeline stage.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PipelineError {
    /// Lexer or parser failure (see [`ParseError::kind`]).
    Frontend(ParseError),
    /// Abstract-interpreter budget failure.
    Analysis(AnalysisError),
    /// DAG-construction budget failure.
    Dag(DagError),
    /// A caught panic; the payload message, when it was a string.
    Panic(String),
}

impl PipelineError {
    /// The coarse [`ErrorKind`] this error counts under.
    pub fn kind(&self) -> ErrorKind {
        match self {
            PipelineError::Frontend(e) if e.kind().is_lexical() => ErrorKind::Lex,
            PipelineError::Frontend(_) => ErrorKind::Parse,
            PipelineError::Analysis(_) => ErrorKind::AnalysisBudget,
            PipelineError::Dag(_) => ErrorKind::DagBudget,
            PipelineError::Panic(_) => ErrorKind::Panic,
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Frontend(e) => write!(f, "{e}"),
            PipelineError::Analysis(e) => write!(f, "{e}"),
            PipelineError::Dag(e) => write!(f, "{e}"),
            PipelineError::Panic(msg) => write!(f, "panic: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Frontend(e)
    }
}

impl From<AnalysisError> for PipelineError {
    fn from(e: AnalysisError) -> Self {
        PipelineError::Analysis(e)
    }
}

impl From<DagError> for PipelineError {
    fn from(e: DagError) -> Self {
        PipelineError::Dag(e)
    }
}

/// Per-kind skip counters. `total()` plus the mined count always
/// equals the processed count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkipCounters {
    /// Skips classified [`ErrorKind::Lex`].
    pub lex: usize,
    /// Skips classified [`ErrorKind::Parse`].
    pub parse: usize,
    /// Skips classified [`ErrorKind::AnalysisBudget`].
    pub analysis_budget: usize,
    /// Skips classified [`ErrorKind::DagBudget`].
    pub dag_budget: usize,
    /// Skips classified [`ErrorKind::Panic`].
    pub panic: usize,
}

impl SkipCounters {
    /// The counter for `kind`.
    pub fn get(&self, kind: ErrorKind) -> usize {
        match kind {
            ErrorKind::Lex => self.lex,
            ErrorKind::Parse => self.parse,
            ErrorKind::AnalysisBudget => self.analysis_budget,
            ErrorKind::DagBudget => self.dag_budget,
            ErrorKind::Panic => self.panic,
        }
    }

    /// Increments the counter for `kind`.
    pub fn bump(&mut self, kind: ErrorKind) {
        match kind {
            ErrorKind::Lex => self.lex += 1,
            ErrorKind::Parse => self.parse += 1,
            ErrorKind::AnalysisBudget => self.analysis_budget += 1,
            ErrorKind::DagBudget => self.dag_budget += 1,
            ErrorKind::Panic => self.panic += 1,
        }
    }

    /// Sum over all kinds.
    pub fn total(&self) -> usize {
        ErrorKind::ALL.iter().map(|k| self.get(*k)).sum()
    }

    /// Adds `other`'s counters into `self` (shard merging).
    pub fn absorb(&mut self, other: &SkipCounters) {
        self.lex += other.lex;
        self.parse += other.parse;
        self.analysis_budget += other.analysis_budget;
        self.dag_budget += other.dag_budget;
        self.panic += other.panic;
    }

    /// Publishes the per-kind breakdown as `mine.skipped.<kind>`
    /// counters (plus the `mine.skipped` total), so metrics snapshots
    /// carry the same quarantine accounting as [`QuarantineReport`]s.
    pub fn record(&self, registry: &mut obs::MetricsRegistry) {
        registry.inc("mine.skipped", self.total() as u64);
        for kind in ErrorKind::ALL {
            registry.inc(
                &format!("mine.skipped.{}", kind.name()),
                self.get(kind) as u64,
            );
        }
    }
}

/// One quarantined code change: provenance, classification, and a
/// minimized excerpt of the offending source for triage without
/// re-fetching the corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineReport {
    /// Where the skipped change came from.
    pub meta: ChangeMeta,
    /// Coarse classification.
    pub kind: ErrorKind,
    /// The full error message.
    pub error: String,
    /// First non-blank line of the failing source, control characters
    /// replaced and truncated to 80 characters.
    pub excerpt: String,
}

/// Produces the triage excerpt stored in a [`QuarantineReport`]: the
/// first non-blank line with control characters replaced by `·`,
/// truncated to 80 characters (with an ellipsis when cut). Truncation
/// slices at a char boundary — a multibyte scalar straddling the cap
/// is dropped whole, never split into invalid UTF-8.
pub fn excerpt(source: &str) -> String {
    const MAX_CHARS: usize = 80;
    let line = source
        .lines()
        .find(|l| !l.trim().is_empty())
        .unwrap_or("")
        .trim_end();
    let (head, cut) = truncate_at_char_boundary(line, MAX_CHARS);
    let mut out: String = head
        .chars()
        .map(|c| if c.is_control() { '·' } else { c })
        .collect();
    if cut {
        out.push('…');
    }
    out
}

/// Byte-slices `s` to its first `max_chars` characters. The cut index
/// comes from `char_indices`, so it is a char boundary by construction;
/// the `debug_assert` pins that invariant against future edits swapping
/// in a byte count. Returns the head and whether anything was cut.
fn truncate_at_char_boundary(s: &str, max_chars: usize) -> (&str, bool) {
    match s.char_indices().nth(max_chars) {
        Some((cut, _)) => {
            debug_assert!(s.is_char_boundary(cut));
            (&s[..cut], true)
        }
        None => (s, false),
    }
}

/// The per-stage resource budgets one [`crate::DiffCode`] applies while
/// mining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineLimits {
    /// Lexer/parser budgets.
    pub parse: Limits,
    /// Abstract-interpreter budgets.
    pub analysis: AnalysisLimits,
    /// DAG-construction budgets (`max_depth` here is overridden by the
    /// pipeline's configured DAG depth).
    pub dag: DagLimits,
}

impl PipelineLimits {
    /// The default stack of budgets, suitable for crawl-scale corpora.
    pub const DEFAULT: PipelineLimits = PipelineLimits {
        parse: Limits::DEFAULT,
        analysis: AnalysisLimits::DEFAULT,
        dag: DagLimits::DEFAULT,
    };
}

impl Default for PipelineLimits {
    fn default() -> Self {
        PipelineLimits::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        let lex = ParseError::with_kind(
            javalang::ParseErrorKind::UnterminatedString,
            "unterminated string literal",
            javalang::error::Span::new(0, 1, 1),
        );
        assert_eq!(PipelineError::Frontend(lex).kind(), ErrorKind::Lex);
        let parse = ParseError::with_kind(
            javalang::ParseErrorKind::NestingTooDeep,
            "too deep",
            javalang::error::Span::new(0, 1, 1),
        );
        assert_eq!(PipelineError::Frontend(parse).kind(), ErrorKind::Parse);
        assert_eq!(
            PipelineError::Analysis(AnalysisError::StepBudgetExceeded { max_steps: 1 }).kind(),
            ErrorKind::AnalysisBudget
        );
        assert_eq!(
            PipelineError::Dag(DagError::PathBudgetExceeded { max_paths: 1 }).kind(),
            ErrorKind::DagBudget
        );
        assert_eq!(PipelineError::Panic("boom".into()).kind(), ErrorKind::Panic);
    }

    #[test]
    fn skip_counters_account_exactly() {
        let mut c = SkipCounters::default();
        c.bump(ErrorKind::Lex);
        c.bump(ErrorKind::Lex);
        c.bump(ErrorKind::Panic);
        assert_eq!(c.get(ErrorKind::Lex), 2);
        assert_eq!(c.total(), 3);
        let mut d = SkipCounters::default();
        d.bump(ErrorKind::DagBudget);
        d.absorb(&c);
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn excerpt_sanitizes_and_truncates() {
        assert_eq!(excerpt("\n\n  class A {\t}  "), "  class A {·}");
        let long = "x".repeat(200);
        let e = excerpt(&long);
        assert_eq!(e.chars().count(), 81, "80 chars + ellipsis");
        assert!(e.ends_with('…'));
        assert_eq!(excerpt("   \n\t\n"), "");
    }

    #[test]
    fn excerpt_cuts_multibyte_lines_on_char_boundaries() {
        // 100 four-byte scalars: a byte-indexed cut at 80 would land
        // mid-scalar. The excerpt must keep exactly 80 whole chars.
        let emoji = "\u{1F510}".repeat(100);
        let e = excerpt(&emoji);
        assert_eq!(e.chars().count(), 81);
        assert!(e.ends_with('…'));
        assert!(e.starts_with('\u{1F510}'));
        // A scalar exactly straddling the cap is dropped whole.
        let mixed = format!("{}é", "x".repeat(79));
        assert_eq!(excerpt(&mixed).chars().count(), 80, "fits: no cut");
        let over = format!("{}éé", "x".repeat(79));
        let e = excerpt(&over);
        assert_eq!(e.chars().count(), 81);
        assert!(e.ends_with("é…"));
    }
}
