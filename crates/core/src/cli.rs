//! The `diffcode` command-line tool: analyze, diff, and check real
//! `.java` files.
//!
//! All rendering lives here (unit-testable, no I/O); the binary in
//! `src/bin/diffcode.rs` only reads files and forwards sources.

use crate::pipeline::DiffCode;
use analysis::TARGET_CLASSES;
use javalang::ParseError;
use rules::{CheckedProject, CryptoChecker, ProjectContext};
use std::fmt::Write as _;

/// Renders the abstract usages of one source file: every abstract
/// object of a target class with its usage DAG.
///
/// # Errors
///
/// Fails if the source cannot be lexed.
pub fn render_analysis(source: &str, classes: &[&str]) -> Result<String, ParseError> {
    let mut dc = DiffCode::new();
    let usages = dc.analyze_source(source)?;
    let classes = effective_classes(classes);
    let mut out = String::new();
    let mut found = 0usize;
    for class in &classes {
        for site in usages.objects_of_type(class) {
            found += 1;
            let dag = usagegraph::build_dag(&usages, site, usagegraph::DEFAULT_MAX_DEPTH);
            let _ = writeln!(out, "abstract object {site} : {class}");
            for event in usages.events_of(site) {
                let args: Vec<String> =
                    event.args.iter().map(|a| a.label()).collect();
                let _ = writeln!(
                    out,
                    "  {}({})",
                    event.method.label_for(class),
                    args.join(", ")
                );
            }
            let _ = writeln!(out, "  usage DAG:");
            for path in &dag.paths {
                let _ = writeln!(out, "    {path}");
            }
        }
    }
    if found == 0 {
        let _ = writeln!(out, "no usages of {} found", classes.join(", "));
    }
    Ok(out)
}

/// Renders the usage changes between two source versions.
///
/// # Errors
///
/// Fails if either source cannot be lexed.
pub fn render_diff(
    old_source: &str,
    new_source: &str,
    classes: &[&str],
) -> Result<String, ParseError> {
    let mut dc = DiffCode::new();
    let classes = effective_classes(classes);
    let mut out = String::new();
    let mut any = false;
    for class in &classes {
        for (_, _, change) in dc.usage_changes_from_pair(old_source, new_source, class)? {
            if change.is_same() {
                continue;
            }
            any = true;
            let kind = if change.is_pure_addition() {
                " (new usage)"
            } else if change.is_pure_removal() {
                " (usage removed)"
            } else {
                ""
            };
            let _ = writeln!(out, "usage change for {class}{kind}:");
            for line in change.to_string().lines() {
                let _ = writeln!(out, "  {line}");
            }
            if !change.is_pure_addition() && !change.is_pure_removal() {
                let suggested = rules::SuggestedRule::from_change(&change);
                let _ = writeln!(out, "  suggested rule:");
                for line in suggested.to_string().lines() {
                    let _ = writeln!(out, "    {line}");
                }
            }
        }
    }
    if !any {
        let _ = writeln!(
            out,
            "no semantic usage changes (the change is a refactoring under the abstraction)"
        );
    }
    Ok(out)
}

/// Checks a set of named sources as one project against the 13 rules.
/// Returns the report and the number of violated rules.
pub fn render_check(
    files: &[(String, String)],
    context: ProjectContext,
) -> (String, usize) {
    let mut dc = DiffCode::new();
    let mut usages = Vec::new();
    let mut out = String::new();
    for (name, source) in files {
        match dc.analyze_source(source) {
            Ok(u) => usages.push((*u).clone()),
            Err(err) => {
                let _ = writeln!(out, "warning: {name}: {err}");
            }
        }
    }
    let project = CheckedProject {
        name: "cli".to_owned(),
        usages,
        context,
    };
    let checker = CryptoChecker::standard();
    let violations = checker.violations(&project);
    if violations.is_empty() {
        let _ = writeln!(out, "no rule violations in {} file(s)", files.len());
        return (out, 0);
    }
    let _ = writeln!(
        out,
        "{} rule violation(s) in {} file(s):",
        violations.len(),
        files.len()
    );
    for id in &violations {
        let rule = checker
            .rules()
            .iter()
            .find(|r| r.id == *id)
            .expect("violations come from the checker's rules");
        let _ = writeln!(out, "  {:4} {}", rule.id, rule.description);
        // Evidence: the first file whose usages violate the rule.
        for usage in &project.usages {
            let evidence = rule.evidence(usage, &project.context);
            if evidence.is_empty() {
                continue;
            }
            for e in evidence {
                let _ = writeln!(
                    out,
                    "       evidence: {} object {} — {}",
                    e.class,
                    e.site,
                    e.witnesses.join("; ")
                );
            }
            break;
        }
    }
    let count = violations.len();
    (out, count)
}

/// The Figure 9 rule table.
pub fn render_rules() -> String {
    crate::experiments::figure9_table()
}

/// Usage string for the binary.
pub const USAGE: &str = "\
diffcode — infer and check crypto API rules from Java code changes

USAGE:
    diffcode analyze <file.java> [--class <Name>]
    diffcode diff <old.java> <new.java> [--class <Name>]
    diffcode check <file-or-dir>... [--android <minSdk>]
    diffcode rules

COMMANDS:
    analyze   print the abstract crypto-API usages (objects, events, DAGs)
    diff      print the semantic usage changes between two versions
    check     run CryptoChecker (the 13 elicited rules) on files/directories
    rules     print the rule table (paper Figure 9)
";

fn effective_classes<'a>(classes: &[&'a str]) -> Vec<&'a str> {
    if classes.is_empty() {
        TARGET_CLASSES.to_vec()
    } else {
        classes.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::fixtures::{FIGURE2_NEW, FIGURE2_OLD};

    #[test]
    fn analyze_renders_dags() {
        let out = render_analysis(FIGURE2_NEW, &[]).unwrap();
        assert!(out.contains("abstract object"), "{out}");
        assert!(out.contains("Cipher getInstance arg1:AES/CBC/PKCS5Padding"), "{out}");
        assert!(out.contains("IvParameterSpec"), "{out}");
    }

    #[test]
    fn analyze_restricts_to_class() {
        let out = render_analysis(FIGURE2_NEW, &["MessageDigest"]).unwrap();
        assert!(out.contains("no usages of MessageDigest"), "{out}");
    }

    #[test]
    fn diff_renders_changes_and_suggestion() {
        let out = render_diff(FIGURE2_OLD, FIGURE2_NEW, &["Cipher"]).unwrap();
        assert!(out.contains("- Cipher getInstance arg1:AES"), "{out}");
        assert!(out.contains("suggested rule:"), "{out}");
    }

    #[test]
    fn diff_of_refactoring_reports_none() {
        let out = render_diff(FIGURE2_NEW, FIGURE2_NEW, &[]).unwrap();
        assert!(out.contains("no semantic usage changes"), "{out}");
    }

    #[test]
    fn check_reports_violations() {
        let files = vec![(
            "AESCipher.java".to_owned(),
            FIGURE2_OLD.to_owned(),
        )];
        let (out, count) = render_check(&files, ProjectContext::plain());
        assert!(count >= 1, "{out}");
        assert!(out.contains("R7"), "default AES is ECB: {out}");
    }

    #[test]
    fn check_clean_file() {
        let files = vec![(
            "Safe.java".to_owned(),
            r#"class Safe { void m(byte[] iv, javax.crypto.SecretKey k) throws Exception {
                Cipher c = Cipher.getInstance("AES/GCM/NoPadding", "BC");
                c.init(Cipher.ENCRYPT_MODE, k, new IvParameterSpec(iv));
            } }"#
                .to_owned(),
        )];
        let (out, count) = render_check(&files, ProjectContext::plain());
        assert_eq!(count, 0, "{out}");
    }

    #[test]
    fn rules_table_renders() {
        let out = render_rules();
        assert!(out.contains("R13"));
    }
}
