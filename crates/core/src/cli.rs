//! The `diffcode` command-line tool: analyze, diff, and check real
//! `.java` files.
//!
//! All rendering lives here (unit-testable, no I/O); the binary in
//! `src/bin/diffcode.rs` only reads files and forwards sources.

use crate::filter::{apply_filters_traced, apply_filters_with_metrics, SeenDups};
use crate::mcache::MiningCache;
use crate::pipeline::{mine_parallel_traced, mine_parallel_with_metrics, DiffCode, MiningResult};
use crate::quarantine::{ErrorKind, PipelineLimits};
use crate::report::Table;
use analysis::TARGET_CLASSES;
use javalang::ParseError;
use obs::{fmt_ns, MetricsRegistry, TraceKind, TraceSink};
use rules::{CheckedProject, CryptoChecker, ProjectContext};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Renders the abstract usages of one source file: every abstract
/// object of a target class with its usage DAG.
///
/// # Errors
///
/// Fails if the source cannot be lexed.
pub fn render_analysis(source: &str, classes: &[&str]) -> Result<String, ParseError> {
    let mut dc = DiffCode::new();
    let usages = dc.analyze_source(source)?;
    let classes = effective_classes(classes);
    let mut out = String::new();
    let mut found = 0usize;
    for class in &classes {
        for site in usages.objects_of_type(class) {
            found += 1;
            let dag = usagegraph::build_dag(&usages, site, usagegraph::DEFAULT_MAX_DEPTH);
            let _ = writeln!(out, "abstract object {site} : {class}");
            for event in usages.events_of(site) {
                let args: Vec<String> = event.args.iter().map(|a| a.label()).collect();
                let _ = writeln!(
                    out,
                    "  {}({})",
                    event.method.label_for(class),
                    args.join(", ")
                );
            }
            let _ = writeln!(out, "  usage DAG:");
            for path in &dag.paths {
                let _ = writeln!(out, "    {path}");
            }
        }
    }
    if found == 0 {
        let _ = writeln!(out, "no usages of {} found", classes.join(", "));
    }
    Ok(out)
}

/// Renders the usage changes between two source versions.
///
/// # Errors
///
/// Fails if either source cannot be lexed.
pub fn render_diff(
    old_source: &str,
    new_source: &str,
    classes: &[&str],
) -> Result<String, ParseError> {
    let mut dc = DiffCode::new();
    let classes = effective_classes(classes);
    let mut out = String::new();
    let mut any = false;
    for class in &classes {
        for (_, _, change) in dc.usage_changes_from_pair(old_source, new_source, class)? {
            if change.is_same() {
                continue;
            }
            any = true;
            let kind = if change.is_pure_addition() {
                " (new usage)"
            } else if change.is_pure_removal() {
                " (usage removed)"
            } else {
                ""
            };
            let _ = writeln!(out, "usage change for {class}{kind}:");
            for line in change.to_string().lines() {
                let _ = writeln!(out, "  {line}");
            }
            if !change.is_pure_addition() && !change.is_pure_removal() {
                let suggested = rules::SuggestedRule::from_change(&change);
                let _ = writeln!(out, "  suggested rule:");
                for line in suggested.to_string().lines() {
                    let _ = writeln!(out, "    {line}");
                }
            }
        }
    }
    if !any {
        let _ = writeln!(
            out,
            "no semantic usage changes (the change is a refactoring under the abstraction)"
        );
    }
    Ok(out)
}

/// Checks a set of named sources as one project against the 13 rules.
/// Returns the report and the number of violated rules.
pub fn render_check(files: &[(String, String)], context: ProjectContext) -> (String, usize) {
    let mut dc = DiffCode::new();
    let mut usages = Vec::new();
    let mut out = String::new();
    for (name, source) in files {
        match dc.analyze_source(source) {
            Ok(u) => usages.push((*u).clone()),
            Err(err) => {
                let _ = writeln!(out, "warning: {name}: {err}");
            }
        }
    }
    let project = CheckedProject {
        name: "cli".to_owned(),
        usages,
        context,
    };
    let checker = CryptoChecker::standard();
    let violations = checker.violations(&project);
    if violations.is_empty() {
        let _ = writeln!(out, "no rule violations in {} file(s)", files.len());
        return (out, 0);
    }
    let _ = writeln!(
        out,
        "{} rule violation(s) in {} file(s):",
        violations.len(),
        files.len()
    );
    for id in &violations {
        let rule = checker
            .rules()
            .iter()
            .find(|r| r.id == *id)
            .expect("violations come from the checker's rules");
        let _ = writeln!(out, "  {:4} {}", rule.id, rule.description);
        // Evidence: the first file whose usages violate the rule.
        for usage in &project.usages {
            let evidence = rule.evidence(usage, &project.context);
            if evidence.is_empty() {
                continue;
            }
            for e in evidence {
                let _ = writeln!(
                    out,
                    "       evidence: {} object {} — {}",
                    e.class,
                    e.site,
                    e.witnesses.join("; ")
                );
            }
            break;
        }
    }
    let count = violations.len();
    (out, count)
}

/// The Figure 9 rule table.
pub fn render_rules() -> String {
    crate::experiments::figure9_table()
}

/// Renders a mining run's accounting: mined/skipped totals, the
/// per-kind skip breakdown, and the quarantine (capped at
/// `max_reports` entries, with a count of the remainder).
pub fn render_mining_summary(result: &MiningResult, max_reports: usize) -> String {
    let stats = &result.stats;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "processed {} code change(s): {} mined, {} skipped",
        stats.code_changes,
        stats.mined,
        stats.skipped.total()
    );
    if stats.skipped.total() > 0 {
        let mut table = Table::new(["Skip kind", "Count", "Share"]);
        for kind in ErrorKind::ALL {
            let count = stats.skipped.get(kind);
            if count == 0 {
                continue;
            }
            table.row([
                kind.name().to_owned(),
                count.to_string(),
                format!("{:.1}%", 100.0 * count as f64 / stats.code_changes as f64),
            ]);
        }
        out.push('\n');
        out.push_str(&table.render());
    }
    if !result.quarantine.is_empty() {
        let _ = writeln!(out, "\nquarantine:");
        for report in result.quarantine.iter().take(max_reports) {
            let _ = writeln!(
                out,
                "  [{}] {} @ {} ({}): {}",
                report.kind,
                report.meta.project,
                report.meta.commit,
                report.meta.path,
                report.error
            );
            if !report.excerpt.is_empty() {
                let _ = writeln!(out, "      | {}", report.excerpt);
            }
        }
        if result.quarantine.len() > max_reports {
            let _ = writeln!(
                out,
                "  … and {} more",
                result.quarantine.len() - max_reports
            );
        }
    }
    out
}

/// Runs the seeded chaos experiment: generates a corpus, injects
/// faults into ~`rate` of its code changes (panic injection included),
/// mines it, and renders the accounting. Backs the `diffcode chaos`
/// command and the quarantine-rate numbers in EXPERIMENTS.md §8.
pub fn render_chaos(seed: u64, rate: f64, n_projects: usize) -> String {
    const MARKER: &str = "@@DIFFCODE_CHAOS_PANIC@@";
    std::env::set_var("DIFFCODE_CHAOS_PANIC_MARKER", MARKER);
    let mut corpus = corpus::generate(&corpus::GeneratorConfig::small(n_projects, seed));
    let log = corpus::Mutator::new(seed, rate)
        .with_panic_marker(MARKER)
        .inject(&mut corpus);
    // The injected panics are expected; keep them off the console.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = DiffCode::new().mine(&corpus, &[]);
    std::panic::set_hook(prev_hook);
    std::env::remove_var("DIFFCODE_CHAOS_PANIC_MARKER");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos run: seed {seed}, fault rate {rate:.2}, {n_projects} project(s), \
         {} fault(s) injected into {} code change(s)",
        log.faults.len(),
        log.code_changes
    );
    assert!(
        result.stats.is_balanced(),
        "accounting invariant violated: {:?}",
        result.stats
    );
    out.push_str(&render_mining_summary(&result, 10));
    let rate_pct = if result.stats.code_changes == 0 {
        0.0
    } else {
        100.0 * result.stats.skipped.total() as f64 / result.stats.code_changes as f64
    };
    let _ = writeln!(
        out,
        "\nquarantine rate: {rate_pct:.1}% ({} of {}); accounting exact: \
         processed = mined + skipped",
        result.stats.skipped.total(),
        result.stats.code_changes
    );
    out
}

/// Where a `diffcode mine` / `diffcode explain` run gets its corpus.
///
/// Both sources feed the **same** cached mining path: cache keys are
/// provenance-free content fingerprints, so a seeded corpus and a real
/// repository share one cache discipline, and a warm re-mine of either
/// replays outcomes instead of re-analyzing.
#[derive(Debug, Clone)]
pub enum MineSource {
    /// A synthetic corpus from the deterministic generator.
    Seeded {
        /// Generator seed.
        seed: u64,
        /// Number of projects to generate.
        n_projects: usize,
    },
    /// A real cloned repository, walked with [`gitsrc`].
    Repo {
        /// Path to the clone (its `.git` must be reachable by git).
        repo: PathBuf,
        /// Optional `A..B` rev-range restriction.
        rev_range: Option<String>,
        /// Keep only the oldest N commits.
        max_commits: Option<usize>,
    },
}

impl MineSource {
    /// The deterministic one-line run header. Repo mode names the
    /// repository by basename only, so the header (and therefore the
    /// whole report) is byte-identical no matter where the clone
    /// lives — the property the git-fixture CI gate byte-compares.
    fn header(&self) -> String {
        match self {
            MineSource::Seeded { seed, n_projects } => {
                format!("mine run: seed {seed}, {n_projects} project(s)\n")
            }
            MineSource::Repo {
                repo,
                rev_range,
                max_commits,
            } => {
                let name = repo
                    .canonicalize()
                    .unwrap_or_else(|_| repo.clone())
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "repo".to_owned());
                let mut line = format!("mine run: repo {name}");
                if let Some(range) = rev_range {
                    let _ = write!(line, ", range {range}");
                }
                if let Some(max) = max_commits {
                    let _ = write!(line, ", first {max} commit(s)");
                }
                line.push('\n');
                line
            }
        }
    }

    /// Builds the corpus: generate (seeded) or ingest (repo). Repo
    /// mode also returns the deterministic ingestion summary lines
    /// that follow the header in the report.
    fn corpus(&self, registry: &mut MetricsRegistry) -> Result<(corpus::Corpus, String), String> {
        match self {
            MineSource::Seeded { seed, n_projects } => {
                let corpus = registry.time("corpus.generate", || {
                    corpus::generate(&corpus::GeneratorConfig::small(*n_projects, *seed))
                });
                Ok((corpus, String::new()))
            }
            MineSource::Repo {
                repo,
                rev_range,
                max_commits,
            } => {
                let opts = gitsrc::IngestOptions {
                    rev_range: rev_range.clone(),
                    max_commits: *max_commits,
                    limits: gitsrc::IngestLimits::DEFAULT,
                };
                let report = gitsrc::ingest_repo(repo, &opts, registry)
                    .map_err(|e| format!("ingesting {}: {e}", repo.display()))?;
                let summary = render_ingest_summary(&report);
                Ok((report.corpus, summary))
            }
        }
    }
}

/// Renders the deterministic ingestion accounting lines of a repo-mode
/// mine report: walk totals, pair/rename/addition/deletion counts, and
/// the quarantine breakdown (omitted when clean). Timings and batch
/// latencies stay in the metrics registry only.
fn render_ingest_summary(report: &gitsrc::IngestReport) -> String {
    let stats = &report.stats;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ingested: {} commit(s) of {} walked, {} file(s) seen",
        stats.commits_ingested, stats.commits_walked, stats.files_seen
    );
    let _ = writeln!(
        out,
        "pairs: {} pre/post pair(s) ({} rename(s) followed), \
         {} addition(s), {} deletion(s), {} non-java file(s)",
        stats.pairs, stats.renames_followed, stats.additions, stats.deletions, stats.non_java
    );
    if !report.skips.is_empty() {
        let kinds: Vec<String> = report
            .skipped_by_kind()
            .into_iter()
            .filter(|(_, n)| *n > 0)
            .map(|(kind, n)| format!("{}: {n}", kind.name()))
            .collect();
        let _ = writeln!(
            out,
            "quarantined: {} file(s) ({})",
            report.skips.len(),
            kinds.join(", ")
        );
    }
    out
}

/// Runs a (parallel) mining run over a seeded corpus, optionally
/// through the persistent result cache under `cache_dir`, and renders
/// the accounting. Backs the `diffcode mine` command.
///
/// The rendered report is **fully deterministic** — no timings, no
/// thread counts, no cache hit/miss numbers — so CI can byte-compare a
/// cold run's stdout against a warm one's. Everything
/// run-dependent (latencies, `cache.hit` / `cache.miss` /
/// `cache.stale_version`, flush counts) lives only in the returned
/// registry, which the binary serializes via `--metrics-json`.
///
/// # Errors
///
/// I/O failures opening or flushing the cache.
pub fn run_mine(
    seed: u64,
    n_projects: usize,
    n_threads: usize,
    cache_dir: Option<&Path>,
) -> Result<(String, MetricsRegistry), String> {
    let source = MineSource::Seeded { seed, n_projects };
    let (out, registry, _, _) = run_mine_inner(&source, n_threads, cache_dir, None, None, None)?;
    Ok((out, registry))
}

/// [`run_mine`] with a cooperative cancellation flag (the binary wires
/// in [`crate::shutdown::flag`]). When the flag trips mid-run, mining
/// stops between changes, the cache log is still flushed, and the
/// report covers the partial run with an explicit `interrupted` line —
/// Ctrl-C costs the remainder of the run, never the warm cache.
/// Returns the report, the registry, and whether the run was
/// interrupted (the binary exits 130 in that case).
///
/// # Errors
///
/// I/O failures opening or flushing the cache.
pub fn run_mine_interruptible(
    source: &MineSource,
    n_threads: usize,
    cache_dir: Option<&Path>,
    cluster_cache_dir: Option<&Path>,
    cancel: &'static std::sync::atomic::AtomicBool,
) -> Result<(String, MetricsRegistry, bool), String> {
    let (out, registry, _, interrupted) = run_mine_inner(
        source,
        n_threads,
        cache_dir,
        cluster_cache_dir,
        None,
        Some(cancel),
    )?;
    Ok((out, registry, interrupted))
}

/// [`run_mine`] with structured tracing at the given sampling interval
/// (`1` = record every span): the returned [`TraceSink`] covers the
/// full funnel — mining, filtering, clustering — with one decision
/// event per change, and serializes to Chrome trace-event JSON via
/// [`obs::to_chrome_json`]. The rendered report stays byte-identical
/// to an untraced run's, so tracing never perturbs the warm-vs-cold
/// stdout gate.
///
/// # Errors
///
/// I/O failures opening or flushing the cache.
pub fn run_mine_traced(
    source: &MineSource,
    n_threads: usize,
    cache_dir: Option<&Path>,
    cluster_cache_dir: Option<&Path>,
    trace_sample: u64,
) -> Result<(String, MetricsRegistry, TraceSink), String> {
    let (out, registry, trace, _) = run_mine_inner(
        source,
        n_threads,
        cache_dir,
        cluster_cache_dir,
        Some(trace_sample),
        None,
    )?;
    Ok((out, registry, trace))
}

fn run_mine_inner(
    source: &MineSource,
    n_threads: usize,
    cache_dir: Option<&Path>,
    cluster_cache_dir: Option<&Path>,
    trace_sample: Option<u64>,
    cancel: Option<&'static std::sync::atomic::AtomicBool>,
) -> Result<(String, MetricsRegistry, TraceSink, bool), String> {
    let mut registry = MetricsRegistry::new();
    let mut trace = match trace_sample {
        Some(sample) => TraceSink::enabled(sample),
        None => TraceSink::disabled(),
    };
    let (corpus, ingest_summary) = source.corpus(&mut registry)?;
    corpus::corpus_stats(&corpus).record(&mut registry);
    let mut cache = match cache_dir {
        Some(dir) => Some(
            // DiffCode::new() mines at default limits and depth; the
            // cache must be opened with the same configuration or every
            // lookup would miss.
            MiningCache::open(
                dir,
                &[],
                &PipelineLimits::DEFAULT,
                usagegraph::DEFAULT_MAX_DEPTH,
            )
            .map_err(|e| format!("opening cache at {}: {e}", dir.display()))?,
        ),
        None => None,
    };
    let result = crate::pipeline::mine_parallel_interruptible(
        &corpus,
        &[],
        n_threads,
        &mut registry,
        cache.as_mut(),
        &mut trace,
        cancel,
    );
    let interrupted = cancel.is_some_and(|flag| flag.load(std::sync::atomic::Ordering::SeqCst));
    if let Some(cache) = cache.as_mut() {
        let flushed = cache.flush().map_err(|e| format!("flushing cache: {e}"))?;
        registry.inc("cache.flushed_entries", flushed as u64);
        let stats = cache.store().stats();
        registry.set_gauge("cache.entries", stats.current_entries as f64);
        registry.set_gauge("cache.file_bytes", stats.file_bytes as f64);
    }
    // Downstream of mining: a traced run extends the trace through
    // filtering and clustering so the export and `diffcode explain`
    // show each change's full funnel journey, and a run with a cluster
    // cache re-clusters through the persisted distance cells. Neither
    // changes the mining report; the cluster path appends its own
    // deterministic lines below.
    let mut cluster_lines = String::new();
    if trace.is_enabled() || cluster_cache_dir.is_some() {
        let (kept, _) = apply_filters_traced(
            result.changes.clone(),
            &mut SeenDups::new(),
            &mut registry,
            &mut trace,
            0,
        );
        match cluster_cache_dir {
            Some(dir) => {
                let mut ccache = crate::ccache::ClusterCache::open_default(dir)
                    .map_err(|e| format!("opening cluster cache at {}: {e}", dir.display()))?;
                if kept.len() >= 2 {
                    let elicitation = crate::elicit::elicit_auto_cached(
                        &kept,
                        Some(&mut ccache),
                        &mut registry,
                        &mut trace,
                    );
                    let _ = writeln!(
                        cluster_lines,
                        "clustering: {} change(s) in {} cluster(s)",
                        kept.len(),
                        elicitation.clusters.len()
                    );
                    let _ = writeln!(
                        cluster_lines,
                        "cluster digest: {}",
                        cluster_digest(&elicitation)
                    );
                } else {
                    let _ = writeln!(
                        cluster_lines,
                        "clustering: skipped ({} change(s) after filtering)",
                        kept.len()
                    );
                }
                let flushed = ccache
                    .flush()
                    .map_err(|e| format!("flushing cluster cache: {e}"))?;
                registry.inc("cluster.cache.flushed_entries", flushed as u64);
                let stats = ccache.store().stats();
                registry.set_gauge("cluster.cache.entries", stats.current_entries as f64);
                registry.set_gauge("cluster.cache.file_bytes", stats.file_bytes as f64);
            }
            None => {
                if kept.len() >= 2 {
                    let _ = crate::elicit::elicit_auto_traced(&kept, &mut registry, &mut trace);
                }
            }
        }
    }
    let mut out = String::new();
    out.push_str(&source.header());
    out.push_str(&ingest_summary);
    if interrupted {
        let _ = writeln!(
            out,
            "interrupted: partial results below cover {} processed change(s); cache log flushed",
            result.stats.code_changes
        );
    }
    out.push_str(&render_mining_summary(&result, 10));
    let _ = writeln!(out, "\nresult digest: {}", mined_digest(&result));
    out.push_str(&cluster_lines);
    Ok((out, registry, trace, interrupted))
}

/// A content fingerprint of everything the cached clustering stage
/// produced: every dendrogram merge (operands plus the exact height
/// bits) and every cluster's membership, in report order. Two runs that
/// print the same cluster digest built bit-identical dendrograms and
/// cut them identically — the warm-vs-cold cluster CI gate compares
/// this (plus the rest of the byte-identical report).
fn cluster_digest(elicitation: &crate::elicit::Elicitation) -> cache::Fingerprint {
    let mut parts: Vec<String> =
        Vec::with_capacity(elicitation.dendrogram.merges.len() + elicitation.clusters.len() + 1);
    parts.push(format!("leaves:{}", elicitation.dendrogram.n_leaves));
    for merge in &elicitation.dendrogram.merges {
        parts.push(format!(
            "m:{}|{}|{:016x}",
            merge.left,
            merge.right,
            merge.distance.to_bits()
        ));
    }
    for cluster in &elicitation.clusters {
        let members: Vec<String> = cluster.members.iter().map(ToString::to_string).collect();
        parts.push(format!("c:{}", members.join(",")));
    }
    let parts: Vec<&str> = parts.iter().map(String::as_str).collect();
    cache::fingerprint_str(&parts)
}

/// The canonical provenance-free digest text of one mined tuple:
/// `class|old-dag|new-dag|change`. This exact formatting is shared
/// between the one-shot mining digest below and the `serve` `/mine`
/// endpoint, which is what makes a served verdict byte-comparable to a
/// one-shot run's.
pub fn tuple_digest(
    class: &str,
    old_dag: &usagegraph::UsageDag,
    new_dag: &usagegraph::UsageDag,
    change: &usagegraph::UsageChange,
) -> String {
    fn dag_text(dag: &usagegraph::UsageDag) -> String {
        let paths: Vec<String> = dag.paths.iter().map(ToString::to_string).collect();
        format!("{}:{}", dag.root_type, paths.join(";"))
    }
    format!(
        "{class}|{}|{}|{change}",
        dag_text(old_dag),
        dag_text(new_dag)
    )
}

/// The digest texts of one [`crate::mcache::ChangeOutcome`] — one
/// [`tuple_digest`] per mined tuple, empty for a quarantined skip.
pub fn outcome_digest_parts(outcome: &crate::mcache::ChangeOutcome) -> Vec<String> {
    match outcome {
        crate::mcache::ChangeOutcome::Mined(tuples) => tuples
            .iter()
            .map(|(class, old_dag, new_dag, change)| tuple_digest(class, old_dag, new_dag, change))
            .collect(),
        crate::mcache::ChangeOutcome::Skipped { .. } => Vec::new(),
    }
}

/// A content fingerprint of everything a mining run produced, in
/// order: provenance, class, both DAGs, and the feature diff of every
/// mined change. Two runs that print the same digest produced the same
/// changes — the warm-vs-cold CI gate compares this (plus the rest of
/// the byte-identical report).
fn mined_digest(result: &MiningResult) -> cache::Fingerprint {
    let mut parts: Vec<String> = Vec::with_capacity(result.changes.len());
    for mined in &result.changes {
        parts.push(format!(
            "{}|{}|{}|{}",
            mined.meta.project,
            mined.meta.commit,
            mined.meta.path,
            tuple_digest(&mined.class, &mined.old_dag, &mined.new_dag, &mined.change),
        ));
    }
    let parts: Vec<&str> = parts.iter().map(String::as_str).collect();
    cache::fingerprint_str(&parts)
}

/// The paper's Figure 2 fix as a one-commit corpus project, prepended
/// by [`run_explain`] so the command always has a well-known change to
/// walk (`fixtures/figure2`, commit `figure2-fix`, `AESCipher.java`) —
/// the CI trace smoke step queries exactly this change.
fn figure2_project() -> corpus::Project {
    corpus::Project {
        user: "fixtures".into(),
        name: "figure2".into(),
        facts: corpus::ProjectFacts::default(),
        commits: vec![corpus::Commit {
            id: "figure2-fix".into(),
            author: "paper authors <paper@pldi18>".into(),
            message: "Fix: use AES/CBC with an explicit IV".into(),
            changes: vec![corpus::FileChange {
                path: "AESCipher.java".into(),
                old: Some(corpus::fixtures::FIGURE2_OLD.into()),
                new: Some(corpus::fixtures::FIGURE2_NEW.into()),
            }],
        }],
    }
}

/// Backs `diffcode explain <query>`: re-runs the traced pipeline over
/// the seeded corpus (with the Figure 2 fixture prepended as project
/// `fixtures/figure2`) and prints the full funnel journey of every
/// change matching `query` — a change-fingerprint prefix or a
/// `project/path` substring.
///
/// # Errors
///
/// No change matches the query.
pub fn run_explain(
    query: &str,
    seed: u64,
    n_projects: usize,
    n_threads: usize,
) -> Result<String, String> {
    run_explain_source(query, &MineSource::Seeded { seed, n_projects }, n_threads)
}

/// [`run_explain`] over any [`MineSource`]. Repo mode walks the
/// repository and explains real commits — the query matches a real
/// change fingerprint or a `git/<repo-name>/<path>` substring; the
/// Figure 2 fixture is only prepended for seeded corpora, where it
/// anchors the CI trace smoke query.
///
/// # Errors
///
/// Repository ingestion failures; no change matches the query.
pub fn run_explain_source(
    query: &str,
    source: &MineSource,
    n_threads: usize,
) -> Result<String, String> {
    let mut registry = MetricsRegistry::new();
    let mut trace = TraceSink::enabled(1);
    let (mut corpus, _) = source.corpus(&mut registry)?;
    if matches!(source, MineSource::Seeded { .. }) {
        corpus.projects.insert(0, figure2_project());
    }
    let result = mine_parallel_traced(&corpus, &[], n_threads, &mut registry, None, &mut trace);
    let (kept, _) = apply_filters_traced(
        result.changes,
        &mut SeenDups::new(),
        &mut registry,
        &mut trace,
        0,
    );
    if kept.len() >= 2 {
        let _ = crate::elicit::elicit_auto_traced(&kept, &mut registry, &mut trace);
    }
    render_explain(&trace, query)
}

/// Renders the funnel journey of every change in `trace` matching
/// `query` (fingerprint prefix or `project/path` substring): the
/// change's `mine.change` span subtree (parse, analysis, DAG diff,
/// cache markers), then its decision events in stage order with the
/// typed reason each stage recorded.
///
/// # Errors
///
/// No change matches the query.
pub fn render_explain(trace: &TraceSink, query: &str) -> Result<String, String> {
    let events = trace.events();
    // Matching fingerprints, in first-decision order.
    let mut fingerprints: Vec<String> = Vec::new();
    for event in events {
        if event.kind != TraceKind::Decision {
            continue;
        }
        let Some(fp) = trace.attr_str(event, "fingerprint") else {
            continue;
        };
        let project = trace.attr_str(event, "project").unwrap_or_default();
        let path = trace.attr_str(event, "path").unwrap_or_default();
        let matches = fp.starts_with(query) || format!("{project}/{path}").contains(query);
        if matches && !fingerprints.iter().any(|f| f == fp) {
            fingerprints.push(fp.to_owned());
        }
    }
    if fingerprints.is_empty() {
        return Err(format!(
            "no change matches `{query}` (expected a fingerprint prefix or a project/path substring)"
        ));
    }
    let mut out = String::new();
    for fp in &fingerprints {
        let decisions: Vec<_> = events
            .iter()
            .filter(|e| {
                e.kind == TraceKind::Decision && trace.attr_str(e, "fingerprint") == Some(fp)
            })
            .collect();
        let first = decisions[0];
        let _ = writeln!(
            out,
            "change {fp} — {} @ {} ({})",
            trace.attr_str(first, "project").unwrap_or("?"),
            trace.attr_str(first, "commit").unwrap_or("?"),
            trace.attr_str(first, "path").unwrap_or("?"),
        );
        // The pipeline work done on this change: the subtree of every
        // `mine.change` span carrying this fingerprint.
        let roots: Vec<_> = events
            .iter()
            .filter(|e| {
                e.kind == TraceKind::Begin
                    && trace.name(e.name) == "mine.change"
                    && trace.attr_str(e, "fingerprint") == Some(fp)
            })
            .collect();
        if !roots.is_empty() {
            let _ = writeln!(out, "  pipeline spans:");
            for root in roots {
                render_span_subtree(trace, root.span, root.lane, 2, &mut out);
            }
        }
        let _ = writeln!(out, "  decisions:");
        let stage_order = |stage: Option<&str>| match stage {
            Some("mine") => 0,
            Some("filter") => 1,
            Some("cluster") => 2,
            _ => 3,
        };
        let mut ordered = decisions.clone();
        ordered.sort_by_key(|e| (stage_order(trace.attr_str(e, "stage")), e.seq));
        for event in ordered {
            let stage = trace.attr_str(event, "stage").unwrap_or("?");
            let reason = trace.attr_str(event, "reason").unwrap_or("?");
            let mut extras = String::new();
            for key in ["cache", "usage_changes", "index", "cluster_size"] {
                if let Some(value) = trace.attr(event, key) {
                    let _ = write!(extras, " {key}={value}");
                }
            }
            let _ = writeln!(out, "    {stage}: {reason}{extras}");
        }
    }
    Ok(out)
}

/// Prints the span/instant tree rooted at `span` (within one lane),
/// names only — durations are deliberately omitted so the output is
/// stable enough for CI to grep.
fn render_span_subtree(
    trace: &TraceSink,
    span: obs::SpanId,
    lane: u32,
    indent: usize,
    out: &mut String,
) {
    let root = trace
        .events()
        .iter()
        .find(|e| e.kind == TraceKind::Begin && e.span == span && e.lane == lane);
    let Some(root) = root else {
        return;
    };
    let pad = "  ".repeat(indent);
    let _ = writeln!(out, "{pad}{}", trace.name(root.name));
    for event in trace.events() {
        if event.lane != lane || event.parent != span {
            continue;
        }
        match event.kind {
            TraceKind::Begin => render_span_subtree(trace, event.span, lane, indent + 1, out),
            TraceKind::Instant => {
                let inner = "  ".repeat(indent + 1);
                let _ = writeln!(out, "{inner}{} (instant)", trace.name(event.name));
            }
            _ => {}
        }
    }
}

/// Resolves a `cache --namespace` value to the log namespace and the
/// version currently written under it. One directory can hold several
/// logs — the mining outcomes (`cache.log`, the default) and the
/// clustering distance cells (`cluster.log`) — and each namespace has
/// its own notion of "current version".
///
/// # Errors
///
/// An unknown namespace (only the two known logs have a defined
/// current version).
fn cache_namespace(namespace: Option<&str>) -> Result<(&str, u32), String> {
    match namespace.unwrap_or("cache") {
        "cache" => Ok(("cache", crate::mcache::ANALYSIS_VERSION)),
        "cluster" => Ok(("cluster", crate::ccache::CLUSTERING_VERSION)),
        other => Err(format!(
            "unknown cache namespace `{other}` (expected `cache` or `cluster`)"
        )),
    }
}

/// Renders `diffcode cache stats` for the store under `dir`. Opens
/// tolerantly: inspection must work on a damaged log (skipped corrupt
/// records show up in their own row). `namespace` selects which log in
/// the directory to inspect (`None` = the mining log).
///
/// # Errors
///
/// I/O failures opening the store, or an unknown namespace.
pub fn render_cache_stats(dir: &Path, namespace: Option<&str>) -> Result<String, String> {
    let (ns, version) = cache_namespace(namespace)?;
    let store = cache::CacheStore::open_ns_tolerant(dir, version, ns)
        .map_err(|e| format!("opening cache at {}: {e}", dir.display()))?;
    let stats = store.stats();
    let mut table = Table::new(["Fact", "Value"]);
    table.row(["directory".to_owned(), dir.display().to_string()]);
    table.row(["namespace".to_owned(), ns.to_owned()]);
    table.row(["analysis version".to_owned(), version.to_string()]);
    table.row([
        "entries (current version)".to_owned(),
        stats.current_entries.to_string(),
    ]);
    table.row([
        "entries (stale version)".to_owned(),
        stats.stale_entries.to_string(),
    ]);
    table.row([
        "records on disk".to_owned(),
        stats.records_loaded.to_string(),
    ]);
    table.row(["file bytes".to_owned(), stats.file_bytes.to_string()]);
    table.row([
        "corrupt tail bytes".to_owned(),
        stats.corrupt_tail_bytes.to_string(),
    ]);
    table.row([
        "corrupt records skipped".to_owned(),
        stats.corrupt_records.to_string(),
    ]);
    Ok(table.render())
}

/// Runs `diffcode cache vacuum`: compacts the log to one record per
/// live key, dropping stale versions, superseded duplicates, corrupt
/// mid-log records, and any corrupt tail. Opens tolerantly — vacuum is
/// the repair path for a log the strict open refuses. `namespace`
/// selects which log in the directory to compact (`None` = the mining
/// log).
///
/// # Errors
///
/// I/O failures opening or rewriting the store, or an unknown
/// namespace.
pub fn render_cache_vacuum(dir: &Path, namespace: Option<&str>) -> Result<String, String> {
    let (ns, version) = cache_namespace(namespace)?;
    let mut store = cache::CacheStore::open_ns_tolerant(dir, version, ns)
        .map_err(|e| format!("opening cache at {}: {e}", dir.display()))?;
    let report = store
        .vacuum()
        .map_err(|e| format!("vacuuming cache at {}: {e}", dir.display()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "vacuumed {}: kept {} entr{}, dropped {} stale + {} superseded/corrupt record(s), \
         {} -> {} bytes",
        dir.display(),
        report.kept,
        if report.kept == 1 { "y" } else { "ies" },
        report.dropped_stale,
        report.dropped_records,
        report.bytes_before,
        report.bytes_after,
    );
    Ok(out)
}

/// Runs `diffcode cache verify`: a structural integrity scan of the
/// log. Returns the report and whether the log is clean (the binary
/// exits non-zero on a dirty log). `namespace` selects which log in
/// the directory to scan (`None` = the mining log).
///
/// # Errors
///
/// I/O failures reading the store, or an unknown namespace.
pub fn render_cache_verify(dir: &Path, namespace: Option<&str>) -> Result<(String, bool), String> {
    let (ns, current_version) = cache_namespace(namespace)?;
    let report = cache::verify_ns(dir, ns)
        .map_err(|e| format!("verifying cache at {}: {e}", dir.display()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "verify {}: {} valid record(s), {} distinct key(s), {} checksum failure(s), \
         {} corrupt tail byte(s)",
        dir.display(),
        report.valid_records,
        report.distinct_keys,
        report.checksum_failures,
        report.corrupt_tail_bytes,
    );
    for (version, count) in &report.versions {
        let marker = if *version == current_version {
            " (current)"
        } else {
            ""
        };
        let _ = writeln!(out, "  version {version}{marker}: {count} record(s)");
    }
    let clean = report.is_clean();
    let _ = writeln!(out, "integrity: {}", if clean { "OK" } else { "DIRTY" });
    if !clean {
        let _ = writeln!(
            out,
            "run `diffcode cache vacuum --cache-dir {}` to drop the damaged bytes",
            dir.display()
        );
    }
    Ok((out, clean))
}

/// The counter names of the mining → filtering funnel, in pipeline
/// order. Shared by the report renderer, the invariant check, and the
/// CI snapshot checker (which re-implements the same chain over the
/// JSON snapshot).
pub const FILTER_FUNNEL: [&str; 5] = [
    "filter.total",
    "filter.after_fsame",
    "filter.after_fadd",
    "filter.after_frem",
    "filter.after_fdup",
];

/// Runs the full pipeline (generate → mine in parallel → filter →
/// cluster/elicit) over a seeded corpus with the observability layer
/// on, returning the rendered per-stage report and the registry (the
/// binary serializes it for `--metrics-json`).
///
/// Backs the `diffcode metrics` command. The report is built entirely
/// from the registry, so anything it shows is also in the snapshot.
pub fn run_metrics(seed: u64, n_projects: usize, n_threads: usize) -> (String, MetricsRegistry) {
    let mut registry = MetricsRegistry::new();
    let corpus = registry.time("corpus.generate", || {
        corpus::generate(&corpus::GeneratorConfig::small(n_projects, seed))
    });
    corpus::corpus_stats(&corpus).record(&mut registry);
    let result = mine_parallel_with_metrics(&corpus, &[], n_threads, &mut registry);
    let (kept, filter_stats) = apply_filters_with_metrics(result.changes.clone(), &mut registry);
    if kept.len() >= 2 {
        let clock = obs::Stopwatch::start();
        let _ = crate::elicit::elicit_auto_with_metrics(&kept, &mut registry);
        registry.record_span("elicit.total", clock.elapsed());
    }
    // Reconciliation: the registry must agree exactly with the
    // pipeline's own accounting structs.
    debug_assert_eq!(registry.counter("mine.mined"), result.stats.mined as u64);
    debug_assert_eq!(
        registry.counter("mine.skipped"),
        result.stats.skipped.total() as u64
    );
    debug_assert_eq!(registry.counter("filter.total"), filter_stats.total as u64);
    let report = render_metrics_report(&registry, seed, n_threads);
    (report, registry)
}

/// Renders the per-stage metrics report: the pipeline funnel, the
/// quarantine breakdown by error kind, and the stage latency table —
/// all sourced from `registry`.
pub fn render_metrics_report(registry: &MetricsRegistry, seed: u64, n_threads: usize) -> String {
    let mut out = String::new();
    let gauge = |name: &str| registry.gauge(name).unwrap_or(0.0) as u64;
    let _ = writeln!(
        out,
        "metrics run: seed {seed}, {} project(s), {} commit(s), {n_threads} thread(s)",
        gauge("corpus.projects"),
        gauge("corpus.total_commits"),
    );

    out.push_str("\npipeline funnel:\n");
    let mut funnel = Table::new(["Stage", "Count"]);
    funnel.row([
        "code changes processed".to_owned(),
        registry.counter("mine.code_changes").to_string(),
    ]);
    funnel.row([
        "  mined".to_owned(),
        registry.counter("mine.mined").to_string(),
    ]);
    funnel.row([
        "  skipped (quarantined)".to_owned(),
        registry.counter("mine.skipped").to_string(),
    ]);
    funnel.row([
        "usage changes".to_owned(),
        registry.counter("filter.total").to_string(),
    ]);
    for (name, label) in FILTER_FUNNEL.iter().skip(1).zip([
        "  after fsame",
        "  after fadd",
        "  after frem",
        "  after fdup (kept)",
    ]) {
        funnel.row([label.to_owned(), registry.counter(name).to_string()]);
    }
    funnel.row([
        "clusters elicited".to_owned(),
        registry.counter("elicit.clusters").to_string(),
    ]);
    out.push_str(&funnel.render());

    if registry.counter("mine.skipped") > 0 {
        out.push_str("\nquarantine breakdown:\n");
        let mut table = Table::new(["Kind", "Count", "Share"]);
        let processed = registry.counter("mine.code_changes").max(1);
        for kind in ErrorKind::ALL {
            let count = registry.counter(&format!("mine.skipped.{}", kind.name()));
            if count > 0 {
                table.row([
                    kind.name().to_owned(),
                    count.to_string(),
                    format!("{:.1}%", 100.0 * count as f64 / processed as f64),
                ]);
            }
        }
        out.push_str(&table.render());
    }

    out.push_str("\nstage latencies:\n");
    let mut spans = Table::new([
        "Span", "Count", "Total", "Mean", "P50", "P90", "P99", "Min", "Max",
    ]);
    for (name, span) in registry.spans() {
        // Every span records into a log-linear histogram alongside the
        // min/mean/max aggregate; quantiles come from there.
        let quantile = |q: f64| {
            registry
                .hist(name)
                .map_or_else(|| "-".to_owned(), |h| fmt_ns(h.quantile(q)))
        };
        spans.row([
            name.to_owned(),
            span.count.to_string(),
            fmt_ns(span.sum_ns),
            fmt_ns(span.mean_ns()),
            quantile(0.50),
            quantile(0.90),
            quantile(0.99),
            fmt_ns(span.min_ns),
            fmt_ns(span.max_ns),
        ]);
    }
    out.push_str(&spans.render());

    let partition = obs::check_partition(
        registry,
        "mine.code_changes",
        &["mine.mined", "mine.skipped"],
    );
    let funnel_ok = obs::check_funnel(registry, &FILTER_FUNNEL);
    match (partition, funnel_ok) {
        (Ok(()), Ok(())) => {
            let _ = writeln!(
                out,
                "\ninvariants: OK (processed = mined + skipped; funnel monotone)"
            );
        }
        (partition, funnel_result) => {
            for err in [partition.err(), funnel_result.err()].into_iter().flatten() {
                let _ = writeln!(out, "\ninvariant VIOLATED: {err}");
            }
        }
    }
    out
}

/// Usage string for the binary.
pub const USAGE: &str = "\
diffcode — infer and check crypto API rules from Java code changes

USAGE:
    diffcode analyze <file.java> [--class <Name>]
    diffcode diff <old.java> <new.java> [--class <Name>]
    diffcode check <file-or-dir>... [--android <minSdk>]
    diffcode rules
    diffcode chaos [--seed <N>] [--rate <0..1>] [--projects <N>]
    diffcode mine [--seed <N>] [--projects <N>] [--threads <N>]
                  [--repo <path>] [--rev-range <A..B>] [--max-commits <N>]
                  [--cache-dir <dir>] [--cluster-cache-dir <dir>]
                  [--metrics-json <path>]
                  [--trace-out <path>] [--trace-sample <N>]
    diffcode explain <fingerprint|project/path> [--seed <N>] [--projects <N>]
                     [--repo <path>] [--rev-range <A..B>] [--max-commits <N>]
                     [--threads <N>]
    diffcode cache <stats|vacuum|verify> --cache-dir <dir> [--namespace <ns>]
    diffcode metrics [--seed <N>] [--projects <N>] [--threads <N>]
                     [--metrics-json <path>]
    diffcode serve [--addr <host:port>] [--threads <N>] [--cache-dir <dir>]
                   [--cluster-cache-dir <dir>] [--repo-root <dir>]
                   [--deadline-ms <N>] [--queue-depth <N>] [--drain-ms <N>]

COMMANDS:
    analyze   print the abstract crypto-API usages (objects, events, DAGs)
    diff      print the semantic usage changes between two versions
    check     run CryptoChecker (the 13 elicited rules) on files/directories
    rules     print the rule table (paper Figure 9)
    chaos     fault-inject a generated corpus and report the quarantine accounting
    mine      mine a seeded corpus — or, with --repo <path>, a real cloned
              git repository (rename-aware commit walk over .java files;
              --rev-range restricts to A..B, --max-commits keeps the oldest
              N commits; author/commit/path provenance flows into traces) —
              and print the deterministic accounting;
              --cache-dir enables the persistent result cache (a warm re-run
              replays cached outcomes and prints byte-identical output),
              --cluster-cache-dir additionally filters + clusters the mined
              changes with persisted distance cells (a warm re-cluster only
              computes cells for new changes; output stays byte-identical to
              a cold run), --metrics-json writes counters incl.
              cache.hit/miss/stale_version and cluster.cache.hit/miss,
              --trace-out writes a Chrome trace-event JSON of the whole funnel
              (load it in Perfetto / chrome://tracing), --trace-sample N keeps
              every Nth span (decision events are always kept)
    explain   re-run the traced pipeline and print one change's full funnel
              journey — pipeline spans plus the typed decision each stage
              recorded; the query is a change-fingerprint prefix or a
              project/path substring (fixtures/figure2 is always present
              in seeded mode; with --repo the journey covers real commits)
    cache     inspect the persistent result cache: stats (size/versions),
              vacuum (compact, dropping stale + superseded records),
              verify (structural integrity scan; non-zero exit when dirty);
              --namespace selects the log in the directory: cache (mining
              outcomes, the default) or cluster (distance cells)
    metrics   run the pipeline over a seeded corpus and report per-stage
              counters, quarantine breakdown, and stage latencies;
              --metrics-json writes the machine-readable snapshot
    serve     run the resident mining/checking HTTP service (delegates to
              the diffcode-serve binary next to this one): POST /mine,
              POST /mine-repo (walk + mine a clone named under
              --repo-root; disabled without it), POST /check,
              GET /explain/<fingerprint>, GET /metrics,
              GET /cluster/stats, GET /healthz, GET /readyz; per-request
              deadlines, bounded admission queue with 429 shedding,
              graceful SIGTERM drain
";

fn effective_classes<'a>(classes: &[&'a str]) -> Vec<&'a str> {
    if classes.is_empty() {
        TARGET_CLASSES.to_vec()
    } else {
        classes.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::fixtures::{FIGURE2_NEW, FIGURE2_OLD};

    #[test]
    fn analyze_renders_dags() {
        let out = render_analysis(FIGURE2_NEW, &[]).unwrap();
        assert!(out.contains("abstract object"), "{out}");
        assert!(
            out.contains("Cipher getInstance arg1:AES/CBC/PKCS5Padding"),
            "{out}"
        );
        assert!(out.contains("IvParameterSpec"), "{out}");
    }

    #[test]
    fn analyze_restricts_to_class() {
        let out = render_analysis(FIGURE2_NEW, &["MessageDigest"]).unwrap();
        assert!(out.contains("no usages of MessageDigest"), "{out}");
    }

    #[test]
    fn diff_renders_changes_and_suggestion() {
        let out = render_diff(FIGURE2_OLD, FIGURE2_NEW, &["Cipher"]).unwrap();
        assert!(out.contains("- Cipher getInstance arg1:AES"), "{out}");
        assert!(out.contains("suggested rule:"), "{out}");
    }

    #[test]
    fn diff_of_refactoring_reports_none() {
        let out = render_diff(FIGURE2_NEW, FIGURE2_NEW, &[]).unwrap();
        assert!(out.contains("no semantic usage changes"), "{out}");
    }

    #[test]
    fn check_reports_violations() {
        let files = vec![("AESCipher.java".to_owned(), FIGURE2_OLD.to_owned())];
        let (out, count) = render_check(&files, ProjectContext::plain());
        assert!(count >= 1, "{out}");
        assert!(out.contains("R7"), "default AES is ECB: {out}");
    }

    #[test]
    fn check_clean_file() {
        let files = vec![(
            "Safe.java".to_owned(),
            r#"class Safe { void m(byte[] iv, javax.crypto.SecretKey k) throws Exception {
                Cipher c = Cipher.getInstance("AES/GCM/NoPadding", "BC");
                c.init(Cipher.ENCRYPT_MODE, k, new IvParameterSpec(iv));
            } }"#
                .to_owned(),
        )];
        let (out, count) = render_check(&files, ProjectContext::plain());
        assert_eq!(count, 0, "{out}");
    }

    #[test]
    fn rules_table_renders() {
        let out = render_rules();
        assert!(out.contains("R13"));
    }

    #[test]
    fn mining_summary_renders_accounting() {
        let corpus = corpus::Corpus {
            projects: vec![corpus::Project {
                user: "u".into(),
                name: "p".into(),
                facts: corpus::ProjectFacts::default(),
                commits: vec![corpus::Commit {
                    id: "c1".into(),
                    author: String::new(),
                    message: "m".into(),
                    changes: vec![corpus::FileChange {
                        path: "A.java".into(),
                        old: Some("class A { String s = \"open".into()),
                        new: Some("class A {}".into()),
                    }],
                }],
            }],
        };
        let result = DiffCode::new().mine(&corpus, &[]);
        let out = render_mining_summary(&result, 10);
        assert!(out.contains("1 skipped"), "{out}");
        assert!(out.contains("lex"), "{out}");
        assert!(out.contains("u/p @ c1 (A.java)"), "{out}");
    }

    #[test]
    fn mining_summary_caps_quarantine_listing() {
        let changes: Vec<corpus::FileChange> = (0..5)
            .map(|i| corpus::FileChange {
                path: format!("F{i}.java"),
                old: Some("class A { String s = \"open".into()),
                new: Some("class A {}".into()),
            })
            .collect();
        let corpus = corpus::Corpus {
            projects: vec![corpus::Project {
                user: "u".into(),
                name: "p".into(),
                facts: corpus::ProjectFacts::default(),
                commits: vec![corpus::Commit {
                    id: "c1".into(),
                    author: String::new(),
                    message: "m".into(),
                    changes,
                }],
            }],
        };
        let result = DiffCode::new().mine(&corpus, &[]);
        let out = render_mining_summary(&result, 2);
        assert!(out.contains("… and 3 more"), "{out}");
    }

    #[test]
    fn chaos_command_reports_exact_accounting() {
        let out = render_chaos(7, 0.5, 3);
        assert!(out.contains("chaos run: seed 7"), "{out}");
        assert!(out.contains("quarantine rate:"), "{out}");
        assert!(out.contains("accounting exact"), "{out}");
    }

    #[test]
    fn traced_mine_report_is_byte_identical_to_untraced() {
        let (plain, _) = run_mine(42, 4, 2, None).unwrap();
        let source = MineSource::Seeded {
            seed: 42,
            n_projects: 4,
        };
        let (traced, _, trace) = run_mine_traced(&source, 2, None, None, 1).unwrap();
        assert_eq!(plain, traced, "tracing must not perturb stdout");
        assert!(!trace.is_empty());
        let json = obs::to_chrome_json(&trace);
        assert!(json.starts_with("[\n"), "{}", &json[..40]);
    }

    #[test]
    fn explain_walks_the_figure2_change_through_the_funnel() {
        let out = run_explain("fixtures/figure2", 42, 6, 2).unwrap();
        assert!(
            out.contains("fixtures/figure2 @ figure2-fix (AESCipher.java)"),
            "{out}"
        );
        for marker in ["parse", "analysis", "dags.diff", "mined", "kept", "dup_of("] {
            assert!(out.contains(marker), "missing {marker} in:\n{out}");
        }
    }

    #[test]
    fn explain_rejects_unmatched_queries() {
        let err = run_explain("no-such-change-anywhere", 42, 2, 1).unwrap_err();
        assert!(err.contains("no change matches"), "{err}");
    }
}
