//! Incremental mining: the content-addressed result cache.
//!
//! The per-change pipeline (lex → parse → abstract interpretation →
//! DAG diff) is a pure function of the two file versions and the
//! pipeline configuration, so its outcome — the mined usage-change
//! tuples *or* the typed skip that quarantined it — can be persisted
//! and replayed on later runs instead of recomputed. This module binds
//! the generic [`cache`] crate to the pipeline:
//!
//! - **Keys** ([`MiningCache::change_key`]): a 128-bit fingerprint of
//!   the old file bytes, the new file bytes, and a configuration
//!   fingerprint covering the API model, the target-class list, the
//!   DAG depth, and every resource budget. Anything that can alter the
//!   outcome is in the key; provenance (project/commit/path) is *not*,
//!   so identical file pairs share one entry wherever they appear.
//! - **Payloads** ([`ChangeOutcome`]): the complete per-change outcome,
//!   including quarantined skips — a change that was skipped stays
//!   skipped on a warm run, keeping the
//!   `processed = mined + skipped` accounting byte-identical.
//! - **Versioning** ([`ANALYSIS_VERSION`]): bumped on any semantic
//!   change to `javalang`, `analysis`, or `usagegraph`; entries written
//!   under another version count as `cache.stale_version` and are
//!   recomputed (the store keeps the bytes until `vacuum`).

use crate::quarantine::ErrorKind;
use cache::wire::{Reader, WireError, Writer};
use cache::{fingerprint, CacheStore, Fingerprint, Lookup, ShardLog, StoreError};
use std::path::Path;
use usagegraph::{FeaturePath, Label, UsageChange, UsageDag};

/// The semantic version of the lex → parse → analysis → DAG-diff
/// stack. **Bump this on any change to `javalang`, `analysis`, or
/// `usagegraph` that can alter a mining outcome** — cached entries
/// written under an older version are then reported stale and
/// recomputed instead of replayed.
pub const ANALYSIS_VERSION: u32 = 1;

/// Version tag of the payload encoding itself (bumped on codec
/// change; folded into every cache key's configuration part).
const CODEC_VERSION: &str = "outcome-v1";

/// One cached per-change outcome: exactly what
/// `DiffCode::process_change` produced, minus provenance (which comes
/// from the corpus being mined, not the cache).
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeOutcome {
    /// The change was analyzed to completion: per-class usage-change
    /// tuples, in mining order.
    Mined(Vec<MinedTuple>),
    /// The change was skipped and quarantined.
    Skipped {
        /// Coarse classification (drives `SkipCounters`).
        kind: ErrorKind,
        /// The full error message.
        error: String,
        /// The triage excerpt of the offending source.
        excerpt: String,
    },
}

/// One mined tuple: target class plus the paired DAGs and their diff.
pub type MinedTuple = (String, UsageDag, UsageDag, UsageChange);

// ---------------------------------------------------------------------
// Outcome codec
// ---------------------------------------------------------------------

fn write_paths(w: &mut Writer, paths: &[FeaturePath]) {
    w.u64(paths.len() as u64);
    for path in paths {
        w.u64(path.0.len() as u64);
        for label in &path.0 {
            w.str(label);
        }
    }
}

fn read_paths(r: &mut Reader<'_>) -> Result<Vec<FeaturePath>, WireError> {
    let n = r.u64()?;
    let mut paths = Vec::new();
    for _ in 0..n {
        let len = r.u64()?;
        let mut labels = Vec::new();
        for _ in 0..len {
            labels.push(Label::from(r.str()?));
        }
        paths.push(FeaturePath(labels));
    }
    Ok(paths)
}

fn write_dag(w: &mut Writer, dag: &UsageDag) {
    w.str(&dag.root_type);
    let paths: Vec<FeaturePath> = dag.paths.iter().cloned().collect();
    write_paths(w, &paths);
}

fn read_dag(r: &mut Reader<'_>) -> Result<UsageDag, WireError> {
    let root_type = intern::intern(r.str()?);
    let paths = read_paths(r)?.into_iter().collect();
    Ok(UsageDag { root_type, paths })
}

fn kind_tag(kind: ErrorKind) -> u8 {
    match kind {
        ErrorKind::Lex => 0,
        ErrorKind::Parse => 1,
        ErrorKind::AnalysisBudget => 2,
        ErrorKind::DagBudget => 3,
        ErrorKind::Panic => 4,
    }
}

fn kind_from_tag(tag: u8) -> Result<ErrorKind, WireError> {
    Ok(match tag {
        0 => ErrorKind::Lex,
        1 => ErrorKind::Parse,
        2 => ErrorKind::AnalysisBudget,
        3 => ErrorKind::DagBudget,
        4 => ErrorKind::Panic,
        _ => return Err(WireError::Malformed("unknown error-kind tag")),
    })
}

/// Serializes an outcome to cache-payload bytes.
pub fn encode_outcome(outcome: &ChangeOutcome) -> Vec<u8> {
    let mut w = Writer::new();
    match outcome {
        ChangeOutcome::Mined(tuples) => {
            w.u8(0);
            w.u64(tuples.len() as u64);
            for (class, old_dag, new_dag, change) in tuples {
                w.str(class);
                write_dag(&mut w, old_dag);
                write_dag(&mut w, new_dag);
                w.str(&change.class);
                write_paths(&mut w, &change.removed);
                write_paths(&mut w, &change.added);
            }
        }
        ChangeOutcome::Skipped {
            kind,
            error,
            excerpt,
        } => {
            w.u8(1);
            w.u8(kind_tag(*kind));
            w.str(error);
            w.str(excerpt);
        }
    }
    w.finish()
}

/// Decodes cache-payload bytes back into an outcome. Total: any
/// malformed payload is a typed error (the pipeline treats it as a
/// miss and recomputes).
///
/// # Errors
///
/// [`WireError`] on truncated, malformed, or trailing-garbage input.
pub fn decode_outcome(bytes: &[u8]) -> Result<ChangeOutcome, WireError> {
    let mut r = Reader::new(bytes);
    let outcome = match r.u8()? {
        0 => {
            let n = r.u64()?;
            let mut tuples = Vec::new();
            for _ in 0..n {
                let class = r.str()?.to_owned();
                let old_dag = read_dag(&mut r)?;
                let new_dag = read_dag(&mut r)?;
                let change_class = r.str()?.to_owned();
                let removed = read_paths(&mut r)?;
                let added = read_paths(&mut r)?;
                tuples.push((
                    class,
                    old_dag,
                    new_dag,
                    UsageChange {
                        class: change_class,
                        removed,
                        added,
                    },
                ));
            }
            ChangeOutcome::Mined(tuples)
        }
        1 => {
            let kind = kind_from_tag(r.u8()?)?;
            let error = r.str()?.to_owned();
            let excerpt = r.str()?.to_owned();
            ChangeOutcome::Skipped {
                kind,
                error,
                excerpt,
            }
        }
        _ => return Err(WireError::Malformed("unknown outcome tag")),
    };
    if !r.is_exhausted() {
        return Err(WireError::Malformed("trailing bytes after outcome"));
    }
    Ok(outcome)
}

// ---------------------------------------------------------------------
// The pipeline-facing cache handle
// ---------------------------------------------------------------------

/// A persistent mining cache bound to a directory. Owns the
/// [`CacheStore`]; mining runs read through it and write through
/// per-run/per-shard [`MiningCacheView`]s.
#[derive(Debug)]
pub struct MiningCache {
    store: CacheStore,
    config_fp: Fingerprint,
}

impl MiningCache {
    /// Opens (creating if needed) the cache under `dir` at
    /// [`ANALYSIS_VERSION`], with a configuration fingerprint derived
    /// from the target classes and pipeline limits of the runs that
    /// will use it.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on I/O failures or mid-log corruption (see
    /// [`CacheStore::open`]); a mining run refuses a damaged cache
    /// rather than silently dropping part of it.
    pub fn open(
        dir: &Path,
        classes: &[&str],
        limits: &crate::quarantine::PipelineLimits,
        max_depth: usize,
    ) -> Result<MiningCache, StoreError> {
        MiningCache::open_at_version(dir, classes, limits, max_depth, ANALYSIS_VERSION)
    }

    /// [`MiningCache::open`], but tolerating (and skipping) corrupt
    /// mid-log records — the `cache stats` / `cache vacuum`
    /// inspection-and-repair path.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] only.
    pub fn open_tolerant(
        dir: &Path,
        classes: &[&str],
        limits: &crate::quarantine::PipelineLimits,
        max_depth: usize,
    ) -> Result<MiningCache, StoreError> {
        let store = CacheStore::open_tolerant(dir, ANALYSIS_VERSION)?;
        Ok(MiningCache {
            store,
            config_fp: config_fingerprint(classes, limits, max_depth),
        })
    }

    /// [`MiningCache::open`] at an explicit analysis version — the
    /// invalidation tests flip the version without editing this crate.
    pub fn open_at_version(
        dir: &Path,
        classes: &[&str],
        limits: &crate::quarantine::PipelineLimits,
        max_depth: usize,
        version: u32,
    ) -> Result<MiningCache, StoreError> {
        let store = CacheStore::open(dir, version)?;
        Ok(MiningCache {
            store,
            config_fp: config_fingerprint(classes, limits, max_depth),
        })
    }

    /// The cache key for one code change: old bytes, new bytes, and
    /// the configuration fingerprint. Provenance-free by design.
    pub fn change_key(&self, old: &str, new: &str) -> Fingerprint {
        let fp_bytes = self.config_fp.0.to_le_bytes();
        fingerprint(&[&fp_bytes, old.as_bytes(), new.as_bytes()])
    }

    /// A read-through view for one mining run or shard.
    pub fn view(&self) -> MiningCacheView<'_> {
        MiningCacheView {
            cache: self,
            log: ShardLog::new(),
        }
    }

    /// Merges a view's write log back into the store (call once per
    /// shard, in shard order, after the shard's worker joined).
    pub fn absorb(&mut self, log: ShardLog) {
        self.store.absorb(log);
    }

    /// Persists absorbed entries to disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; entries stay queued.
    pub fn flush(&mut self) -> std::io::Result<usize> {
        self.store.flush()
    }

    /// The underlying store (stats, vacuum).
    pub fn store(&self) -> &CacheStore {
        &self.store
    }

    /// The underlying store, mutably (vacuum).
    pub fn store_mut(&mut self) -> &mut CacheStore {
        &mut self.store
    }
}

/// What a view lookup produced, with decoding already applied.
#[derive(Debug, PartialEq)]
pub enum CachedLookup {
    /// A decoded outcome ready to replay.
    Hit(ChangeOutcome),
    /// An entry exists but was written under another analysis version.
    StaleVersion,
    /// No usable entry (absent, or present but undecodable).
    Miss,
}

/// A shard's window onto a [`MiningCache`]: shared read access to the
/// loaded index plus a private [`ShardLog`] of this shard's writes —
/// no locks, no cross-thread mutation on the hot path. A view checks
/// its own log before the shared index, so duplicate file pairs
/// *within* a shard hit on the second encounter even before the log is
/// absorbed.
#[derive(Debug)]
pub struct MiningCacheView<'a> {
    cache: &'a MiningCache,
    log: ShardLog,
}

impl MiningCacheView<'_> {
    /// The cache key for one code change (delegates to the cache).
    pub fn change_key(&self, old: &str, new: &str) -> Fingerprint {
        self.cache.change_key(old, new)
    }

    /// Looks up and decodes the outcome for `key`. An undecodable
    /// payload degrades to a miss (the entry will be recomputed and
    /// re-recorded).
    pub fn get(&self, key: Fingerprint) -> CachedLookup {
        let bytes = match self.log.get(key) {
            Some(bytes) => Some(bytes),
            None => match self.cache.store.get(key) {
                Lookup::Hit(bytes) => Some(bytes),
                Lookup::StaleVersion => return CachedLookup::StaleVersion,
                Lookup::Miss => None,
            },
        };
        match bytes {
            Some(bytes) => match decode_outcome(bytes) {
                Ok(outcome) => CachedLookup::Hit(outcome),
                Err(_) => CachedLookup::Miss,
            },
            None => CachedLookup::Miss,
        }
    }

    /// Records a freshly computed outcome for `key` in this view's log.
    pub fn record(&mut self, key: Fingerprint, outcome: &ChangeOutcome) {
        self.log.record(key, encode_outcome(outcome));
    }

    /// Consumes the view, returning its write log for
    /// [`MiningCache::absorb`].
    pub fn into_log(self) -> ShardLog {
        self.log
    }
}

/// Fingerprints everything configurable that can change a mining
/// outcome: API model, codec version, target classes, DAG depth, and
/// the full budget stack. `Debug` formatting of the limits structs is
/// deterministic and covers every field, so a budget tweak can never
/// silently replay outcomes computed under different budgets.
///
/// An empty class list is normalized to [`analysis::TARGET_CLASSES`]
/// first — the same resolution `DiffCode::mine` applies — so
/// `open(dir, &[], ..)` and `open(dir, TARGET_CLASSES, ..)` address
/// the same entries.
fn config_fingerprint(
    classes: &[&str],
    limits: &crate::quarantine::PipelineLimits,
    max_depth: usize,
) -> Fingerprint {
    let classes: &[&str] = if classes.is_empty() {
        &analysis::TARGET_CLASSES
    } else {
        classes
    };
    let mut parts: Vec<String> = vec![
        CODEC_VERSION.to_owned(),
        "api:standard".to_owned(),
        format!("depth:{max_depth}"),
        format!("limits:{limits:?}"),
    ];
    parts.push(format!("classes:{}", classes.join("\u{1f}")));
    let parts: Vec<&str> = parts.iter().map(String::as_str).collect();
    cache::fingerprint_str(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quarantine::PipelineLimits;
    use std::collections::BTreeSet;
    use usagegraph::DEFAULT_MAX_DEPTH;

    fn path(labels: &[&str]) -> FeaturePath {
        FeaturePath(labels.iter().copied().map(Label::from).collect())
    }

    fn sample_dag() -> UsageDag {
        let mut paths = BTreeSet::new();
        paths.insert(path(&["Cipher"]));
        paths.insert(path(&["Cipher", "getInstance"]));
        paths.insert(path(&["Cipher", "getInstance", "arg1:AES"]));
        UsageDag {
            root_type: "Cipher".into(),
            paths,
        }
    }

    #[test]
    fn mined_outcome_round_trips() {
        let change = UsageChange {
            class: "Cipher".to_owned(),
            removed: vec![path(&["Cipher", "getInstance", "arg1:AES"])],
            added: vec![path(&["Cipher", "getInstance", "arg1:AES/GCM/NoPadding"])],
        };
        let outcome = ChangeOutcome::Mined(vec![(
            "Cipher".to_owned(),
            sample_dag(),
            UsageDag::empty("Cipher"),
            change,
        )]);
        let bytes = encode_outcome(&outcome);
        assert_eq!(decode_outcome(&bytes).unwrap(), outcome);
    }

    #[test]
    fn skipped_outcome_round_trips_every_kind() {
        for kind in ErrorKind::ALL {
            let outcome = ChangeOutcome::Skipped {
                kind,
                error: format!("error for {kind}"),
                excerpt: "class A { \u{22a4} }".to_owned(),
            };
            let bytes = encode_outcome(&outcome);
            assert_eq!(decode_outcome(&bytes).unwrap(), outcome, "{kind}");
        }
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        assert!(decode_outcome(&[]).is_err());
        assert!(decode_outcome(&[9]).is_err(), "unknown tag");
        let bytes = encode_outcome(&ChangeOutcome::Mined(vec![(
            "Cipher".to_owned(),
            sample_dag(),
            sample_dag(),
            UsageChange::default(),
        )]));
        for cut in 0..bytes.len() {
            assert!(decode_outcome(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_outcome(&trailing).is_err(), "trailing byte");
    }

    #[test]
    fn change_key_depends_on_content_and_config() {
        let dir = std::env::temp_dir().join(format!("diffcode-mcache-key-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let limits = PipelineLimits::DEFAULT;
        let cache = MiningCache::open(&dir, &["Cipher"], &limits, DEFAULT_MAX_DEPTH).unwrap();
        let base = cache.change_key("old", "new");
        assert_eq!(cache.change_key("old", "new"), base, "deterministic");
        assert_ne!(cache.change_key("old", "newer"), base);
        assert_ne!(cache.change_key("older", "new"), base);
        assert_ne!(cache.change_key("new", "old"), base, "sides are ordered");

        let other_classes =
            MiningCache::open(&dir, &["Cipher", "Mac"], &limits, DEFAULT_MAX_DEPTH).unwrap();
        assert_ne!(other_classes.change_key("old", "new"), base);

        let tight = PipelineLimits {
            analysis: analysis::AnalysisLimits {
                max_steps: 1,
                ..analysis::AnalysisLimits::DEFAULT
            },
            ..PipelineLimits::DEFAULT
        };
        let other_limits = MiningCache::open(&dir, &["Cipher"], &tight, DEFAULT_MAX_DEPTH).unwrap();
        assert_ne!(other_limits.change_key("old", "new"), base);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn view_sees_its_own_writes_before_absorb() {
        let dir = std::env::temp_dir().join(format!("diffcode-mcache-view-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let limits = PipelineLimits::DEFAULT;
        let mut cache = MiningCache::open(&dir, &[], &limits, DEFAULT_MAX_DEPTH).unwrap();
        let key = cache.change_key("a", "b");
        let outcome = ChangeOutcome::Skipped {
            kind: ErrorKind::Lex,
            error: "boom".to_owned(),
            excerpt: "class".to_owned(),
        };
        let mut view = cache.view();
        assert_eq!(view.get(key), CachedLookup::Miss);
        view.record(key, &outcome);
        assert_eq!(view.get(key), CachedLookup::Hit(outcome.clone()));
        let log = view.into_log();
        cache.absorb(log);
        assert_eq!(cache.view().get(key), CachedLookup::Hit(outcome));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
