//! Plain-text table rendering for experiment reports.

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use diffcode::Table;
///
/// let mut table = Table::new(["Rule", "Matching"]);
/// table.row(["R1", "89 (34.6%)"]);
/// let text = table.render();
/// assert!(text.lines().count() == 3);
/// assert!(text.contains("R1"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn render_markdown(&self) -> String {
        let escape = |cell: &str| cell.replace('|', "\\|");
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(" | "),
        );
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            let cells: Vec<String> = (0..self.headers.len())
                .map(|i| escape(row.get(i).map(String::as_str).unwrap_or("")))
                .collect();
            out.push_str(&cells.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let n_cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; n_cols];
        let measure = |cells: &[String], widths: &mut Vec<usize>| {
            for (i, cell) in cells.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&self.headers, &mut widths);
        for row in &self.rows {
            measure(row, &mut widths);
        }

        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = width - cell.chars().count();
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', pad));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_owned()
        };

        let mut out = String::new();
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let sep_len = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.extend(std::iter::repeat_n('-', sep_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["Rule", "Applicable", "Matching"]);
        t.row(["R1", "257 (49.5%)", "89 (34.6%)"]);
        t.row(["R13", "8 (1.5%)", "4 (50%)"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Rule"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "Applicable" starts at the same offset in all rows.
        let col = lines[0].find("Applicable").unwrap();
        assert_eq!(&lines[2][col..col + 3], "257");
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only"]);
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(["Rule", "Matching"]);
        t.row(["R1", "89 (34.6%)"]);
        t.row(["R2|x", "15"]);
        let md = t.render_markdown();
        assert!(md.starts_with("| Rule | Matching |\n|---|---|\n"), "{md}");
        assert!(md.contains("| R1 | 89 (34.6%) |"), "{md}");
        assert!(md.contains("R2\\|x"), "pipes escaped: {md}");
    }
}
