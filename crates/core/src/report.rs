//! Plain-text table rendering for experiment reports.

/// Terminal display width of one character.
///
/// Columns used to be sized by code-point count, which misaligns any
/// cell holding East Asian wide characters (2 columns each) or
/// combining marks (0 columns) — e.g. rule names or project paths in
/// CJK. This is a compact approximation of Unicode UAX #11
/// `East_Asian_Width` plus the zero-width classes, covering the ranges
/// that occur in mined identifiers and commit messages; no external
/// unicode-width dependency (the workspace builds offline).
fn char_width(c: char) -> usize {
    let cp = c as u32;
    match cp {
        // Zero width: combining diacritics and marks, zero-width
        // spaces/joiners, variation selectors.
        0x0300..=0x036F
        | 0x0483..=0x0489
        | 0x0591..=0x05BD
        | 0x0610..=0x061A
        | 0x064B..=0x065F
        | 0x1AB0..=0x1AFF
        | 0x1DC0..=0x1DFF
        | 0x200B..=0x200F
        | 0x2060
        | 0x20D0..=0x20FF
        | 0xFE00..=0xFE0F
        | 0xFE20..=0xFE2F => 0,
        // Wide: Hangul Jamo, CJK radicals/kana/ideographs, Hangul
        // syllables, compatibility ideographs, fullwidth forms, and the
        // common wide emoji/symbol planes.
        0x1100..=0x115F
        | 0x2E80..=0x303E
        | 0x3041..=0x33FF
        | 0x3400..=0x4DBF
        | 0x4E00..=0x9FFF
        | 0xA000..=0xA4CF
        | 0xAC00..=0xD7A3
        | 0xF900..=0xFAFF
        | 0xFE30..=0xFE4F
        | 0xFF00..=0xFF60
        | 0xFFE0..=0xFFE6
        | 0x1F300..=0x1F64F
        | 0x1F900..=0x1F9FF
        | 0x20000..=0x2FFFD
        | 0x30000..=0x3FFFD => 2,
        _ => 1,
    }
}

/// Terminal display width of a string: the sum of per-character cell
/// widths (wide CJK/emoji count 2, zero-width marks count 0).
pub fn display_width(s: &str) -> usize {
    s.chars().map(char_width).sum()
}

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use diffcode::Table;
///
/// let mut table = Table::new(["Rule", "Matching"]);
/// table.row(["R1", "89 (34.6%)"]);
/// let text = table.render();
/// assert!(text.lines().count() == 3);
/// assert!(text.contains("R1"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn render_markdown(&self) -> String {
        let escape = |cell: &str| cell.replace('|', "\\|");
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(" | "),
        );
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            let cells: Vec<String> = (0..self.headers.len())
                .map(|i| escape(row.get(i).map(String::as_str).unwrap_or("")))
                .collect();
            out.push_str(&cells.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let n_cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; n_cols];
        let measure = |cells: &[String], widths: &mut Vec<usize>| {
            for (i, cell) in cells.iter().enumerate() {
                widths[i] = widths[i].max(display_width(cell));
            }
        };
        measure(&self.headers, &mut widths);
        for row in &self.rows {
            measure(row, &mut widths);
        }

        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = width - display_width(cell);
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', pad));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_owned()
        };

        let mut out = String::new();
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let sep_len = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.extend(std::iter::repeat_n('-', sep_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["Rule", "Applicable", "Matching"]);
        t.row(["R1", "257 (49.5%)", "89 (34.6%)"]);
        t.row(["R13", "8 (1.5%)", "4 (50%)"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Rule"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "Applicable" starts at the same offset in all rows.
        let col = lines[0].find("Applicable").unwrap();
        assert_eq!(&lines[2][col..col + 3], "257");
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only"]);
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn unicode_widths_align_columns() {
        // "暗号" is two wide chars (display width 4, char count 2,
        // byte len 6); "café" with a combining accent is width 4 but
        // char count 5. Byte- or char-count sizing misaligns both.
        let mut t = Table::new(["Rule", "Count"]);
        t.row(["暗号モード", "3"]);
        t.row(["cafe\u{0301} rule", "11"]);
        t.row(["R1", "257"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // Every row's second column starts at the same *display*
        // offset: strip the first column + padding and the remaining
        // prefix width must be identical across rows.
        let offsets: Vec<usize> = [lines[0], lines[2], lines[3], lines[4]]
            .iter()
            .map(|line| {
                let cut = line
                    .char_indices()
                    .rev()
                    .find(|(_, c)| *c == ' ')
                    .map(|(i, _)| i + 1)
                    .unwrap();
                display_width(&line[..cut])
            })
            .collect();
        assert!(
            offsets.windows(2).all(|w| w[0] == w[1]),
            "column offsets differ: {offsets:?}\n{s}"
        );
    }

    #[test]
    fn display_width_classifies() {
        assert_eq!(display_width("abc"), 3);
        assert_eq!(display_width("暗号"), 4, "CJK ideographs are wide");
        assert_eq!(display_width("ｱﾊﾟｰﾄ"), 5, "halfwidth katakana stay narrow");
        assert_eq!(
            display_width("e\u{0301}"),
            1,
            "combining accent is zero-width"
        );
        assert_eq!(display_width("한글"), 4, "hangul syllables are wide");
        assert_eq!(display_width("Ｒ１"), 4, "fullwidth forms are wide");
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(["Rule", "Matching"]);
        t.row(["R1", "89 (34.6%)"]);
        t.row(["R2|x", "15"]);
        let md = t.render_markdown();
        assert!(md.starts_with("| Rule | Matching |\n|---|---|\n"), "{md}");
        assert!(md.contains("| R1 | 89 (34.6%) |"), "{md}");
        assert!(md.contains("R2\\|x"), "pipes escaped: {md}");
    }
}
