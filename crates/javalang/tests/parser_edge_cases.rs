//! Edge cases mined from real-world Java crypto code: the parser must
//! handle (or cleanly recover from) all of these.

use javalang::ast::*;
use javalang::{parse_compilation_unit, pretty_print};

fn parse(src: &str) -> CompilationUnit {
    parse_compilation_unit(src).expect("parse failed")
}

fn parse_clean(src: &str) -> CompilationUnit {
    let unit = parse(src);
    assert!(unit.diagnostics.is_empty(), "{:?}", unit.diagnostics);
    unit
}

#[test]
fn hex_byte_arrays() {
    let unit = parse_clean(
        "class A { static final byte[] KEY = { (byte) 0xDE, (byte) 0xAD, 0x01, -1 }; }",
    );
    let field = unit.types[0].fields().next().unwrap();
    let init = field.declarators[0].init.expect("no initializer");
    let Expr::ArrayInit(elems) = unit.ast.expr(init) else {
        panic!()
    };
    assert_eq!(elems.len(), 4);
}

#[test]
fn ternary_in_argument_position() {
    parse_clean(
        r#"class A { void m(boolean gcm) throws Exception {
            Cipher c = Cipher.getInstance(gcm ? "AES/GCM/NoPadding" : "AES/CBC/PKCS5Padding");
        } }"#,
    );
}

#[test]
fn chained_calls_and_fluent_builders() {
    let unit = parse_clean(
        r#"class A { String m() { return new StringBuilder().append("a").append(1).toString(); } }"#,
    );
    assert_eq!(unit.types[0].methods().count(), 1);
}

#[test]
fn static_nested_generic_types() {
    parse_clean("class A { java.util.Map.Entry<String, java.util.List<byte[]>> e; }");
}

#[test]
fn conditional_with_generics_ambiguity() {
    // `a < b ? x : y` — the `<` must not be taken as a type argument.
    let unit =
        parse_clean("class A { int m(int a, int b, int x, int y) { return a < b ? x : y; } }");
    let body = unit.types[0]
        .methods()
        .next()
        .unwrap()
        .body
        .as_ref()
        .unwrap();
    let Stmt::Return(Some(value)) = unit.ast.stmt(body.stmts[0]) else {
        panic!("{body:?}")
    };
    assert!(matches!(unit.ast.expr(*value), Expr::Conditional { .. }));
}

#[test]
fn arrays_of_arrays() {
    parse_clean(
        "class A { byte[][] table = new byte[4][16]; int[][] m() { return new int[2][]; } }",
    );
}

#[test]
fn varargs_and_final_params() {
    let unit = parse_clean("class A { void log(final String fmt, Object... args) {} }");
    let m = unit.types[0].methods().next().unwrap();
    assert!(m.params[1].varargs);
}

#[test]
fn static_initializer_registering_provider() {
    let unit = parse_clean(
        r#"
        class A {
            static {
                java.security.Security.addProvider(new BouncyCastleProvider());
            }
        }
        "#,
    );
    assert!(matches!(
        unit.types[0].members[0],
        Member::Initializer {
            is_static: true,
            ..
        }
    ));
}

#[test]
fn throws_with_multiple_exceptions() {
    let unit = parse_clean(
        "class A { void m() throws NoSuchAlgorithmException, NoSuchPaddingException, InvalidKeyException {} }",
    );
    assert_eq!(unit.types[0].methods().next().unwrap().throws.len(), 3);
}

#[test]
fn string_switch() {
    parse_clean(
        r#"
        class A {
            int bits(String algo) {
                switch (algo) {
                    case "AES": return 128;
                    case "DES": return 56;
                    default: return 0;
                }
            }
        }
        "#,
    );
}

#[test]
fn arrow_switch_statement() {
    let unit = parse(
        r#"
        class A {
            void m(int x) {
                switch (x) {
                    case 1 -> a();
                    default -> b();
                }
            }
        }
        "#,
    );
    assert_eq!(unit.types[0].methods().count(), 1);
}

#[test]
fn unicode_identifiers_and_strings() {
    let unit = parse_clean("class A { String grüße = \"schlüssel\"; }");
    assert_eq!(unit.types[0].fields().count(), 1);
}

#[test]
fn deeply_nested_expressions_terminate() {
    let mut expr = String::from("1");
    for _ in 0..300 {
        expr = format!("({expr} + 1)");
    }
    let src = format!("class A {{ int x = {expr}; }}");
    // Past the nesting limit the parser must fail gracefully (recovery
    // diagnostic), never blow the stack.
    let unit = parse(&src);
    assert!(!unit.diagnostics.is_empty());

    // A comfortably deep but legal expression still parses.
    let mut ok_expr = String::from("1");
    for _ in 0..40 {
        ok_expr = format!("({ok_expr} + 1)");
    }
    let unit = parse(&format!("class A {{ int x = {ok_expr}; }}"));
    assert!(unit.diagnostics.is_empty(), "{:?}", unit.diagnostics);
    assert_eq!(unit.types[0].fields().count(), 1);
}

#[test]
fn comments_between_everything() {
    parse_clean(
        r#"
        class /* c */ A /* c */ { // trailing
            /* before */ int /* mid */ x /* after */ = /* val */ 1; // end
        }
        "#,
    );
}

#[test]
fn empty_class_and_semicolons() {
    let unit = parse_clean("class A { ;;; } ; class B {}");
    assert_eq!(unit.types.len(), 2);
}

#[test]
fn instanceof_with_pattern_binding() {
    parse_clean("class A { boolean m(Object o) { return o instanceof String s; } }");
}

#[test]
fn broken_expression_recovers_at_statement_level() {
    let unit = parse(
        r#"
        class A {
            void bad() { int x = ; }
            void good() { fine(); }
        }
        "#,
    );
    let names: Vec<_> = unit.types[0].methods().map(|m| m.name.clone()).collect();
    assert!(names.iter().any(|n| &**n == "good"));
    assert!(!unit.diagnostics.is_empty());
}

#[test]
fn missing_semicolon_recovers() {
    let unit = parse(
        r#"
        class A {
            int a = 1
            int b = 2;
            void m() { use(b); }
        }
        "#,
    );
    // Recovery may merge the broken field, but the method must survive.
    assert!(unit.types[0].methods().any(|m| &*m.name == "m"));
}

#[test]
fn roundtrip_stability_on_edge_cases() {
    let sources = [
        "class A { byte[] k = { 1, 2 }; }",
        r#"class B { void m() { for (int i = 0, j = 1; i < j; i++, j--) { swap(i, j); } } }"#,
        r#"class C { Object m() { return cond ? new int[] { 1 } : null; } }"#,
    ];
    for src in sources {
        let unit1 = parse(src);
        let p1 = pretty_print(&unit1);
        let unit2 = parse(&p1);
        let p2 = pretty_print(&unit2);
        assert_eq!(p1, p2, "roundtrip diverged for {src}");
    }
}

#[test]
fn annotations_with_arguments() {
    parse_clean(
        r#"
        @SuppressWarnings({"unchecked", "deprecation"})
        @Target(ElementType.METHOD)
        class A {
            @Inject(name = "x", optional = true) Provider p;
        }
        "#,
    );
}

#[test]
fn imports_do_not_leak_into_members() {
    let unit = parse_clean("package a.b; import x.y.Z; import static q.R.*; class A { Z z; }");
    assert_eq!(unit.imports.len(), 2);
    assert_eq!(unit.types.len(), 1);
}

#[test]
fn long_and_float_suffixed_literals() {
    parse_clean("class A { long t = 1000L; double d = 0.5d; float f = 2.5f; long h = 0xFFL; }");
}

#[test]
fn synchronized_method_modifier_vs_statement() {
    let unit = parse_clean(
        r#"
        class A {
            synchronized void m() { }
            void n() { synchronized (lock) { poke(); } }
        }
        "#,
    );
    assert_eq!(unit.types[0].methods().count(), 2);
}
