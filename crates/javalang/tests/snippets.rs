//! Partial-program support: `parse_snippet` accepts compilation units,
//! bare class bodies, and bare statement sequences.

use javalang::ast::{Member, Stmt};
use javalang::parse_snippet;

#[test]
fn full_unit_passes_through() {
    let unit = parse_snippet("package p; class A { void m() {} }").unwrap();
    assert_eq!(&*unit.types[0].name, "A");
    assert_eq!(unit.package.as_deref(), Some("p"));
}

#[test]
fn bare_method_is_wrapped() {
    let unit = parse_snippet(
        r#"
        byte[] encrypt(byte[] data, Key key) throws Exception {
            Cipher c = Cipher.getInstance("AES");
            c.init(Cipher.ENCRYPT_MODE, key);
            return c.doFinal(data);
        }
        "#,
    )
    .unwrap();
    assert_eq!(&*unit.types[0].name, "__Snippet__");
    let methods: Vec<_> = unit.types[0].methods().collect();
    assert_eq!(methods.len(), 1);
    assert_eq!(&*methods[0].name, "encrypt");
    assert!(unit.diagnostics.is_empty(), "{:?}", unit.diagnostics);
}

#[test]
fn bare_statements_are_wrapped() {
    let unit = parse_snippet(
        r#"
        Cipher c = Cipher.getInstance("AES");
        c.init(Cipher.ENCRYPT_MODE, key);
        byte[] out = c.doFinal(data);
        "#,
    )
    .unwrap();
    let body = unit.types[0]
        .methods()
        .next()
        .unwrap()
        .body
        .as_ref()
        .unwrap();
    assert_eq!(body.stmts.len(), 3, "{body:?}");
    assert!(unit.diagnostics.is_empty(), "{:?}", unit.diagnostics);
    // The non-declaration statement must survive (not be dropped as a
    // broken member).
    assert!(body
        .stmts
        .iter()
        .any(|s| matches!(unit.ast.stmt(*s), Stmt::Expr(_))));
}

#[test]
fn bare_fields_are_wrapped_as_members() {
    let unit = parse_snippet(
        r#"
        private static final String ALGO = "AES/GCM/NoPadding";
        Cipher cached;
        "#,
    )
    .unwrap();
    let fields: Vec<_> = unit.types[0]
        .members
        .iter()
        .filter(|m| matches!(m, Member::Field(_)))
        .collect();
    assert_eq!(fields.len(), 2);
}

#[test]
fn mixed_snippet_prefers_cleanest_interpretation() {
    // A declaration plus a call: as a class body the call is a broken
    // member (1 diagnostic); as statements both parse cleanly.
    let unit = parse_snippet(
        r#"
        MessageDigest d = MessageDigest.getInstance("SHA-256");
        d.update(payload);
        "#,
    )
    .unwrap();
    assert!(unit.diagnostics.is_empty(), "{:?}", unit.diagnostics);
    let body = unit.types[0]
        .methods()
        .next()
        .unwrap()
        .body
        .as_ref()
        .unwrap();
    assert_eq!(body.stmts.len(), 2);
}

#[test]
fn garbage_still_errors_or_empty() {
    let result = parse_snippet("⊥⊥⊥ not java at all ⊥⊥⊥");
    // Either a parse error or an empty/diagnosed unit — never a panic.
    if let Ok(unit) = result {
        assert!(unit.types.is_empty() || !unit.diagnostics.is_empty());
    }
}

#[test]
fn snippet_analysis_end_to_end() {
    // The pipeline consumes snippets through the same abstraction.
    let unit = parse_snippet(
        r#"SecureRandom r = new SecureRandom(); byte[] seed = { 1, 2 }; r.setSeed(seed);"#,
    )
    .unwrap();
    assert_eq!(unit.types.len(), 1);
    let body = unit.types[0]
        .methods()
        .next()
        .unwrap()
        .body
        .as_ref()
        .unwrap();
    assert_eq!(body.stmts.len(), 3);
}
