//! Pins the front end's steady-state allocation behaviour.
//!
//! The arena AST + zero-copy lexer + interned names exist to keep a
//! cold mine off the allocator; this test makes that property a hard
//! invariant instead of a benchmark-only observation. A counting
//! global allocator measures allocations for a warm parse (interner
//! already populated) of a representative crypto-service file and
//! fails if the count creeps past a small budget.
//!
//! The budget is a ceiling with headroom, not an exact pin: growing it
//! slightly for a good reason is fine, but a regression back to
//! per-node boxing or per-identifier `String`s (hundreds of
//! allocations for this file) should fail loudly.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

struct Counting;

// SAFETY: delegates verbatim to `System`; the counter is a relaxed
// atomic with no further invariants.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING: Counting = Counting;

/// Shaped like the mining corpus' crypto-service files: package and
/// import headers, a constants field, and one method whose body is a
/// chain of crypto API calls.
const SOURCE: &str = r#"package com.example.crypto;

import javax.crypto.Cipher;
import javax.crypto.spec.SecretKeySpec;
import javax.crypto.spec.IvParameterSpec;
import java.security.SecureRandom;

public class CryptoService {
    private static final String TRANSFORM = "AES/CBC/PKCS5Padding";

    public byte[] encryptData(byte[] data, byte[] keyBytes) throws Exception {
        SecretKeySpec keySpec = new SecretKeySpec(keyBytes, "AES");
        byte[] ivBytes = new byte[16];
        SecureRandom ivRandom = new SecureRandom();
        ivRandom.nextBytes(ivBytes);
        IvParameterSpec paramSpec = new IvParameterSpec(ivBytes);
        Cipher enc = Cipher.getInstance(TRANSFORM);
        enc.init(Cipher.ENCRYPT_MODE, keySpec, paramSpec);
        return enc.doFinal(data);
    }
}
"#;

/// Steady-state allocation budget for one `parse_snippet` of `SOURCE`.
///
/// Current cost (measured): 1 token vector, the two arena vectors, a
/// handful of per-list `Vec`s (imports, members, parameters, block
/// statements, declarators, call arguments), and nothing per token,
/// per identifier, or per AST node. Measured at 32 on x86-64; the
/// budget leaves headroom for allocator-pattern differences between
/// platforms, not for architectural regressions.
const PARSE_ALLOC_BUDGET: usize = 48;

// One test function on purpose: the allocation counter is global to
// the process, so concurrently running tests in this binary would
// count each other's allocations.
#[test]
fn warm_parse_stays_within_alloc_budget() {
    // Warm up: populate the thread-local interner and any lazily
    // initialised runtime state. Warm parses are the steady state of a
    // mining run — the corpus repeats the same identifiers throughout.
    for _ in 0..3 {
        javalang::parse_snippet(SOURCE).expect("fixture parses");
    }

    const RUNS: usize = 16;
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..RUNS {
        let unit = javalang::parse_snippet(SOURCE).expect("fixture parses");
        assert_eq!(unit.types.len(), 1);
    }
    let per_parse = (ALLOCS.load(Ordering::Relaxed) - before) / RUNS;

    assert!(
        per_parse <= PARSE_ALLOC_BUDGET,
        "warm parse of the fixture made {per_parse} allocations, \
         budget is {PARSE_ALLOC_BUDGET} — did a per-node or \
         per-identifier allocation sneak back into the front end?"
    );
}
