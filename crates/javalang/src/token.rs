//! Token definitions for the Java lexer.

use crate::error::Span;
use std::fmt;

/// The Java keywords recognised by the lexer.
///
/// Contextual keywords (`var`, `record`, `yield`) are lexed as
/// identifiers and disambiguated by the parser where needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Abstract,
    Assert,
    Boolean,
    Break,
    Byte,
    Case,
    Catch,
    Char,
    Class,
    Const,
    Continue,
    Default,
    Do,
    Double,
    Else,
    Enum,
    Extends,
    Final,
    Finally,
    Float,
    For,
    Goto,
    If,
    Implements,
    Import,
    Instanceof,
    Int,
    Interface,
    Long,
    Native,
    New,
    Package,
    Private,
    Protected,
    Public,
    Return,
    Short,
    Static,
    Strictfp,
    Super,
    Switch,
    Synchronized,
    This,
    Throw,
    Throws,
    Transient,
    Try,
    Void,
    Volatile,
    While,
}

impl Keyword {
    /// Looks up the keyword for `word`, if any.
    pub fn lookup(word: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match word {
            "abstract" => Abstract,
            "assert" => Assert,
            "boolean" => Boolean,
            "break" => Break,
            "byte" => Byte,
            "case" => Case,
            "catch" => Catch,
            "char" => Char,
            "class" => Class,
            "const" => Const,
            "continue" => Continue,
            "default" => Default,
            "do" => Do,
            "double" => Double,
            "else" => Else,
            "enum" => Enum,
            "extends" => Extends,
            "final" => Final,
            "finally" => Finally,
            "float" => Float,
            "for" => For,
            "goto" => Goto,
            "if" => If,
            "implements" => Implements,
            "import" => Import,
            "instanceof" => Instanceof,
            "int" => Int,
            "interface" => Interface,
            "long" => Long,
            "native" => Native,
            "new" => New,
            "package" => Package,
            "private" => Private,
            "protected" => Protected,
            "public" => Public,
            "return" => Return,
            "short" => Short,
            "static" => Static,
            "strictfp" => Strictfp,
            "super" => Super,
            "switch" => Switch,
            "synchronized" => Synchronized,
            "this" => This,
            "throw" => Throw,
            "throws" => Throws,
            "transient" => Transient,
            "try" => Try,
            "void" => Void,
            "volatile" => Volatile,
            "while" => While,
            _ => return None,
        })
    }

    /// The source-level spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Abstract => "abstract",
            Assert => "assert",
            Boolean => "boolean",
            Break => "break",
            Byte => "byte",
            Case => "case",
            Catch => "catch",
            Char => "char",
            Class => "class",
            Const => "const",
            Continue => "continue",
            Default => "default",
            Do => "do",
            Double => "double",
            Else => "else",
            Enum => "enum",
            Extends => "extends",
            Final => "final",
            Finally => "finally",
            Float => "float",
            For => "for",
            Goto => "goto",
            If => "if",
            Implements => "implements",
            Import => "import",
            Instanceof => "instanceof",
            Int => "int",
            Interface => "interface",
            Long => "long",
            Native => "native",
            New => "new",
            Package => "package",
            Private => "private",
            Protected => "protected",
            Public => "public",
            Return => "return",
            Short => "short",
            Static => "static",
            Strictfp => "strictfp",
            Super => "super",
            Switch => "switch",
            Synchronized => "synchronized",
            This => "this",
            Throw => "throw",
            Throws => "throws",
            Transient => "transient",
            Try => "try",
            Void => "void",
            Volatile => "volatile",
            While => "while",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Ellipsis,
    At,
    ColonColon,
    Arrow,
    Question,
    Colon,
    Assign,
    Eq,
    NotEq,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Tilde,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Inc,
    Dec,
    Amp,
    Pipe,
    Caret,
    Shl,
    // Note: `>>` and `>>>` are *not* lexed as single tokens; the parser
    // assembles them from `>` tokens so that nested generics such as
    // `Map<String, List<String>>` lex correctly.
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
}

impl Punct {
    /// The source-level spelling of the punctuation token.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Ellipsis => "...",
            At => "@",
            ColonColon => "::",
            Arrow => "->",
            Question => "?",
            Colon => ":",
            Assign => "=",
            Eq => "==",
            NotEq => "!=",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            AndAnd => "&&",
            OrOr => "||",
            Not => "!",
            Tilde => "~",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Inc => "++",
            Dec => "--",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Shl => "<<",
            PlusAssign => "+=",
            MinusAssign => "-=",
            StarAssign => "*=",
            SlashAssign => "/=",
            PercentAssign => "%=",
            AmpAssign => "&=",
            PipeAssign => "|=",
            CaretAssign => "^=",
            ShlAssign => "<<=",
        }
    }
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A lexed token. Zero-copy: identifier and string-literal tokens
/// borrow slices of the source instead of owning a `String`, which
/// makes `Token` (and [`SpannedToken`]) `Copy` — the parser inspects
/// tokens freely without ever allocating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Token<'s> {
    /// An identifier (including contextual keywords such as `var`),
    /// as a slice of the source.
    Ident(&'s str),
    /// A reserved keyword.
    Keyword(Keyword),
    /// Punctuation or an operator.
    Punct(Punct),
    /// An integer literal (`int` or `long`); the flag is `true` for `long`.
    IntLit(i64, bool),
    /// A floating-point literal.
    FloatLit(f64),
    /// A character literal.
    CharLit(char),
    /// A string literal: the raw source slice between the quotes, plus
    /// whether it contains escape sequences. The lexer *validates*
    /// escapes while scanning (so malformed escapes still fail at lex
    /// time) but resolves them only on demand via [`Token::cook_str`]
    /// — unescaped literals (the overwhelming majority) never allocate.
    StrLit {
        /// The characters between the quotes, escapes unresolved.
        raw: &'s str,
        /// `true` when `raw` contains at least one backslash escape.
        escaped: bool,
    },
    /// `true` or `false`.
    BoolLit(bool),
    /// The `null` literal.
    Null,
    /// End of input.
    Eof,
}

impl<'s> Token<'s> {
    /// Resolves the escapes of a lexer-validated string-literal body.
    /// Allocates only when the literal actually contains escapes.
    pub fn cook_str(raw: &str, escaped: bool) -> String {
        if !escaped {
            return raw.to_owned();
        }
        unescape(raw)
    }
}

/// Resolves the backslash escapes of a string-literal body the lexer
/// has already validated. Mirrors the lexer's escape rules exactly:
/// the named escapes, `\0`, `\uXXXX` with any number of `u`s (out of
/// range maps to U+FFFD), and unknown escapes standing for themselves.
fn unescape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        // The lexer guarantees every escape is well-formed.
        let Some(e) = chars.next() else { break };
        out.push(match e {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            'b' => '\u{8}',
            'f' => '\u{c}',
            '0' => '\0',
            'u' => {
                let mut rest = chars.clone();
                while rest.clone().next() == Some('u') {
                    rest.next();
                }
                let mut value: u32 = 0;
                for _ in 0..4 {
                    let d = rest.next().and_then(|d| d.to_digit(16)).unwrap_or(0);
                    value = value * 16 + d;
                }
                chars = rest;
                char::from_u32(value).unwrap_or('\u{fffd}')
            }
            other => other,
        });
    }
    out
}

impl fmt::Display for Token<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => f.write_str(s),
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Punct(p) => write!(f, "{p}"),
            Token::IntLit(v, is_long) => {
                write!(f, "{v}{}", if *is_long { "L" } else { "" })
            }
            Token::FloatLit(v) => write!(f, "{v}"),
            Token::CharLit(c) => write!(f, "'{c}'"),
            Token::StrLit { raw, escaped } => {
                write!(f, "{:?}", Token::cook_str(raw, *escaped))
            }
            Token::BoolLit(b) => write!(f, "{b}"),
            Token::Null => f.write_str("null"),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpannedToken<'s> {
    /// The token itself.
    pub token: Token<'s>,
    /// Where it came from.
    pub span: Span,
}
