//! An error-tolerant recursive-descent parser for the Java subset.
//!
//! Recovery model: parse errors inside a class member (or at top level)
//! do not abort the file. The offending region is skipped — up to a `;`
//! or a balanced `{...}` — a [`ParseDiagnostic`] is recorded on the
//! [`CompilationUnit`], and parsing resumes. This mirrors DiffCode's
//! requirement to analyze partial programs mined from version control.
//!
//! Expressions and statements are allocated into the unit's [`Ast`]
//! arena lazily — a node is pushed only when it becomes the child of
//! another node — so backtracking productions (casts, declarator
//! lookahead, generic-argument disambiguation) at worst orphan a few
//! arena slots instead of repeatedly allocating and freeing boxes.

use crate::ast::*;
use crate::error::{ParseDiagnostic, ParseError, ParseErrorKind, Span};
use crate::lexer::Lexer;
use crate::limits::Limits;
use crate::token::{Keyword, Punct, SpannedToken, Token};
use intern::{intern, intern_owned};

/// Parses a whole source file with [`Limits::DEFAULT`] budgets.
///
/// # Errors
///
/// Returns an error only if the file cannot be lexed or no top-level
/// structure could be recovered at all; member-level problems are
/// reported via [`CompilationUnit::diagnostics`].
pub fn parse_compilation_unit(source: &str) -> Result<CompilationUnit, ParseError> {
    parse_compilation_unit_with_limits(source, Limits::DEFAULT)
}

/// Parses a whole source file with explicit resource budgets.
///
/// # Errors
///
/// As [`parse_compilation_unit`], plus typed budget errors
/// ([`ParseErrorKind::SourceTooLarge`] and friends) when `limits` are
/// exceeded.
pub fn parse_compilation_unit_with_limits(
    source: &str,
    limits: Limits,
) -> Result<CompilationUnit, ParseError> {
    let tokens = Lexer::with_limits(source, limits).tokenize()?;
    Parser::with_limits(tokens, limits).parse_unit()
}

/// The recursive-descent parser. Borrows the source through its
/// zero-copy token stream.
#[derive(Debug)]
pub struct Parser<'s> {
    tokens: Vec<SpannedToken<'s>>,
    pos: usize,
    /// Cache of `tokens[pos].token`, so the very hottest operation —
    /// peeking the current token — is one field load with no bounds
    /// check. Kept in sync by `bump` and `rewind`.
    cur: Token<'s>,
    diagnostics: Vec<ParseDiagnostic>,
    /// The arena the parsed unit's expressions and statements land in.
    ast: Ast,
    /// Current nesting depth across *all* recursive paths (statements,
    /// expressions, types, array initialisers, nested type
    /// declarations) — guards the stack against adversarial inputs.
    depth: usize,
    /// Depth at which [`Parser::nested`] gives up.
    max_nesting: usize,
    /// Reusable scratch for composing dotted names before interning.
    /// Used stack-wise: callers record `name_buf.len()`, append, intern
    /// the suffix, and truncate back, so recursive productions (type
    /// arguments inside dotted type names) can share one buffer.
    name_buf: String,
}

type PResult<T> = Result<T, ParseError>;

impl<'s> Parser<'s> {
    /// Creates a parser over a pre-lexed token stream with
    /// [`Limits::DEFAULT`] budgets. A missing trailing [`Token::Eof`]
    /// is appended rather than rejected.
    pub fn new(tokens: Vec<SpannedToken<'s>>) -> Self {
        Parser::with_limits(tokens, Limits::DEFAULT)
    }

    /// Creates a parser over a pre-lexed token stream with explicit
    /// resource budgets.
    pub fn with_limits(mut tokens: Vec<SpannedToken<'s>>, limits: Limits) -> Self {
        if !matches!(tokens.last(), Some(t) if t.token == Token::Eof) {
            let span = tokens.last().map(|t| t.span).unwrap_or_default();
            tokens.push(SpannedToken {
                token: Token::Eof,
                span,
            });
        }
        Parser {
            ast: Ast::with_token_estimate(tokens.len()),
            cur: tokens[0].token,
            tokens,
            pos: 0,
            diagnostics: Vec::new(),
            depth: 0,
            max_nesting: limits.max_nesting,
            name_buf: String::new(),
        }
    }

    /// Runs `f` one nesting level deeper, failing fast past
    /// [`Limits::max_nesting`] so adversarial inputs cannot exhaust
    /// the stack.
    fn nested<T>(&mut self, f: impl FnOnce(&mut Self) -> PResult<T>) -> PResult<T> {
        if self.depth >= self.max_nesting {
            return Err(ParseError::with_kind(
                ParseErrorKind::NestingTooDeep,
                "expression or statement nesting too deep",
                self.span(),
            ));
        }
        self.depth += 1;
        let result = f(self);
        self.depth -= 1;
        result
    }

    // ------------------------------------------------------------------
    // Token-stream helpers
    // ------------------------------------------------------------------

    fn peek(&self) -> Token<'s> {
        self.cur
    }

    fn peek_at(&self, k: usize) -> Token<'s> {
        let idx = (self.pos + k).min(self.tokens.len() - 1);
        self.tokens[idx].token
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token<'s> {
        let tok = self.cur;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        self.cur = self.tokens[self.pos].token;
        tok
    }

    /// Moves the cursor to an earlier (saved) position, keeping the
    /// cached current token in sync. All speculative-parse backtracking
    /// goes through here.
    fn rewind(&mut self, pos: usize) {
        self.pos = pos;
        self.cur = self.tokens[pos].token;
    }

    fn at_eof(&self) -> bool {
        self.peek() == Token::Eof
    }

    fn check_punct(&self, p: Punct) -> bool {
        self.peek() == Token::Punct(p)
    }

    fn check_keyword(&self, k: Keyword) -> bool {
        self.peek() == Token::Keyword(k)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.check_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.check_keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> PResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`, found `{}`", p, self.peek())))
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> PResult<()> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`, found `{}`", k, self.peek())))
        }
    }

    fn expect_ident(&mut self) -> PResult<Name> {
        match self.peek() {
            Token::Ident(name) => {
                self.bump();
                Ok(intern(name))
            }
            // Allow a handful of keywords in identifier position where
            // real-world code uses them as names via imports.
            other => Err(self.error(format!("expected identifier, found `{other}`"))),
        }
    }

    fn error(&self, message: impl Into<std::borrow::Cow<'static, str>>) -> ParseError {
        ParseError::new(message, self.span())
    }

    fn alloc_expr(&mut self, expr: Expr) -> ExprId {
        self.ast.alloc_expr(expr)
    }

    fn alloc_stmt(&mut self, stmt: Stmt) -> StmtId {
        self.ast.alloc_stmt(stmt)
    }

    /// `>`-`>` adjacency check used to reassemble shift operators.
    fn gt_adjacent(&self) -> bool {
        if self.check_punct(Punct::Gt) && self.peek_at(1) == Token::Punct(Punct::Gt) {
            let a = self.tokens[self.pos].span;
            let b = self.tokens[self.pos + 1].span;
            a.end == b.start
        } else {
            false
        }
    }

    /// Skips a balanced `open ... close` region, assuming the current
    /// token is `open`. Never fails: stops at EOF.
    fn skip_balanced(&mut self, open: Punct, close: Punct) {
        debug_assert!(self.check_punct(open));
        let mut depth = 0usize;
        while !self.at_eof() {
            if self.check_punct(open) {
                depth += 1;
            } else if self.check_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skips any annotations (`@Foo`, `@Foo(...)`) at the cursor.
    fn skip_annotations(&mut self) {
        while self.check_punct(Punct::At) {
            // `@interface` is a declaration, not an annotation use.
            if self.peek_at(1) == Token::Keyword(Keyword::Interface) {
                return;
            }
            self.bump(); // @
                         // Dotted annotation name.
            if matches!(self.peek(), Token::Ident(_)) {
                self.bump();
                while self.check_punct(Punct::Dot) && matches!(self.peek_at(1), Token::Ident(_)) {
                    self.bump();
                    self.bump();
                }
            }
            if self.check_punct(Punct::LParen) {
                self.skip_balanced(Punct::LParen, Punct::RParen);
            }
        }
    }

    /// Skips a `<...>` type-parameter/argument region if present. If the
    /// region turns out not to be balanced before a `;`/`{`, the cursor
    /// is restored (we mis-identified a less-than).
    fn skip_type_params(&mut self) {
        if !self.check_punct(Punct::Lt) {
            return;
        }
        let save = self.pos;
        let mut depth = 0usize;
        while !self.at_eof() {
            if self.check_punct(Punct::Lt) {
                depth += 1;
            } else if self.check_punct(Punct::Gt) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            } else if self.check_punct(Punct::Semi) || self.check_punct(Punct::LBrace) {
                self.rewind(save);
                return;
            }
            self.bump();
        }
        self.rewind(save);
    }

    // ------------------------------------------------------------------
    // Compilation unit
    // ------------------------------------------------------------------

    /// Parses the whole token stream into a [`CompilationUnit`].
    ///
    /// # Errors
    ///
    /// See [`parse_compilation_unit`].
    pub fn parse_unit(mut self) -> Result<CompilationUnit, ParseError> {
        let mut unit = CompilationUnit::default();

        self.skip_annotations();
        if self.eat_keyword(Keyword::Package) {
            let start = self.name_buf.len();
            while let Token::Ident(seg) = self.peek() {
                self.bump();
                self.name_buf.push_str(seg);
                if self.eat_punct(Punct::Dot) {
                    self.name_buf.push('.');
                } else {
                    break;
                }
            }
            let _ = self.expect_punct(Punct::Semi);
            unit.package = Some(intern(&self.name_buf[start..]));
            self.name_buf.truncate(start);
        }

        while self.check_keyword(Keyword::Import) {
            self.bump();
            let is_static = self.eat_keyword(Keyword::Static);
            let start = self.name_buf.len();
            let mut on_demand = false;
            loop {
                match self.peek() {
                    Token::Ident(seg) => {
                        self.bump();
                        self.name_buf.push_str(seg);
                    }
                    Token::Punct(Punct::Star) => {
                        self.bump();
                        on_demand = true;
                        // strip trailing dot
                        if self.name_buf.len() > start && self.name_buf.ends_with('.') {
                            self.name_buf.pop();
                        }
                        break;
                    }
                    _ => break,
                }
                if self.eat_punct(Punct::Dot) {
                    self.name_buf.push('.');
                } else {
                    break;
                }
            }
            let _ = self.expect_punct(Punct::Semi);
            unit.imports.push(Import {
                is_static,
                path: intern(&self.name_buf[start..]),
                on_demand,
            });
            self.name_buf.truncate(start);
        }

        while !self.at_eof() {
            self.skip_annotations();
            if self.eat_punct(Punct::Semi) {
                continue;
            }
            if self.at_eof() {
                break;
            }
            let before = self.pos;
            match self.parse_type_decl() {
                Ok(decl) => unit.types.push(decl),
                Err(err) => {
                    self.diagnostics.push(ParseDiagnostic {
                        message: err.message().to_owned(),
                        span: err.span(),
                    });
                    if self.pos == before {
                        self.bump();
                    }
                    self.recover_to_member_boundary();
                }
            }
        }
        unit.diagnostics = std::mem::take(&mut self.diagnostics);
        unit.ast = self.ast;
        Ok(unit)
    }

    // ------------------------------------------------------------------
    // Type declarations
    // ------------------------------------------------------------------

    /// Nested type declarations (`class A { class B { ... } }`) recurse
    /// through [`Parser::parse_member`], so the whole production runs
    /// under the nesting guard.
    fn parse_type_decl(&mut self) -> PResult<TypeDecl> {
        self.nested(|p| p.parse_type_decl_inner())
    }

    fn parse_type_decl_inner(&mut self) -> PResult<TypeDecl> {
        let start = self.span();
        self.skip_annotations();
        let modifiers = self.parse_modifiers();
        self.skip_annotations();

        let kind = if self.eat_keyword(Keyword::Class) {
            TypeKind::Class
        } else if self.eat_keyword(Keyword::Interface) {
            TypeKind::Interface
        } else if self.eat_keyword(Keyword::Enum) {
            TypeKind::Enum
        } else if self.check_punct(Punct::At)
            && self.peek_at(1) == Token::Keyword(Keyword::Interface)
        {
            self.bump();
            self.bump();
            TypeKind::Annotation
        } else if let Token::Ident(word) = self.peek() {
            // `record Name(...)` — treat as a class-like declaration.
            if word == "record" && matches!(self.peek_at(1), Token::Ident(_)) {
                self.bump();
                TypeKind::Class
            } else {
                return Err(self.error(format!(
                    "expected type declaration, found `{}`",
                    self.peek()
                )));
            }
        } else {
            return Err(self.error(format!(
                "expected type declaration, found `{}`",
                self.peek()
            )));
        };

        let name = self.expect_ident()?;
        self.skip_type_params();

        // Record headers: `record R(int a, String b)`.
        if self.check_punct(Punct::LParen) {
            self.skip_balanced(Punct::LParen, Punct::RParen);
        }

        let mut extends = None;
        let mut implements = Vec::new();
        if self.eat_keyword(Keyword::Extends) {
            extends = Some(self.parse_type()?);
            // Interfaces may extend several types.
            while self.eat_punct(Punct::Comma) {
                implements.push(self.parse_type()?);
            }
        }
        if self.eat_keyword(Keyword::Implements) {
            implements.push(self.parse_type()?);
            while self.eat_punct(Punct::Comma) {
                implements.push(self.parse_type()?);
            }
        }
        // `permits` clauses (sealed types) — skip to body.
        while !self.check_punct(Punct::LBrace) && !self.at_eof() {
            self.bump();
        }
        self.expect_punct(Punct::LBrace)?;

        let mut enum_constants = Vec::new();
        if kind == TypeKind::Enum {
            // Constants up to `;` or `}`.
            loop {
                self.skip_annotations();
                match self.peek() {
                    Token::Ident(constant) => {
                        self.bump();
                        enum_constants.push(intern(constant));
                        if self.check_punct(Punct::LParen) {
                            self.skip_balanced(Punct::LParen, Punct::RParen);
                        }
                        if self.check_punct(Punct::LBrace) {
                            self.skip_balanced(Punct::LBrace, Punct::RBrace);
                        }
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                    _ => break,
                }
            }
            self.eat_punct(Punct::Semi);
        }

        let members = self.parse_type_body(&name);
        let span = start.merge(self.span());
        Ok(TypeDecl {
            kind,
            modifiers,
            name,
            extends,
            implements,
            enum_constants,
            members,
            span,
        })
    }

    /// Parses members until the closing `}` of the type body. Member
    /// errors are recovered.
    fn parse_type_body(&mut self, class_name: &str) -> Vec<Member> {
        let mut members = Vec::new();
        loop {
            if self.eat_punct(Punct::RBrace) || self.at_eof() {
                return members;
            }
            if self.eat_punct(Punct::Semi) {
                continue;
            }
            let before = self.pos;
            match self.parse_member(class_name) {
                Ok(member) => members.push(member),
                Err(err) => {
                    self.diagnostics.push(ParseDiagnostic {
                        message: err.message().to_owned(),
                        span: err.span(),
                    });
                    if self.pos == before {
                        self.bump();
                    }
                    self.recover_to_member_boundary();
                }
            }
        }
    }

    /// Skips past the current broken construct: consumes until a `;` at
    /// depth 0 or a balanced `{...}` completes, without consuming the
    /// enclosing class's `}`.
    fn recover_to_member_boundary(&mut self) {
        let mut depth = 0i32;
        while !self.at_eof() {
            match self.peek() {
                Token::Punct(Punct::LBrace) => {
                    depth += 1;
                    self.bump();
                }
                Token::Punct(Punct::RBrace) => {
                    if depth == 0 {
                        return; // enclosing `}` — leave for the caller
                    }
                    depth -= 1;
                    self.bump();
                    if depth == 0 {
                        return;
                    }
                }
                Token::Punct(Punct::Semi) if depth == 0 => {
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn parse_member(&mut self, class_name: &str) -> PResult<Member> {
        let start = self.span();
        self.skip_annotations();
        let modifiers = self.parse_modifiers();
        self.skip_annotations();

        // Initializer block.
        if self.check_punct(Punct::LBrace) {
            let body = self.parse_block()?;
            return Ok(Member::Initializer {
                is_static: modifiers.is_static,
                body,
            });
        }

        // Nested type.
        if self.check_keyword(Keyword::Class)
            || self.check_keyword(Keyword::Interface)
            || self.check_keyword(Keyword::Enum)
            || (self.check_punct(Punct::At)
                && self.peek_at(1) == Token::Keyword(Keyword::Interface))
        {
            // Re-parse with the modifiers we already consumed folded in.
            let mut decl = self.parse_type_decl()?;
            decl.modifiers = modifiers;
            return Ok(Member::Type(decl));
        }

        // Generic method type parameters.
        self.skip_type_params();
        self.skip_annotations();

        // Constructor? `Name (` where Name == enclosing class.
        if let Token::Ident(word) = self.peek() {
            if word == class_name && self.peek_at(1) == Token::Punct(Punct::LParen) {
                let name = self.expect_ident()?;
                return self.parse_method_rest(modifiers, None, name, true, start);
            }
        }

        let ty = self.parse_type()?;
        self.skip_annotations();
        let name = self.expect_ident()?;

        if self.check_punct(Punct::LParen) {
            return self.parse_method_rest(modifiers, Some(ty), name, false, start);
        }

        // Field declaration.
        let declarators = self.parse_declarators(name)?;
        self.expect_punct(Punct::Semi)?;
        let span = start.merge(self.span());
        Ok(Member::Field(FieldDecl {
            modifiers,
            ty,
            declarators,
            span,
        }))
    }

    fn parse_method_rest(
        &mut self,
        modifiers: Modifiers,
        return_type: Option<Type>,
        name: Name,
        is_constructor: bool,
        start: Span,
    ) -> PResult<Member> {
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.check_punct(Punct::RParen) {
            loop {
                self.skip_annotations();
                // `final` on params.
                while self.eat_keyword(Keyword::Final) {
                    self.skip_annotations();
                }
                let ty = self.parse_type()?;
                self.skip_annotations();
                let varargs = self.eat_punct(Punct::Ellipsis);
                let pname = self.expect_ident()?;
                let mut ty = ty;
                // `int x[]` post-name dims.
                while self.check_punct(Punct::LBracket)
                    && self.peek_at(1) == Token::Punct(Punct::RBracket)
                {
                    self.bump();
                    self.bump();
                    ty = Type::Array(Box::new(ty));
                }
                params.push(Param {
                    ty,
                    name: pname,
                    varargs,
                });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect_punct(Punct::RParen)?;

        // `int m()[]` — archaic; skip.
        while self.check_punct(Punct::LBracket) && self.peek_at(1) == Token::Punct(Punct::RBracket)
        {
            self.bump();
            self.bump();
        }

        let mut throws = Vec::new();
        if self.eat_keyword(Keyword::Throws) {
            throws.push(self.parse_type()?);
            while self.eat_punct(Punct::Comma) {
                throws.push(self.parse_type()?);
            }
        }

        // `default` clause of annotation members.
        if self.eat_keyword(Keyword::Default) {
            while !self.check_punct(Punct::Semi) && !self.at_eof() {
                self.bump();
            }
        }

        let body = if self.eat_punct(Punct::Semi) {
            None
        } else {
            Some(self.parse_block_recovering()?)
        };
        let span = start.merge(self.span());
        Ok(Member::Method(MethodDecl {
            modifiers,
            return_type,
            name,
            is_constructor,
            params,
            throws,
            body,
            span,
        }))
    }

    /// Parses a method body; if a statement inside fails to parse the
    /// rest of the body is skipped (balanced) and a diagnostic recorded,
    /// keeping the statements parsed so far.
    fn parse_block_recovering(&mut self) -> PResult<Block> {
        let open_pos = self.pos;
        match self.parse_block() {
            Ok(b) => Ok(b),
            Err(err) => {
                self.diagnostics.push(ParseDiagnostic {
                    message: err.message().to_owned(),
                    span: err.span(),
                });
                self.rewind(open_pos);
                if self.check_punct(Punct::LBrace) {
                    self.skip_balanced(Punct::LBrace, Punct::RBrace);
                }
                Ok(Block::default())
            }
        }
    }

    fn parse_modifiers(&mut self) -> Modifiers {
        let mut m = Modifiers::default();
        loop {
            self.skip_annotations();
            match self.peek() {
                Token::Keyword(Keyword::Public) => {
                    m.visibility = Visibility::Public;
                    self.bump();
                }
                Token::Keyword(Keyword::Protected) => {
                    m.visibility = Visibility::Protected;
                    self.bump();
                }
                Token::Keyword(Keyword::Private) => {
                    m.visibility = Visibility::Private;
                    self.bump();
                }
                Token::Keyword(Keyword::Static) => {
                    m.is_static = true;
                    self.bump();
                }
                Token::Keyword(Keyword::Final) => {
                    m.is_final = true;
                    self.bump();
                }
                Token::Keyword(Keyword::Abstract) => {
                    m.is_abstract = true;
                    self.bump();
                }
                Token::Keyword(
                    Keyword::Native
                    | Keyword::Synchronized
                    | Keyword::Transient
                    | Keyword::Volatile
                    | Keyword::Strictfp
                    | Keyword::Default,
                ) => {
                    // `synchronized` as a modifier only when followed by
                    // something other than `(`.
                    if self.check_keyword(Keyword::Synchronized)
                        && self.peek_at(1) == Token::Punct(Punct::LParen)
                    {
                        return m;
                    }
                    self.bump();
                }
                Token::Ident(w) if w == "sealed" || w == "non" => {
                    // `sealed` / `non-sealed` (the latter lexes as
                    // `non - sealed`); consume conservatively.
                    if w == "non" {
                        if self.peek_at(1) == Token::Punct(Punct::Minus)
                            && matches!(self.peek_at(2), Token::Ident(s) if s == "sealed")
                        {
                            self.bump();
                            self.bump();
                            self.bump();
                        } else {
                            return m;
                        }
                    } else {
                        self.bump();
                    }
                }
                _ => return m,
            }
        }
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    /// Parses a type reference.
    fn parse_type(&mut self) -> PResult<Type> {
        // Types recurse through type arguments (`A<B<C<...>>>`) and
        // wildcard bounds, so they run under the nesting guard too.
        self.nested(|p| p.parse_type_inner())
    }

    fn parse_type_inner(&mut self) -> PResult<Type> {
        self.skip_annotations();
        let base = match self.peek() {
            Token::Keyword(kw) => {
                let prim = match kw {
                    Keyword::Boolean => PrimitiveType::Boolean,
                    Keyword::Byte => PrimitiveType::Byte,
                    Keyword::Short => PrimitiveType::Short,
                    Keyword::Int => PrimitiveType::Int,
                    Keyword::Long => PrimitiveType::Long,
                    Keyword::Char => PrimitiveType::Char,
                    Keyword::Float => PrimitiveType::Float,
                    Keyword::Double => PrimitiveType::Double,
                    Keyword::Void => PrimitiveType::Void,
                    _ => return Err(self.error(format!("expected type, found `{kw}`"))),
                };
                self.bump();
                Type::Primitive(prim)
            }
            Token::Punct(Punct::Question) => {
                self.bump();
                if self.eat_keyword(Keyword::Extends) || self.eat_keyword(Keyword::Super) {
                    let _ = self.parse_type()?;
                }
                Type::Wildcard
            }
            Token::Ident(first) => {
                self.bump();
                // Simple (un-dotted) names — the overwhelmingly common
                // case — intern the token slice directly; the dotted
                // path is composed in the shared scratch buffer only on
                // a `.` segment. `parse_type_args` can recurse back
                // into `parse_type`, but recursive users of `name_buf`
                // append after our suffix and truncate back, so the
                // `start..` slice stays intact across the calls.
                let mut start: Option<usize> = None;
                let mut args = self.parse_type_args()?;
                while self.check_punct(Punct::Dot) && matches!(self.peek_at(1), Token::Ident(_)) {
                    self.bump();
                    let Token::Ident(seg) = self.bump() else {
                        // Checked by the loop condition; reported as a
                        // typed error instead of a panic so one bad
                        // file cannot abort a mining run.
                        return Err(ParseError::with_kind(
                            ParseErrorKind::Internal,
                            "expected identifier after `.` in type name",
                            self.span(),
                        ));
                    };
                    let s = *start.get_or_insert_with(|| {
                        let s = self.name_buf.len();
                        self.name_buf.push_str(first);
                        s
                    });
                    debug_assert!(self.name_buf.len() >= s);
                    self.name_buf.push('.');
                    self.name_buf.push_str(seg);
                    args = self.parse_type_args()?;
                }
                match start {
                    None if first == "var" => Type::Unknown,
                    None => Type::Named {
                        name: intern(first),
                        args,
                    },
                    Some(s) => {
                        let name = intern(&self.name_buf[s..]);
                        self.name_buf.truncate(s);
                        Type::Named { name, args }
                    }
                }
            }
            other => return Err(self.error(format!("expected type, found `{other}`"))),
        };

        let mut ty = base;
        loop {
            self.skip_annotations();
            if self.check_punct(Punct::LBracket) && self.peek_at(1) == Token::Punct(Punct::RBracket)
            {
                self.bump();
                self.bump();
                ty = Type::Array(Box::new(ty));
            } else {
                break;
            }
        }
        Ok(ty)
    }

    /// Parses `<T, ...>` type arguments if present; returns the parsed
    /// argument list (empty for a diamond or absent arguments).
    fn parse_type_args(&mut self) -> PResult<Vec<Type>> {
        if !self.check_punct(Punct::Lt) {
            return Ok(Vec::new());
        }
        let save = self.pos;
        self.bump();
        // Diamond `<>`.
        if self.eat_punct(Punct::Gt) {
            return Ok(Vec::new());
        }
        let mut args = Vec::new();
        loop {
            match self.parse_type() {
                Ok(t) => args.push(t),
                Err(_) => {
                    self.rewind(save);
                    return Ok(Vec::new());
                }
            }
            if self.eat_punct(Punct::Comma) {
                continue;
            }
            if self.eat_punct(Punct::Gt) {
                return Ok(args);
            }
            // Not a generic argument list after all (e.g. `a < b`).
            self.rewind(save);
            return Ok(Vec::new());
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    /// Parses a `{ ... }` block.
    fn parse_block(&mut self) -> PResult<Block> {
        self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.check_punct(Punct::RBrace) {
            if self.at_eof() {
                return Err(self.error("unterminated block"));
            }
            let stmt = self.parse_stmt()?;
            stmts.push(self.alloc_stmt(stmt));
        }
        self.bump(); // `}`
        Ok(Block { stmts })
    }

    /// Parses a single statement, returning it by value; the caller
    /// allocates it into the arena where an id is needed.
    fn parse_stmt(&mut self) -> PResult<Stmt> {
        self.nested(|p| p.parse_stmt_inner())
    }

    /// Parses a statement and allocates it, for the common child case.
    fn parse_stmt_id(&mut self) -> PResult<StmtId> {
        let stmt = self.parse_stmt()?;
        Ok(self.alloc_stmt(stmt))
    }

    /// Parses an expression and allocates it.
    fn parse_expr_id(&mut self) -> PResult<ExprId> {
        let expr = self.parse_expr()?;
        Ok(self.alloc_expr(expr))
    }

    fn parse_stmt_inner(&mut self) -> PResult<Stmt> {
        self.skip_annotations();
        match self.peek() {
            Token::Punct(Punct::LBrace) => Ok(Stmt::Block(self.parse_block()?)),
            Token::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Token::Keyword(Keyword::If) => self.parse_if(),
            Token::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr_id()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.parse_stmt_id()?;
                Ok(Stmt::While { cond, body })
            }
            Token::Keyword(Keyword::Do) => {
                self.bump();
                let body = self.parse_stmt_id()?;
                self.expect_keyword(Keyword::While)?;
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr_id()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            Token::Keyword(Keyword::For) => self.parse_for(),
            Token::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.check_punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr_id()?)
                };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Return(value))
            }
            Token::Keyword(Keyword::Throw) => {
                self.bump();
                let value = self.parse_expr_id()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Throw(value))
            }
            Token::Keyword(Keyword::Try) => self.parse_try(),
            Token::Keyword(Keyword::Switch) => self.parse_switch(),
            Token::Keyword(Keyword::Synchronized) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let monitor = self.parse_expr_id()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.parse_block()?;
                Ok(Stmt::Synchronized { monitor, body })
            }
            Token::Keyword(Keyword::Break) => {
                self.bump();
                if let Token::Ident(_) = self.peek() {
                    self.bump(); // label
                }
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Break)
            }
            Token::Keyword(Keyword::Continue) => {
                self.bump();
                if let Token::Ident(_) = self.peek() {
                    self.bump(); // label
                }
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Continue)
            }
            Token::Keyword(Keyword::Assert) => {
                self.bump();
                let value = self.parse_expr_id()?;
                if self.eat_punct(Punct::Colon) {
                    let _ = self.parse_expr()?;
                }
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Assert(value))
            }
            Token::Keyword(Keyword::Class | Keyword::Interface | Keyword::Enum) => {
                Ok(Stmt::LocalType(self.parse_type_decl()?))
            }
            Token::Keyword(Keyword::Final | Keyword::Static | Keyword::Abstract) => {
                // Could be a local class or a final local variable.
                let save = self.pos;
                self.parse_modifiers();
                if self.check_keyword(Keyword::Class)
                    || self.check_keyword(Keyword::Interface)
                    || self.check_keyword(Keyword::Enum)
                {
                    self.rewind(save);
                    return Ok(Stmt::LocalType(self.parse_type_decl()?));
                }
                self.rewind(save);
                match self.try_parse_local_var()? {
                    Some(stmt) => Ok(stmt),
                    None => Err(self.error("expected declaration after modifiers")),
                }
            }
            Token::Ident(label)
                if self.peek_at(1) == Token::Punct(Punct::Colon)
                    && self.peek_at(2) != Token::Punct(Punct::Colon) =>
            {
                // Labeled statement — drop the label.
                let _ = label;
                self.bump();
                self.bump();
                self.parse_stmt()
            }
            _ => {
                // Local variable declaration or expression statement.
                if let Some(stmt) = self.try_parse_local_var()? {
                    return Ok(stmt);
                }
                let expr = self.parse_expr_id()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Expr(expr))
            }
        }
    }

    fn parse_if(&mut self) -> PResult<Stmt> {
        self.expect_keyword(Keyword::If)?;
        self.expect_punct(Punct::LParen)?;
        let cond = self.parse_expr_id()?;
        self.expect_punct(Punct::RParen)?;
        let then = self.parse_stmt_id()?;
        let alt = if self.eat_keyword(Keyword::Else) {
            Some(self.parse_stmt_id()?)
        } else {
            None
        };
        Ok(Stmt::If { cond, then, alt })
    }

    fn parse_for(&mut self) -> PResult<Stmt> {
        self.expect_keyword(Keyword::For)?;
        self.expect_punct(Punct::LParen)?;

        // Enhanced for: `Type name : expr`.
        let save = self.pos;
        match self.try_parse_foreach_header() {
            Ok(inner) => {
                let (ty, name, iterable) = inner?;
                let iterable = self.alloc_expr(iterable);
                let body = self.parse_stmt_id()?;
                return Ok(Stmt::ForEach {
                    ty,
                    name,
                    iterable,
                    body,
                });
            }
            Err(_) => {
                self.rewind(save);
            }
        }

        let mut init = Vec::new();
        if !self.check_punct(Punct::Semi) {
            if let Some(decl) = self.try_parse_local_var_no_semi()? {
                init.push(self.alloc_stmt(decl));
            } else {
                let first = self.parse_expr_id()?;
                init.push(self.alloc_stmt(Stmt::Expr(first)));
                while self.eat_punct(Punct::Comma) {
                    let next = self.parse_expr_id()?;
                    init.push(self.alloc_stmt(Stmt::Expr(next)));
                }
            }
        }
        self.expect_punct(Punct::Semi)?;
        let cond = if self.check_punct(Punct::Semi) {
            None
        } else {
            Some(self.parse_expr_id()?)
        };
        self.expect_punct(Punct::Semi)?;
        let mut update = Vec::new();
        if !self.check_punct(Punct::RParen) {
            update.push(self.parse_expr_id()?);
            while self.eat_punct(Punct::Comma) {
                update.push(self.parse_expr_id()?);
            }
        }
        self.expect_punct(Punct::RParen)?;
        let body = self.parse_stmt_id()?;
        Ok(Stmt::For {
            init,
            cond,
            update,
            body,
        })
    }

    /// Attempts `Type name :` and, on success, returns the pieces with
    /// the iterable parsed and `)` consumed.
    #[allow(clippy::type_complexity)]
    fn try_parse_foreach_header(&mut self) -> PResult<PResult<(Type, Name, Expr)>> {
        let save = self.pos;
        while self.eat_keyword(Keyword::Final) {}
        self.skip_annotations();
        let Ok(ty) = self.parse_type() else {
            self.rewind(save);
            return Err(self.error("not a foreach"));
        };
        let Ok(name) = self.expect_ident() else {
            self.rewind(save);
            return Err(self.error("not a foreach"));
        };
        if !self.eat_punct(Punct::Colon) {
            self.rewind(save);
            return Err(self.error("not a foreach"));
        }
        let iterable = match self.parse_expr() {
            Ok(e) => e,
            Err(e) => return Ok(Err(e)),
        };
        if let Err(e) = self.expect_punct(Punct::RParen) {
            return Ok(Err(e));
        }
        Ok(Ok((ty, name, iterable)))
    }

    fn parse_try(&mut self) -> PResult<Stmt> {
        self.expect_keyword(Keyword::Try)?;
        let mut resources = Vec::new();
        if self.eat_punct(Punct::LParen) {
            loop {
                if self.check_punct(Punct::RParen) {
                    break;
                }
                if let Some(decl) = self.try_parse_local_var_no_semi()? {
                    resources.push(self.alloc_stmt(decl));
                } else {
                    let expr = self.parse_expr_id()?;
                    resources.push(self.alloc_stmt(Stmt::Expr(expr)));
                }
                if !self.eat_punct(Punct::Semi) {
                    break;
                }
            }
            self.expect_punct(Punct::RParen)?;
        }
        let block = self.parse_block()?;
        let mut catches = Vec::new();
        while self.eat_keyword(Keyword::Catch) {
            self.expect_punct(Punct::LParen)?;
            while self.eat_keyword(Keyword::Final) {}
            self.skip_annotations();
            let mut types = vec![self.parse_type()?];
            while self.eat_punct(Punct::Pipe) {
                types.push(self.parse_type()?);
            }
            let name = self.expect_ident()?;
            self.expect_punct(Punct::RParen)?;
            let body = self.parse_block()?;
            catches.push(CatchClause { types, name, body });
        }
        let finally = if self.eat_keyword(Keyword::Finally) {
            Some(self.parse_block()?)
        } else {
            None
        };
        Ok(Stmt::Try {
            resources,
            block,
            catches,
            finally,
        })
    }

    fn parse_switch(&mut self) -> PResult<Stmt> {
        self.expect_keyword(Keyword::Switch)?;
        self.expect_punct(Punct::LParen)?;
        let scrutinee = self.parse_expr_id()?;
        self.expect_punct(Punct::RParen)?;
        self.expect_punct(Punct::LBrace)?;
        let mut cases: Vec<SwitchCase> = Vec::new();
        let mut current: Option<SwitchCase> = None;
        loop {
            if self.eat_punct(Punct::RBrace) {
                if let Some(c) = current.take() {
                    cases.push(c);
                }
                return Ok(Stmt::Switch { scrutinee, cases });
            }
            if self.at_eof() {
                return Err(self.error("unterminated switch"));
            }
            if self.check_keyword(Keyword::Case) {
                self.bump();
                let mut labels = vec![self.parse_expr_id()?];
                while self.eat_punct(Punct::Comma) {
                    labels.push(self.parse_expr_id()?);
                }
                if let Some(c) = current.take() {
                    cases.push(c);
                }
                // Arrow switch arms `case X -> stmt`.
                if self.eat_punct(Punct::Arrow) {
                    let body = vec![self.parse_stmt_id()?];
                    cases.push(SwitchCase { labels, body });
                    continue;
                }
                self.expect_punct(Punct::Colon)?;
                current = Some(SwitchCase {
                    labels,
                    body: Vec::new(),
                });
                continue;
            }
            if self.check_keyword(Keyword::Default) {
                self.bump();
                if let Some(c) = current.take() {
                    cases.push(c);
                }
                if self.eat_punct(Punct::Arrow) {
                    let body = vec![self.parse_stmt_id()?];
                    cases.push(SwitchCase {
                        labels: Vec::new(),
                        body,
                    });
                    continue;
                }
                self.expect_punct(Punct::Colon)?;
                current = Some(SwitchCase {
                    labels: Vec::new(),
                    body: Vec::new(),
                });
                continue;
            }
            let stmt = self.parse_stmt_id()?;
            match current.as_mut() {
                Some(c) => c.body.push(stmt),
                None => {
                    // Statement before any case label — malformed, keep it
                    // in an anonymous arm.
                    current = Some(SwitchCase {
                        labels: Vec::new(),
                        body: vec![stmt],
                    });
                }
            }
        }
    }

    /// Attempts to parse a local variable declaration statement
    /// (including the trailing `;`). Returns `Ok(None)` and restores the
    /// cursor when the lookahead is not a declaration.
    fn try_parse_local_var(&mut self) -> PResult<Option<Stmt>> {
        let save = self.pos;
        match self.try_parse_local_var_no_semi()? {
            Some(stmt) if self.eat_punct(Punct::Semi) => Ok(Some(stmt)),
            _ => {
                self.rewind(save);
                Ok(None)
            }
        }
    }

    /// With the cursor on an identifier, decides from raw tokens
    /// whether the stream can still begin `Type name ...`. Scans the
    /// dotted-name chain and answers `false` for shapes like
    /// `recv.method(` or `x = ...` — the common expression statements —
    /// so [`Parser::try_parse_local_var_no_semi`] can bail before
    /// speculatively building (and rewinding) a type. Returns `true`
    /// for anything involving generics or brackets; the real type
    /// parser stays the arbiter there.
    fn ident_decl_lookahead(&self) -> bool {
        let mut k = 1;
        loop {
            match self.peek_at(k) {
                Token::Punct(Punct::Dot) => {
                    if matches!(self.peek_at(k + 1), Token::Ident(_)) {
                        k += 2;
                    } else {
                        return false;
                    }
                }
                Token::Ident(_) | Token::Punct(Punct::Lt | Punct::LBracket) => return true,
                _ => return false,
            }
        }
    }

    fn try_parse_local_var_no_semi(&mut self) -> PResult<Option<Stmt>> {
        if matches!(self.peek(), Token::Ident(_)) && !self.ident_decl_lookahead() {
            return Ok(None);
        }
        let save = self.pos;
        while self.eat_keyword(Keyword::Final) {
            self.skip_annotations();
        }
        self.skip_annotations();
        let Ok(ty) = self.parse_type() else {
            self.rewind(save);
            return Ok(None);
        };
        if matches!(ty, Type::Primitive(PrimitiveType::Void)) {
            self.rewind(save);
            return Ok(None);
        }
        let Token::Ident(_) = self.peek() else {
            self.rewind(save);
            return Ok(None);
        };
        // Ensure this looks like a declarator and not e.g. `a b` garbage:
        // after the name must come `=`, `,`, `;`, `[`, or `:` (foreach
        // handled elsewhere).
        match self.peek_at(1) {
            Token::Punct(Punct::Assign | Punct::Comma | Punct::Semi | Punct::LBracket) => {}
            _ => {
                self.rewind(save);
                return Ok(None);
            }
        }
        let name = self.expect_ident()?;
        let declarators = match self.parse_declarators(name) {
            Ok(d) => d,
            Err(_) => {
                self.rewind(save);
                return Ok(None);
            }
        };
        Ok(Some(Stmt::LocalVar { ty, declarators }))
    }

    fn parse_declarators(&mut self, first_name: Name) -> PResult<Vec<Declarator>> {
        let mut declarators = Vec::new();
        let mut name = first_name;
        loop {
            let mut extra_dims = 0;
            while self.check_punct(Punct::LBracket)
                && self.peek_at(1) == Token::Punct(Punct::RBracket)
            {
                self.bump();
                self.bump();
                extra_dims += 1;
            }
            let init = if self.eat_punct(Punct::Assign) {
                if self.check_punct(Punct::LBrace) {
                    let elems = self.parse_array_init()?;
                    Some(self.alloc_expr(Expr::ArrayInit(elems)))
                } else {
                    Some(self.parse_expr_id()?)
                }
            } else {
                None
            };
            declarators.push(Declarator {
                name,
                extra_dims,
                init,
            });
            if !self.eat_punct(Punct::Comma) {
                return Ok(declarators);
            }
            name = self.expect_ident()?;
        }
    }

    fn parse_array_init(&mut self) -> PResult<Vec<ExprId>> {
        // `{{{{...}}}}` nests without passing through `parse_expr`.
        self.nested(|p| p.parse_array_init_inner())
    }

    fn parse_array_init_inner(&mut self) -> PResult<Vec<ExprId>> {
        self.expect_punct(Punct::LBrace)?;
        let mut elems = Vec::new();
        loop {
            if self.eat_punct(Punct::RBrace) {
                return Ok(elems);
            }
            if self.check_punct(Punct::LBrace) {
                let inner = self.parse_array_init()?;
                elems.push(self.alloc_expr(Expr::ArrayInit(inner)));
            } else {
                elems.push(self.parse_expr_id()?);
            }
            if !self.eat_punct(Punct::Comma) {
                self.expect_punct(Punct::RBrace)?;
                return Ok(elems);
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Parses an expression, returning it by value; the caller
    /// allocates it into the arena where an id is needed.
    fn parse_expr(&mut self) -> PResult<Expr> {
        self.nested(|p| p.parse_assignment())
    }

    fn parse_assignment(&mut self) -> PResult<Expr> {
        let lhs = self.parse_conditional()?;
        let op = match self.peek() {
            Token::Punct(Punct::Assign) => AssignOp::Assign,
            Token::Punct(Punct::PlusAssign) => AssignOp::Add,
            Token::Punct(Punct::MinusAssign) => AssignOp::Sub,
            Token::Punct(Punct::StarAssign) => AssignOp::Mul,
            Token::Punct(Punct::SlashAssign) => AssignOp::Div,
            Token::Punct(Punct::PercentAssign) => AssignOp::Rem,
            Token::Punct(Punct::AmpAssign) => AssignOp::And,
            Token::Punct(Punct::PipeAssign) => AssignOp::Or,
            Token::Punct(Punct::CaretAssign) => AssignOp::Xor,
            Token::Punct(Punct::ShlAssign) => AssignOp::Shl,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = if self.check_punct(Punct::LBrace) {
            Expr::ArrayInit(self.parse_array_init()?)
        } else {
            // `a = b = c = ...` recurses without passing through
            // `parse_expr`; count it against the nesting budget.
            self.nested(|p| p.parse_assignment())?
        };
        let lhs = self.alloc_expr(lhs);
        let rhs = self.alloc_expr(rhs);
        Ok(Expr::Assign { lhs, op, rhs })
    }

    fn parse_conditional(&mut self) -> PResult<Expr> {
        let cond = self.parse_binary(0)?;
        if self.eat_punct(Punct::Question) {
            let then = self.parse_expr()?;
            self.expect_punct(Punct::Colon)?;
            // `a ? b : c ? d : ...` chains recurse directly.
            let alt = self.nested(|p| p.parse_conditional())?;
            let cond = self.alloc_expr(cond);
            let then = self.alloc_expr(then);
            let alt = self.alloc_expr(alt);
            Ok(Expr::Conditional { cond, then, alt })
        } else {
            Ok(cond)
        }
    }

    /// Binary operator precedence, higher binds tighter.
    fn binop_at_cursor(&self) -> Option<(BinOp, u8, usize)> {
        use BinOp::*;
        Some(match self.peek() {
            Token::Punct(Punct::OrOr) => (OrOr, 1, 1),
            Token::Punct(Punct::AndAnd) => (AndAnd, 2, 1),
            Token::Punct(Punct::Pipe) => (BitOr, 3, 1),
            Token::Punct(Punct::Caret) => (BitXor, 4, 1),
            Token::Punct(Punct::Amp) => (BitAnd, 5, 1),
            Token::Punct(Punct::Eq) => (Eq, 6, 1),
            Token::Punct(Punct::NotEq) => (Ne, 6, 1),
            Token::Punct(Punct::Le) => (Le, 7, 1),
            Token::Punct(Punct::Ge) => (Ge, 7, 1),
            Token::Punct(Punct::Lt) => (Lt, 7, 1),
            Token::Punct(Punct::Gt) => {
                if self.gt_adjacent() {
                    // `>>` or `>>>`
                    let third_adjacent = {
                        if self.peek_at(2) == Token::Punct(Punct::Gt) {
                            let b = self.tokens[self.pos + 1].span;
                            let c = self.tokens[self.pos + 2].span;
                            b.end == c.start
                        } else {
                            false
                        }
                    };
                    if third_adjacent {
                        (UShr, 8, 3)
                    } else {
                        (Shr, 8, 2)
                    }
                } else {
                    (Gt, 7, 1)
                }
            }
            Token::Punct(Punct::Shl) => (Shl, 8, 1),
            Token::Punct(Punct::Plus) => (Add, 9, 1),
            Token::Punct(Punct::Minus) => (Sub, 9, 1),
            Token::Punct(Punct::Star) => (Mul, 10, 1),
            Token::Punct(Punct::Slash) => (Div, 10, 1),
            Token::Punct(Punct::Percent) => (Rem, 10, 1),
            _ => return None,
        })
    }

    fn parse_binary(&mut self, min_prec: u8) -> PResult<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            // `instanceof` sits at relational precedence.
            if self.check_keyword(Keyword::Instanceof) && min_prec <= 7 {
                self.bump();
                let ty = self.parse_type()?;
                // Pattern binding `instanceof T x`.
                if let Token::Ident(_) = self.peek() {
                    self.bump();
                }
                let expr = self.alloc_expr(lhs);
                lhs = Expr::InstanceOf { expr, ty };
                continue;
            }
            let Some((op, prec, ntok)) = self.binop_at_cursor() else {
                return Ok(lhs);
            };
            if prec < min_prec {
                return Ok(lhs);
            }
            for _ in 0..ntok {
                self.bump();
            }
            let rhs = self.parse_binary(prec + 1)?;
            let lhs_id = self.alloc_expr(lhs);
            let rhs_id = self.alloc_expr(rhs);
            lhs = Expr::Binary {
                op,
                lhs: lhs_id,
                rhs: rhs_id,
            };
        }
    }

    fn parse_unary(&mut self) -> PResult<Expr> {
        let op = match self.peek() {
            Token::Punct(Punct::Minus) => Some(UnOp::Neg),
            Token::Punct(Punct::Plus) => Some(UnOp::Pos),
            Token::Punct(Punct::Not) => Some(UnOp::Not),
            Token::Punct(Punct::Tilde) => Some(UnOp::BitNot),
            Token::Punct(Punct::Inc) => Some(UnOp::PreInc),
            Token::Punct(Punct::Dec) => Some(UnOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            // `- - - - x` chains recurse without passing through
            // `parse_expr`; count them against the nesting budget.
            let expr = self.nested(|p| p.parse_unary())?;
            // Fold numeric negation into the literal so that constants
            // like `-1` abstract to the integer -1.
            if op == UnOp::Neg {
                if let Expr::Literal(Lit::Int(v)) = expr {
                    return Ok(Expr::Literal(Lit::Int(-v)));
                }
                if let Expr::Literal(Lit::Float(v)) = expr {
                    return Ok(Expr::Literal(Lit::Float(-v)));
                }
            }
            let expr = self.alloc_expr(expr);
            return Ok(Expr::Unary { op, expr });
        }

        // Cast?
        if self.check_punct(Punct::LParen) {
            if let Some(expr) = self.try_parse_cast()? {
                return Ok(expr);
            }
        }
        self.parse_postfix()
    }

    fn try_parse_cast(&mut self) -> PResult<Option<Expr>> {
        let save = self.pos;
        self.bump(); // (
        let Ok(ty) = self.parse_type() else {
            self.rewind(save);
            return Ok(None);
        };
        // `& AdditionalBound` in casts.
        while self.eat_punct(Punct::Amp) {
            if self.parse_type().is_err() {
                self.rewind(save);
                return Ok(None);
            }
        }
        if !self.eat_punct(Punct::RParen) {
            self.rewind(save);
            return Ok(None);
        }
        let is_primitive_or_array = matches!(ty, Type::Primitive(_) | Type::Array(_));
        let castable_follows = match self.peek() {
            Token::Ident(_)
            | Token::IntLit(..)
            | Token::FloatLit(_)
            | Token::CharLit(_)
            | Token::StrLit { .. }
            | Token::BoolLit(_)
            | Token::Null
            | Token::Keyword(Keyword::New | Keyword::This | Keyword::Super)
            | Token::Punct(Punct::LParen | Punct::Not | Punct::Tilde) => true,
            Token::Punct(Punct::Minus | Punct::Plus) => is_primitive_or_array,
            _ => false,
        };
        if !castable_follows {
            self.rewind(save);
            return Ok(None);
        }
        // `(A)(A)(A)...x` cast chains recurse via `parse_unary`.
        let expr = self.nested(|p| p.parse_unary())?;
        let expr = self.alloc_expr(expr);
        Ok(Some(Expr::Cast { ty, expr }))
    }

    fn parse_postfix(&mut self) -> PResult<Expr> {
        let mut expr = self.parse_primary()?;
        loop {
            match self.peek() {
                Token::Punct(Punct::Dot) => {
                    self.bump();
                    match self.peek() {
                        Token::Ident(name) => {
                            self.bump();
                            // Generic method call `obj.<T>m(...)`.
                            if self.check_punct(Punct::LParen) {
                                self.bump();
                                let args = self.parse_args()?;
                                let target = self.alloc_expr(expr);
                                expr = Expr::MethodCall {
                                    target: Some(target),
                                    name: intern(name),
                                    args,
                                };
                            } else if let Expr::Name(dotted) = expr {
                                let start = self.name_buf.len();
                                self.name_buf.push_str(&dotted);
                                self.name_buf.push('.');
                                self.name_buf.push_str(name);
                                expr = Expr::Name(intern(&self.name_buf[start..]));
                                self.name_buf.truncate(start);
                            } else {
                                let target = self.alloc_expr(expr);
                                expr = Expr::FieldAccess {
                                    target,
                                    name: intern(name),
                                };
                            }
                        }
                        Token::Punct(Punct::Lt) => {
                            // explicit type args on a call
                            self.skip_type_params();
                            let name = self.expect_ident()?;
                            self.expect_punct(Punct::LParen)?;
                            let args = self.parse_args()?;
                            let target = self.alloc_expr(expr);
                            expr = Expr::MethodCall {
                                target: Some(target),
                                name,
                                args,
                            };
                        }
                        Token::Keyword(Keyword::Class) => {
                            self.bump();
                            let ty = match &expr {
                                Expr::Name(dotted) => Type::named(dotted.clone()),
                                _ => Type::Unknown,
                            };
                            expr = Expr::ClassLiteral(ty);
                        }
                        Token::Keyword(Keyword::This) => {
                            self.bump();
                            expr = Expr::This;
                        }
                        Token::Keyword(Keyword::New) => {
                            // Qualified class instance creation — rare;
                            // parse the `new` as usual and ignore the
                            // qualifier.
                            self.bump();
                            expr = self.parse_new()?;
                        }
                        Token::Keyword(Keyword::Super) => {
                            self.bump();
                            expr = Expr::Super;
                        }
                        other => {
                            return Err(self.error(format!(
                                "expected member name after `.`, found `{other}`"
                            )));
                        }
                    }
                }
                Token::Punct(Punct::LBracket) => {
                    self.bump();
                    let index = self.parse_expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    let array = self.alloc_expr(expr);
                    let index = self.alloc_expr(index);
                    expr = Expr::ArrayAccess { array, index };
                }
                Token::Punct(Punct::Inc) => {
                    self.bump();
                    let inner = self.alloc_expr(expr);
                    expr = Expr::Unary {
                        op: UnOp::PostInc,
                        expr: inner,
                    };
                }
                Token::Punct(Punct::Dec) => {
                    self.bump();
                    let inner = self.alloc_expr(expr);
                    expr = Expr::Unary {
                        op: UnOp::PostDec,
                        expr: inner,
                    };
                }
                Token::Punct(Punct::ColonColon) => {
                    self.bump();
                    // `T::new` or `T::method`, possibly with type args.
                    self.skip_type_params();
                    if !self.eat_keyword(Keyword::New) {
                        let _ = self.expect_ident()?;
                    }
                    expr = Expr::MethodRef;
                }
                _ => return Ok(expr),
            }
        }
    }

    fn parse_args(&mut self) -> PResult<Vec<ExprId>> {
        // `(` already consumed.
        let mut args = Vec::new();
        if self.eat_punct(Punct::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.parse_expr_id()?);
            if self.eat_punct(Punct::Comma) {
                continue;
            }
            self.expect_punct(Punct::RParen)?;
            return Ok(args);
        }
    }

    fn parse_new(&mut self) -> PResult<Expr> {
        // `new` already consumed.
        let ty = self.parse_type()?;
        // Array creation?
        if self.check_punct(Punct::LBracket) {
            let mut elem_ty = ty;
            let mut dims = Vec::new();
            let mut _empty_dims = 0usize;
            while self.eat_punct(Punct::LBracket) {
                if self.eat_punct(Punct::RBracket) {
                    _empty_dims += 1;
                } else {
                    dims.push(self.parse_expr_id()?);
                    self.expect_punct(Punct::RBracket)?;
                }
            }
            // `parse_type` may already have swallowed `[]` pairs into the
            // type; unwrap one level so `ty` is the element type when an
            // initializer follows.
            let init = if self.check_punct(Punct::LBrace) {
                if let Type::Array(inner) = elem_ty {
                    elem_ty = *inner;
                }
                Some(self.parse_array_init()?)
            } else {
                None
            };
            return Ok(Expr::NewArray {
                ty: elem_ty,
                dims,
                init,
            });
        }
        if self.check_punct(Punct::LBrace) {
            // `new int[] {...}` path where the brackets were parsed as
            // part of the type.
            if let Type::Array(inner) = ty {
                let init = Some(self.parse_array_init()?);
                return Ok(Expr::NewArray {
                    ty: *inner,
                    dims: Vec::new(),
                    init,
                });
            }
        }
        self.expect_punct(Punct::LParen)?;
        let args = self.parse_args()?;
        let anon_body = if self.check_punct(Punct::LBrace) {
            self.skip_balanced(Punct::LBrace, Punct::RBrace);
            true
        } else {
            false
        };
        Ok(Expr::New {
            ty,
            args,
            anon_body,
        })
    }

    /// Detects `( ... ) ->` lambda heads.
    fn lparen_starts_lambda(&self) -> bool {
        debug_assert!(self.check_punct(Punct::LParen));
        let mut depth = 0usize;
        let mut k = 0usize;
        loop {
            match self.peek_at(k) {
                Token::Punct(Punct::LParen) => depth += 1,
                Token::Punct(Punct::RParen) => {
                    depth -= 1;
                    if depth == 0 {
                        return self.peek_at(k + 1) == Token::Punct(Punct::Arrow);
                    }
                }
                Token::Eof => return false,
                _ => {}
            }
            k += 1;
        }
    }

    fn parse_lambda_after_head(&mut self) -> PResult<Expr> {
        // Cursor is at `->`.
        self.expect_punct(Punct::Arrow)?;
        if self.check_punct(Punct::LBrace) {
            self.skip_balanced(Punct::LBrace, Punct::RBrace);
        } else {
            let _ = self.parse_expr()?;
        }
        Ok(Expr::Lambda)
    }

    fn parse_primary(&mut self) -> PResult<Expr> {
        match self.peek() {
            Token::IntLit(v, _) => {
                self.bump();
                Ok(Expr::Literal(Lit::Int(v)))
            }
            Token::FloatLit(v) => {
                self.bump();
                Ok(Expr::Literal(Lit::Float(v)))
            }
            Token::CharLit(c) => {
                self.bump();
                Ok(Expr::Literal(Lit::Char(c)))
            }
            Token::StrLit { raw, escaped } => {
                self.bump();
                Ok(Expr::Literal(Lit::Str(if escaped {
                    intern_owned(Token::cook_str(raw, escaped))
                } else {
                    intern(raw)
                })))
            }
            Token::BoolLit(b) => {
                self.bump();
                Ok(Expr::Literal(Lit::Bool(b)))
            }
            Token::Null => {
                self.bump();
                Ok(Expr::Literal(Lit::Null))
            }
            Token::Keyword(Keyword::This) => {
                self.bump();
                if self.eat_punct(Punct::LParen) {
                    let args = self.parse_args()?;
                    return Ok(Expr::MethodCall {
                        target: None,
                        name: "this".into(),
                        args,
                    });
                }
                Ok(Expr::This)
            }
            Token::Keyword(Keyword::Super) => {
                self.bump();
                if self.eat_punct(Punct::LParen) {
                    let args = self.parse_args()?;
                    return Ok(Expr::MethodCall {
                        target: None,
                        name: "super".into(),
                        args,
                    });
                }
                Ok(Expr::Super)
            }
            Token::Keyword(Keyword::New) => {
                self.bump();
                self.skip_type_params();
                self.parse_new()
            }
            Token::Keyword(
                kw @ (Keyword::Int
                | Keyword::Long
                | Keyword::Short
                | Keyword::Byte
                | Keyword::Char
                | Keyword::Float
                | Keyword::Double
                | Keyword::Boolean
                | Keyword::Void),
            ) => {
                // `int.class`, `int[].class`
                let _ = kw;
                let ty = self.parse_type()?;
                self.expect_punct(Punct::Dot)?;
                self.expect_keyword(Keyword::Class)?;
                Ok(Expr::ClassLiteral(ty))
            }
            Token::Punct(Punct::LParen) => {
                if self.lparen_starts_lambda() {
                    self.skip_balanced(Punct::LParen, Punct::RParen);
                    return self.parse_lambda_after_head();
                }
                self.bump();
                let inner = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(inner)
            }
            Token::Ident(name) => {
                if self.peek_at(1) == Token::Punct(Punct::Arrow) {
                    // `x -> ...`
                    self.bump();
                    return self.parse_lambda_after_head();
                }
                self.bump();
                if self.eat_punct(Punct::LParen) {
                    let args = self.parse_args()?;
                    return Ok(Expr::MethodCall {
                        target: None,
                        name: intern(name),
                        args,
                    });
                }
                Ok(Expr::Name(intern(name)))
            }
            other => Err(self.error(format!("expected expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> CompilationUnit {
        parse_compilation_unit(src).expect("parse failed")
    }

    fn first_method_body(unit: &CompilationUnit) -> &Block {
        unit.types[0]
            .methods()
            .next()
            .expect("no method")
            .body
            .as_ref()
            .expect("no body")
    }

    /// Resolves a declarator's initializer through the unit's arena.
    fn init_expr<'a>(unit: &'a CompilationUnit, d: &Declarator) -> &'a Expr {
        unit.ast.expr(d.init.expect("no initializer"))
    }

    #[test]
    fn parses_package_and_imports() {
        let unit = parse(
            "package com.example.app;\n\
             import javax.crypto.Cipher;\n\
             import static org.junit.Assert.*;\n\
             class A {}",
        );
        assert_eq!(unit.package.as_deref(), Some("com.example.app"));
        assert_eq!(unit.imports.len(), 2);
        assert_eq!(&*unit.imports[0].path, "javax.crypto.Cipher");
        assert!(unit.imports[1].is_static);
        assert!(unit.imports[1].on_demand);
        assert_eq!(&*unit.imports[1].path, "org.junit.Assert");
    }

    #[test]
    fn parses_fields_and_methods() {
        let unit = parse(
            r#"
            public class AESCipher {
                private static final String ALGO = "AES";
                Cipher enc, dec;
                public byte[] encrypt(byte[] data) throws Exception {
                    return enc.doFinal(data);
                }
                AESCipher() {}
            }
            "#,
        );
        let class = &unit.types[0];
        assert_eq!(&*class.name, "AESCipher");
        assert_eq!(class.fields().count(), 2);
        let methods: Vec<_> = class.methods().collect();
        assert_eq!(methods.len(), 2);
        assert!(!methods[0].is_constructor);
        assert!(methods[1].is_constructor);
        assert_eq!(methods[0].throws.len(), 1);
    }

    #[test]
    fn parses_generic_types() {
        let unit = parse("class A { java.util.Map<String, java.util.List<Integer>> m; }");
        let field = unit.types[0].fields().next().unwrap();
        let Type::Named { name, args } = &field.ty else {
            panic!("expected named type")
        };
        assert_eq!(&**name, "java.util.Map");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn parses_method_calls_and_names() {
        let unit = parse(
            r#"
            class A {
                void m() throws Exception {
                    Cipher c = Cipher.getInstance("AES");
                    c.init(Cipher.ENCRYPT_MODE, key);
                }
            }
            "#,
        );
        let body = first_method_body(&unit);
        assert_eq!(body.stmts.len(), 2);
        let Stmt::LocalVar { ty, declarators } = unit.ast.stmt(body.stmts[0]) else {
            panic!("expected local var")
        };
        assert_eq!(ty.display_name(), "Cipher");
        let Expr::MethodCall { target, name, args } = init_expr(&unit, &declarators[0]) else {
            panic!("expected call initializer")
        };
        assert_eq!(&**name, "getInstance");
        assert_eq!(args.len(), 1);
        assert_eq!(
            target.map(|t| unit.ast.expr(t)),
            Some(&Expr::Name("Cipher".into()))
        );
        let Stmt::Expr(call) = unit.ast.stmt(body.stmts[1]) else {
            panic!("expected expr stmt")
        };
        let Expr::MethodCall { name, args, .. } = unit.ast.expr(*call) else {
            panic!("expected call stmt")
        };
        assert_eq!(&**name, "init");
        assert_eq!(
            unit.ast.expr(args[0]),
            &Expr::Name("Cipher.ENCRYPT_MODE".into())
        );
    }

    #[test]
    fn parses_new_and_array_creation() {
        let unit = parse(
            r#"
            class A {
                void m() {
                    IvParameterSpec iv = new IvParameterSpec(new byte[16]);
                    byte[] key = new byte[] { 1, 2, 3 };
                    int[] xs = { 4, 5 };
                }
            }
            "#,
        );
        let body = first_method_body(&unit);
        assert_eq!(body.stmts.len(), 3);
        let Stmt::LocalVar { declarators, .. } = unit.ast.stmt(body.stmts[1]) else {
            panic!()
        };
        let Expr::NewArray {
            init: Some(elems), ..
        } = init_expr(&unit, &declarators[0])
        else {
            panic!("expected array literal")
        };
        assert_eq!(elems.len(), 3);
    }

    #[test]
    fn parses_control_flow() {
        let unit = parse(
            r#"
            class A {
                int m(int x) {
                    if (x > 0) { return 1; } else return -1;
                    while (x < 10) x++;
                    do { x--; } while (x > 0);
                    for (int i = 0; i < 3; i++) { x += i; }
                    for (String s : names) { use(s); }
                    switch (x) { case 1: return 1; default: break; }
                    try (AutoCloseable c = open()) { risky(); }
                    catch (IOException | RuntimeException e) { log(e); }
                    finally { cleanup(); }
                    synchronized (this) { x = 0; }
                    assert x >= 0 : "neg";
                    return x;
                }
            }
            "#,
        );
        let body = first_method_body(&unit);
        assert_eq!(unit.types[0].methods().count(), 1);
        assert!(body.stmts.len() >= 10);
        assert!(unit.diagnostics.is_empty(), "{:?}", unit.diagnostics);
    }

    #[test]
    fn parses_casts_and_conditionals() {
        let unit = parse(
            r#"
            class A {
                void m() {
                    byte[] b = (byte[]) obj;
                    int i = (int) l;
                    String s = (String) o;
                    int v = ok ? 1 : 2;
                    Object x = (foo) - 1;
                }
            }
            "#,
        );
        let body = first_method_body(&unit);
        let Stmt::LocalVar { declarators, .. } = unit.ast.stmt(body.stmts[0]) else {
            panic!()
        };
        assert!(matches!(
            init_expr(&unit, &declarators[0]),
            Expr::Cast { .. }
        ));
        // `(foo) - 1` must parse as subtraction, not a cast of -1.
        let Stmt::LocalVar { declarators, .. } = unit.ast.stmt(body.stmts[4]) else {
            panic!()
        };
        assert!(matches!(
            init_expr(&unit, &declarators[0]),
            Expr::Binary { .. }
        ));
    }

    #[test]
    fn parses_lambdas_and_method_refs_opaquely() {
        let unit = parse(
            r#"
            class A {
                void m() {
                    run(() -> { risky(); });
                    map(x -> x + 1);
                    forEach(System.out::println);
                    Supplier<Foo> s = Foo::new;
                }
            }
            "#,
        );
        assert!(unit.diagnostics.is_empty(), "{:?}", unit.diagnostics);
        let body = first_method_body(&unit);
        assert_eq!(body.stmts.len(), 4);
    }

    #[test]
    fn shift_vs_generics() {
        let unit = parse(
            r#"
            class A {
                void m() {
                    Map<String, List<String>> m = null;
                    int x = a >> 2;
                    int y = b >>> 3;
                    boolean c = p > q;
                }
            }
            "#,
        );
        assert!(unit.diagnostics.is_empty(), "{:?}", unit.diagnostics);
        let body = first_method_body(&unit);
        let Stmt::LocalVar { declarators, .. } = unit.ast.stmt(body.stmts[1]) else {
            panic!()
        };
        assert!(matches!(
            init_expr(&unit, &declarators[0]),
            Expr::Binary { op: BinOp::Shr, .. }
        ));
        let Stmt::LocalVar { declarators, .. } = unit.ast.stmt(body.stmts[2]) else {
            panic!()
        };
        assert!(matches!(
            init_expr(&unit, &declarators[0]),
            Expr::Binary {
                op: BinOp::UShr,
                ..
            }
        ));
    }

    #[test]
    fn recovers_from_broken_member() {
        let unit = parse(
            r#"
            class A {
                void good1() { fine(); }
                void broken( { this is not java }
                void good2() { alsoFine(); }
            }
            "#,
        );
        let names: Vec<_> = unit.types[0].methods().map(|m| m.name.clone()).collect();
        assert!(names.contains(&Name::from("good1")));
        assert!(names.contains(&Name::from("good2")));
        assert!(!unit.diagnostics.is_empty());
    }

    #[test]
    fn parses_enum() {
        let unit = parse(
            r#"
            enum Mode { ECB, CBC("iv"), GCM { int tag() { return 128; } };
                int bits;
                int bits() { return bits; }
            }
            "#,
        );
        let decl = &unit.types[0];
        assert_eq!(decl.kind, TypeKind::Enum);
        assert_eq!(decl.enum_constants, ["ECB", "CBC", "GCM"].map(Name::from));
        assert_eq!(decl.methods().count(), 1);
    }

    #[test]
    fn parses_nested_and_anonymous_classes() {
        let unit = parse(
            r#"
            class Outer {
                class Inner { void x() {} }
                void m() {
                    Runnable r = new Runnable() { public void run() {} };
                }
            }
            "#,
        );
        assert_eq!(unit.all_types().len(), 2);
        let body = unit.types[0]
            .methods()
            .next()
            .unwrap()
            .body
            .as_ref()
            .unwrap();
        let Stmt::LocalVar { declarators, .. } = unit.ast.stmt(body.stmts[0]) else {
            panic!()
        };
        assert!(matches!(
            init_expr(&unit, &declarators[0]),
            Expr::New {
                anon_body: true,
                ..
            }
        ));
    }

    #[test]
    fn parses_annotations_everywhere() {
        let unit = parse(
            r#"
            @SuppressWarnings("all")
            public class A {
                @Deprecated int f = 0;
                @Override public void m(@NonNull String s) {}
            }
            "#,
        );
        assert!(unit.diagnostics.is_empty(), "{:?}", unit.diagnostics);
        assert_eq!(unit.types[0].fields().count(), 1);
    }

    #[test]
    fn string_plus_concatenation() {
        let unit =
            parse(r#"class A { void m() { d = MessageDigest.getInstance("SHA" + "-256"); } }"#);
        assert!(unit.diagnostics.is_empty());
        let body = first_method_body(&unit);
        assert_eq!(body.stmts.len(), 1);
    }

    #[test]
    fn negative_literal_folds() {
        let unit = parse("class A { int x = -42; }");
        let f = unit.types[0].fields().next().unwrap();
        assert_eq!(
            init_expr(&unit, &f.declarators[0]),
            &Expr::Literal(Lit::Int(-42))
        );
    }

    #[test]
    fn labeled_statements() {
        let unit = parse("class A { void m() { outer: for (;;) { break; } } }");
        assert!(unit.diagnostics.is_empty(), "{:?}", unit.diagnostics);
    }

    #[test]
    fn interface_members() {
        let unit = parse(
            r#"
            interface I {
                int CONST = 5;
                void abstractMethod();
                default int d() { return CONST; }
            }
            "#,
        );
        let decl = &unit.types[0];
        assert_eq!(decl.kind, TypeKind::Interface);
        assert_eq!(decl.methods().count(), 2);
        assert!(decl.methods().next().unwrap().body.is_none());
    }
}
