//! A hand-written lexer for the Java subset.
//!
//! The lexer strips comments and whitespace, resolves string/char
//! escapes, and handles the numeric literal zoo (hex, octal, binary,
//! underscores, suffixes). `>>` and `>>>` are deliberately left as
//! sequences of `>` tokens so that generic type arguments nest without
//! lexer feedback; the parser reassembles shift operators.

use crate::error::{ParseError, ParseErrorKind, Span};
use crate::limits::Limits;
use crate::token::{Keyword, Punct, SpannedToken, Token};

/// Byte-class table: `true` for bytes that can *continue* an
/// identifier (ASCII alphanumerics, `_`, `$`, and all non-ASCII lead
/// and continuation bytes — identifiers are matched bytewise, so any
/// `>= 0x80` byte keeps the word going). One table load replaces the
/// four-way comparison chain in the hottest scan loop.
const WORD_CONT: [bool; 256] = {
    let mut t = [false; 256];
    let mut i = 0;
    while i < 256 {
        let b = i as u8;
        t[i] = b.is_ascii_alphanumeric() || b == b'_' || b == b'$' || b >= 0x80;
        i += 1;
    }
    t
};

/// Byte-class table for bytes that can *start* an identifier: as
/// [`WORD_CONT`] minus the ASCII digits.
const WORD_START: [bool; 256] = {
    let mut t = WORD_CONT;
    let mut b = b'0';
    while b <= b'9' {
        t[b as usize] = false;
        b += 1;
    }
    t
};

/// Streaming lexer over a source string.
#[derive(Debug)]
pub struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    limits: Limits,
}

impl<'s> Lexer<'s> {
    /// Creates a lexer over `source` with [`Limits::DEFAULT`] budgets.
    pub fn new(source: &'s str) -> Self {
        Lexer::with_limits(source, Limits::DEFAULT)
    }

    /// Creates a lexer over `source` with explicit resource budgets.
    pub fn with_limits(source: &'s str, limits: Limits) -> Self {
        Lexer {
            src: source,
            bytes: source.as_bytes(),
            pos: 0,
            line: 1,
            limits,
        }
    }

    /// Lexes the entire input, appending a trailing [`Token::Eof`].
    ///
    /// # Errors
    ///
    /// Returns an error for unterminated strings/comments/chars,
    /// malformed numeric literals, and inputs that exceed the
    /// configured [`Limits`].
    pub fn tokenize(mut self) -> Result<Vec<SpannedToken<'s>>, ParseError> {
        if self.src.len() > self.limits.max_source_bytes {
            return Err(ParseError::with_kind(
                ParseErrorKind::SourceTooLarge,
                format!(
                    "source is {} bytes, budget is {}",
                    self.src.len(),
                    self.limits.max_source_bytes
                ),
                Span::new(0, self.src.len(), 1),
            ));
        }
        // Java source averages well above five bytes per token, so this
        // over-reserves slightly and the token vector never regrows.
        let mut out = Vec::with_capacity(self.src.len() / 5 + 8);
        loop {
            let tok = self.next_token()?;
            if tok.span.end - tok.span.start > self.limits.max_token_bytes {
                return Err(ParseError::with_kind(
                    ParseErrorKind::TokenTooLong,
                    format!(
                        "token is {} bytes, budget is {}",
                        tok.span.end - tok.span.start,
                        self.limits.max_token_bytes
                    ),
                    tok.span,
                ));
            }
            if out.len() >= self.limits.max_tokens {
                return Err(ParseError::with_kind(
                    ParseErrorKind::TokenBudgetExceeded,
                    format!("more than {} tokens", self.limits.max_tokens),
                    tok.span,
                ));
            }
            let done = tok.token == Token::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn span_from(&self, start: usize, line: u32) -> Span {
        Span::new(start, self.pos, line)
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    // Tight whitespace scan: no per-byte function call,
                    // newlines counted inline.
                    let mut pos = self.pos;
                    let mut line = self.line;
                    while let Some(&b) = self.bytes.get(pos) {
                        if !b.is_ascii_whitespace() {
                            break;
                        }
                        line += u32::from(b == b'\n');
                        pos += 1;
                    }
                    self.pos = pos;
                    self.line = line;
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    // Line comments cannot contain a newline: plain scan.
                    let mut pos = self.pos;
                    while let Some(&b) = self.bytes.get(pos) {
                        if b == b'\n' {
                            break;
                        }
                        pos += 1;
                    }
                    self.pos = pos;
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    let line = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek_at(1) == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(ParseError::with_kind(
                                    ParseErrorKind::UnterminatedComment,
                                    "unterminated block comment",
                                    self.span_from(start, line),
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<SpannedToken<'s>, ParseError> {
        self.skip_trivia()?;
        let start = self.pos;
        let line = self.line;
        let Some(b) = self.peek() else {
            return Ok(SpannedToken {
                token: Token::Eof,
                span: self.span_from(start, line),
            });
        };

        let token = if WORD_START[b as usize] {
            self.lex_word()
        } else if b.is_ascii_digit()
            || (b == b'.' && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()))
        {
            self.lex_number()?
        } else if b == b'"' {
            self.lex_string()?
        } else if b == b'\'' {
            self.lex_char()?
        } else {
            self.lex_punct()?
        };
        Ok(SpannedToken {
            token,
            span: self.span_from(start, line),
        })
    }

    fn lex_word(&mut self) -> Token<'s> {
        let start = self.pos;
        // Tight scan: word characters never include `\n`, so the
        // line-tracking `bump` is unnecessary per byte.
        let mut pos = self.pos;
        while let Some(&b) = self.bytes.get(pos) {
            if WORD_CONT[b as usize] {
                pos += 1;
            } else {
                break;
            }
        }
        self.pos = pos;
        let word = &self.src[start..self.pos];
        // Keywords and word-literals are all lowercase ASCII; skip the
        // table probe for everything else (most identifiers).
        if !word.as_bytes().first().is_some_and(u8::is_ascii_lowercase) {
            return Token::Ident(word);
        }
        match word {
            "true" => Token::BoolLit(true),
            "false" => Token::BoolLit(false),
            "null" => Token::Null,
            _ => match Keyword::lookup(word) {
                Some(kw) => Token::Keyword(kw),
                None => Token::Ident(word),
            },
        }
    }

    fn lex_number(&mut self) -> Result<Token<'s>, ParseError> {
        let start = self.pos;
        let line = self.line;

        if self.peek() == Some(b'0') && matches!(self.peek_at(1), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while self
                .peek()
                .is_some_and(|b| b.is_ascii_hexdigit() || b == b'_')
            {
                self.bump();
            }
            let text = strip_underscores(&self.src[digits_start..self.pos]);
            let is_long = self.consume_long_suffix();
            // Wrap like javac does for e.g. 0xFFFFFFFF.
            let value = u64::from_str_radix(&text, 16).map_err(|_| {
                ParseError::with_kind(
                    ParseErrorKind::InvalidLiteral,
                    "invalid hex literal",
                    self.span_from(start, line),
                )
            })? as i64;
            return Ok(Token::IntLit(value, is_long));
        }
        if self.peek() == Some(b'0') && matches!(self.peek_at(1), Some(b'b') | Some(b'B')) {
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while self
                .peek()
                .is_some_and(|b| b == b'0' || b == b'1' || b == b'_')
            {
                self.bump();
            }
            let text = strip_underscores(&self.src[digits_start..self.pos]);
            let is_long = self.consume_long_suffix();
            let value = u64::from_str_radix(&text, 2).map_err(|_| {
                ParseError::with_kind(
                    ParseErrorKind::InvalidLiteral,
                    "invalid binary literal",
                    self.span_from(start, line),
                )
            })? as i64;
            return Ok(Token::IntLit(value, is_long));
        }

        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' => {
                    self.bump();
                }
                b'.' if !saw_dot
                    && !saw_exp
                    && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) =>
                {
                    saw_dot = true;
                    self.bump();
                }
                b'.' if !saw_dot && !saw_exp && self.pos > start => {
                    // `1.` — a trailing dot is valid in Java floats, but a
                    // dot followed by an identifier is member access on a
                    // literal; treat digit-dot-nondigit as end of number.
                    break;
                }
                b'e' | b'E'
                    if !saw_exp
                        && self
                            .peek_at(1)
                            .is_some_and(|c| c.is_ascii_digit() || c == b'+' || c == b'-') =>
                {
                    saw_exp = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = strip_underscores(&self.src[start..self.pos]);

        match self.peek() {
            Some(b'f') | Some(b'F') | Some(b'd') | Some(b'D') => {
                self.bump();
                let value = text.parse::<f64>().map_err(|_| {
                    ParseError::with_kind(
                        ParseErrorKind::InvalidLiteral,
                        "invalid float literal",
                        self.span_from(start, line),
                    )
                })?;
                return Ok(Token::FloatLit(value));
            }
            _ => {}
        }
        if saw_dot || saw_exp {
            let value = text.parse::<f64>().map_err(|_| {
                ParseError::with_kind(
                    ParseErrorKind::InvalidLiteral,
                    "invalid float literal",
                    self.span_from(start, line),
                )
            })?;
            return Ok(Token::FloatLit(value));
        }
        let is_long = self.consume_long_suffix();
        // Octal (leading zero) is parsed as octal, matching Java.
        let value = if text.len() > 1 && text.starts_with('0') {
            i64::from_str_radix(&text[1..], 8).unwrap_or(0)
        } else {
            // Out-of-range decimal literals (e.g. Long.MIN_VALUE's magnitude)
            // saturate rather than failing the whole file.
            text.parse::<i64>().unwrap_or(i64::MAX)
        };
        Ok(Token::IntLit(value, is_long))
    }

    fn consume_long_suffix(&mut self) -> bool {
        if matches!(self.peek(), Some(b'l') | Some(b'L')) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn lex_escape(&mut self, start: usize, line: u32) -> Result<char, ParseError> {
        // The leading backslash has been consumed.
        let Some(b) = self.bump() else {
            return Err(ParseError::with_kind(
                ParseErrorKind::InvalidEscape,
                "unterminated escape sequence",
                self.span_from(start, line),
            ));
        };
        Ok(match b {
            b'n' => '\n',
            b't' => '\t',
            b'r' => '\r',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'0' => '\0',
            b'\'' => '\'',
            b'"' => '"',
            b'\\' => '\\',
            b'u' => {
                // \uXXXX (possibly multiple 'u's per the JLS)
                while self.peek() == Some(b'u') {
                    self.bump();
                }
                let mut value: u32 = 0;
                for _ in 0..4 {
                    let Some(d) = self.bump() else {
                        return Err(ParseError::with_kind(
                            ParseErrorKind::InvalidEscape,
                            "unterminated unicode escape",
                            self.span_from(start, line),
                        ));
                    };
                    let digit = (d as char).to_digit(16).ok_or_else(|| {
                        ParseError::with_kind(
                            ParseErrorKind::InvalidEscape,
                            "invalid unicode escape",
                            self.span_from(start, line),
                        )
                    })?;
                    value = value * 16 + digit;
                }
                char::from_u32(value).unwrap_or('\u{fffd}')
            }
            other => other as char,
        })
    }

    /// The full (possibly multi-byte) character at the cursor. `pos`
    /// is always on a character boundary by construction; if that
    /// invariant is ever violated, report a typed internal error
    /// instead of panicking on the slice.
    fn cur_char(&self, start: usize, line: u32) -> Result<char, ParseError> {
        self.src
            .get(self.pos..)
            .and_then(|rest| rest.chars().next())
            .ok_or_else(|| {
                ParseError::with_kind(
                    ParseErrorKind::Internal,
                    "lexer lost a character boundary",
                    self.span_from(start, line),
                )
            })
    }

    fn lex_string(&mut self) -> Result<Token<'s>, ParseError> {
        let start = self.pos;
        let line = self.line;
        self.bump(); // opening quote
        let content_start = self.pos;
        let mut escaped = false;
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    return Err(ParseError::with_kind(
                        ParseErrorKind::UnterminatedString,
                        "unterminated string literal",
                        self.span_from(start, line),
                    ));
                }
                Some(b'"') => {
                    let raw = &self.src[content_start..self.pos];
                    self.bump();
                    return Ok(Token::StrLit { raw, escaped });
                }
                Some(b'\\') => {
                    escaped = true;
                    self.bump();
                    // Validate (and consume) the escape now so
                    // malformed escapes still fail at lex time; the
                    // resolved character is materialized only if the
                    // literal is ever cooked.
                    self.lex_escape(start, line)?;
                }
                Some(_) => {
                    // Literal content, borrowed — never copied. A
                    // plain byte-advance is safe: newlines cannot hide
                    // inside multi-byte UTF-8 sequences, and `pos`
                    // stays on a boundary because it only stops on the
                    // ASCII bytes matched above.
                    self.pos += 1;
                }
            }
        }
    }

    fn lex_char(&mut self) -> Result<Token<'s>, ParseError> {
        let start = self.pos;
        let line = self.line;
        self.bump(); // opening quote
        let ch = match self.peek() {
            None => {
                return Err(ParseError::with_kind(
                    ParseErrorKind::UnterminatedChar,
                    "unterminated char literal",
                    self.span_from(start, line),
                ));
            }
            Some(b'\\') => {
                self.bump();
                self.lex_escape(start, line)?
            }
            Some(b) if b < 0x80 => {
                self.bump();
                b as char
            }
            Some(_) => {
                let ch = self.cur_char(start, line)?;
                for _ in 0..ch.len_utf8() {
                    self.bump();
                }
                ch
            }
        };
        if self.peek() != Some(b'\'') {
            return Err(ParseError::with_kind(
                ParseErrorKind::UnterminatedChar,
                "unterminated char literal",
                self.span_from(start, line),
            ));
        }
        self.bump();
        Ok(Token::CharLit(ch))
    }

    fn lex_punct(&mut self) -> Result<Token<'s>, ParseError> {
        use Punct::*;
        let start = self.pos;
        let line = self.line;
        let Some(b) = self.bump() else {
            return Err(ParseError::with_kind(
                ParseErrorKind::Internal,
                "lexer read past end of input",
                self.span_from(start, line),
            ));
        };
        let two = self.peek();
        let three = self.peek_at(1);
        let p = match b {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'@' => At,
            b'?' => Question,
            b'~' => Tilde,
            b'.' => {
                if two == Some(b'.') && three == Some(b'.') {
                    self.bump();
                    self.bump();
                    Ellipsis
                } else {
                    Dot
                }
            }
            b':' => {
                if two == Some(b':') {
                    self.bump();
                    ColonColon
                } else {
                    Colon
                }
            }
            b'=' => {
                if two == Some(b'=') {
                    self.bump();
                    Eq
                } else {
                    Assign
                }
            }
            b'!' => {
                if two == Some(b'=') {
                    self.bump();
                    NotEq
                } else {
                    Not
                }
            }
            b'<' => match (two, three) {
                (Some(b'='), _) => {
                    self.bump();
                    Le
                }
                (Some(b'<'), Some(b'=')) => {
                    self.bump();
                    self.bump();
                    ShlAssign
                }
                (Some(b'<'), _) => {
                    self.bump();
                    Shl
                }
                _ => Lt,
            },
            b'>' => {
                // `>>`/`>>>`/`>>=` stay as separate `>` tokens except `>=`.
                if two == Some(b'=') {
                    self.bump();
                    Ge
                } else {
                    Gt
                }
            }
            b'&' => match two {
                Some(b'&') => {
                    self.bump();
                    AndAnd
                }
                Some(b'=') => {
                    self.bump();
                    AmpAssign
                }
                _ => Amp,
            },
            b'|' => match two {
                Some(b'|') => {
                    self.bump();
                    OrOr
                }
                Some(b'=') => {
                    self.bump();
                    PipeAssign
                }
                _ => Pipe,
            },
            b'^' => {
                if two == Some(b'=') {
                    self.bump();
                    CaretAssign
                } else {
                    Caret
                }
            }
            b'+' => match two {
                Some(b'+') => {
                    self.bump();
                    Inc
                }
                Some(b'=') => {
                    self.bump();
                    PlusAssign
                }
                _ => Plus,
            },
            b'-' => match two {
                Some(b'-') => {
                    self.bump();
                    Dec
                }
                Some(b'=') => {
                    self.bump();
                    MinusAssign
                }
                Some(b'>') => {
                    self.bump();
                    Arrow
                }
                _ => Minus,
            },
            b'*' => {
                if two == Some(b'=') {
                    self.bump();
                    StarAssign
                } else {
                    Star
                }
            }
            b'/' => {
                if two == Some(b'=') {
                    self.bump();
                    SlashAssign
                } else {
                    Slash
                }
            }
            b'%' => {
                if two == Some(b'=') {
                    self.bump();
                    PercentAssign
                } else {
                    Percent
                }
            }
            other => {
                return Err(ParseError::with_kind(
                    ParseErrorKind::UnexpectedChar,
                    format!("unexpected character {:?}", other as char),
                    self.span_from(start, line),
                ));
            }
        };
        Ok(Token::Punct(p))
    }
}

/// Drops `_` digit separators, borrowing when there are none — the
/// common case, which therefore costs no allocation.
fn strip_underscores(digits: &str) -> std::borrow::Cow<'_, str> {
    if digits.contains('_') {
        std::borrow::Cow::Owned(digits.chars().filter(|c| *c != '_').collect())
    } else {
        std::borrow::Cow::Borrowed(digits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token<'_>> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            toks("class Foo"),
            vec![
                Token::Keyword(Keyword::Class),
                Token::Ident("Foo"),
                Token::Eof
            ]
        );
    }

    #[test]
    fn contextual_var_is_identifier() {
        assert_eq!(toks("var")[0], Token::Ident("var"));
    }

    #[test]
    fn string_escapes() {
        let tok = toks(r#""a\n\t\"\\""#)[0];
        assert_eq!(
            tok,
            Token::StrLit {
                raw: r#"a\n\t\"\\"#,
                escaped: true
            }
        );
        let Token::StrLit { raw, escaped } = tok else {
            unreachable!()
        };
        assert_eq!(Token::cook_str(raw, escaped), "a\n\t\"\\");
    }

    #[test]
    fn unicode_escape() {
        let Token::StrLit { raw, escaped } = toks(r#""\u0041""#)[0] else {
            panic!("not a string literal")
        };
        assert!(escaped);
        assert_eq!(Token::cook_str(raw, escaped), "A");
    }

    #[test]
    fn plain_string_borrows_without_escapes() {
        assert_eq!(
            toks(r#""AES/GCM/NoPadding""#)[0],
            Token::StrLit {
                raw: "AES/GCM/NoPadding",
                escaped: false
            }
        );
    }

    #[test]
    fn char_literals() {
        assert_eq!(toks(r"'x'")[0], Token::CharLit('x'));
        assert_eq!(toks(r"'\n'")[0], Token::CharLit('\n'));
    }

    #[test]
    fn int_literals() {
        assert_eq!(toks("42")[0], Token::IntLit(42, false));
        assert_eq!(toks("0x10")[0], Token::IntLit(16, false));
        assert_eq!(toks("0b101")[0], Token::IntLit(5, false));
        assert_eq!(toks("017")[0], Token::IntLit(15, false));
        assert_eq!(toks("1_000")[0], Token::IntLit(1000, false));
        assert_eq!(toks("7L")[0], Token::IntLit(7, true));
    }

    #[test]
    fn hex_wraps_like_javac() {
        assert_eq!(toks("0xFFFFFFFFFFFFFFFF")[0], Token::IntLit(-1, false));
    }

    #[test]
    fn float_literals() {
        assert_eq!(toks("1.5")[0], Token::FloatLit(1.5));
        assert_eq!(toks("2f")[0], Token::FloatLit(2.0));
        assert_eq!(toks("1e3")[0], Token::FloatLit(1000.0));
        assert_eq!(toks("2.5d")[0], Token::FloatLit(2.5));
    }

    #[test]
    fn member_access_on_int_is_not_float() {
        // `x.1` never occurs but `foo.bar` after an int: `1.toString()` is
        // invalid Java anyway; ensure `1.` followed by identifier stops.
        let t = toks("1.x");
        assert_eq!(t[0], Token::IntLit(1, false));
        assert_eq!(t[1], Token::Punct(Punct::Dot));
    }

    #[test]
    fn comments_are_trivia() {
        assert_eq!(
            toks("a // line\n /* block \n */ b"),
            vec![Token::Ident("a"), Token::Ident("b"), Token::Eof]
        );
    }

    #[test]
    fn shift_right_is_two_gt_tokens() {
        assert_eq!(
            toks(">>"),
            vec![Token::Punct(Punct::Gt), Token::Punct(Punct::Gt), Token::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a += b >>> 2"),
            vec![
                Token::Ident("a"),
                Token::Punct(Punct::PlusAssign),
                Token::Ident("b"),
                Token::Punct(Punct::Gt),
                Token::Punct(Punct::Gt),
                Token::Punct(Punct::Gt),
                Token::IntLit(2, false),
                Token::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(Lexer::new("\"abc").tokenize().is_err());
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(Lexer::new("/* abc").tokenize().is_err());
    }

    #[test]
    fn spans_track_lines() {
        let toks = Lexer::new("a\nb").tokenize().unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
    }
}
