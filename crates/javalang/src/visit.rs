//! A read-only visitor over the AST.
//!
//! Override the hooks you care about; `walk_*` free functions provide
//! the default traversal so overrides can recurse selectively.

use crate::ast::*;

/// A read-only AST visitor. All hooks default to plain traversal.
pub trait Visitor {
    /// Called for every type declaration (including nested ones).
    fn visit_type_decl(&mut self, decl: &TypeDecl) {
        walk_type_decl(self, decl);
    }

    /// Called for every method declaration.
    fn visit_method(&mut self, method: &MethodDecl) {
        walk_method(self, method);
    }

    /// Called for every field declaration.
    fn visit_field(&mut self, field: &FieldDecl) {
        walk_field(self, field);
    }

    /// Called for every statement.
    fn visit_stmt(&mut self, stmt: &Stmt) {
        walk_stmt(self, stmt);
    }

    /// Called for every expression.
    fn visit_expr(&mut self, expr: &Expr) {
        walk_expr(self, expr);
    }
}

/// Visits every type in `unit`.
pub fn walk_unit<V: Visitor + ?Sized>(v: &mut V, unit: &CompilationUnit) {
    for t in &unit.types {
        v.visit_type_decl(t);
    }
}

/// Default traversal for a type declaration.
pub fn walk_type_decl<V: Visitor + ?Sized>(v: &mut V, decl: &TypeDecl) {
    for m in &decl.members {
        match m {
            Member::Field(f) => v.visit_field(f),
            Member::Method(m) => v.visit_method(m),
            Member::Initializer { body, .. } => {
                for s in &body.stmts {
                    v.visit_stmt(s);
                }
            }
            Member::Type(t) => v.visit_type_decl(t),
        }
    }
}

/// Default traversal for a method.
pub fn walk_method<V: Visitor + ?Sized>(v: &mut V, method: &MethodDecl) {
    if let Some(body) = &method.body {
        for s in &body.stmts {
            v.visit_stmt(s);
        }
    }
}

/// Default traversal for a field.
pub fn walk_field<V: Visitor + ?Sized>(v: &mut V, field: &FieldDecl) {
    for d in &field.declarators {
        if let Some(init) = &d.init {
            v.visit_expr(init);
        }
    }
}

/// Default traversal for a statement.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, stmt: &Stmt) {
    match stmt {
        Stmt::Block(b) => {
            for s in &b.stmts {
                v.visit_stmt(s);
            }
        }
        Stmt::LocalVar { declarators, .. } => {
            for d in declarators {
                if let Some(init) = &d.init {
                    v.visit_expr(init);
                }
            }
        }
        Stmt::Expr(e) | Stmt::Throw(e) | Stmt::Assert(e) => v.visit_expr(e),
        Stmt::If { cond, then, alt } => {
            v.visit_expr(cond);
            v.visit_stmt(then);
            if let Some(alt) = alt {
                v.visit_stmt(alt);
            }
        }
        Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
            v.visit_expr(cond);
            v.visit_stmt(body);
        }
        Stmt::For { init, cond, update, body } => {
            for s in init {
                v.visit_stmt(s);
            }
            if let Some(c) = cond {
                v.visit_expr(c);
            }
            for u in update {
                v.visit_expr(u);
            }
            v.visit_stmt(body);
        }
        Stmt::ForEach { iterable, body, .. } => {
            v.visit_expr(iterable);
            v.visit_stmt(body);
        }
        Stmt::Return(value) => {
            if let Some(value) = value {
                v.visit_expr(value);
            }
        }
        Stmt::Try { resources, block, catches, finally } => {
            for r in resources {
                v.visit_stmt(r);
            }
            for s in &block.stmts {
                v.visit_stmt(s);
            }
            for c in catches {
                for s in &c.body.stmts {
                    v.visit_stmt(s);
                }
            }
            if let Some(f) = finally {
                for s in &f.stmts {
                    v.visit_stmt(s);
                }
            }
        }
        Stmt::Switch { scrutinee, cases } => {
            v.visit_expr(scrutinee);
            for c in cases {
                for l in &c.labels {
                    v.visit_expr(l);
                }
                for s in &c.body {
                    v.visit_stmt(s);
                }
            }
        }
        Stmt::Synchronized { monitor, body } => {
            v.visit_expr(monitor);
            for s in &body.stmts {
                v.visit_stmt(s);
            }
        }
        Stmt::LocalType(t) => v.visit_type_decl(t),
        Stmt::Break | Stmt::Continue | Stmt::Empty | Stmt::Unparsed => {}
    }
}

/// Default traversal for an expression.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, expr: &Expr) {
    match expr {
        Expr::FieldAccess { target, .. } => v.visit_expr(target),
        Expr::MethodCall { target, args, .. } => {
            if let Some(t) = target {
                v.visit_expr(t);
            }
            for a in args {
                v.visit_expr(a);
            }
        }
        Expr::New { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
        Expr::NewArray { dims, init, .. } => {
            for d in dims {
                v.visit_expr(d);
            }
            if let Some(init) = init {
                for e in init {
                    v.visit_expr(e);
                }
            }
        }
        Expr::ArrayInit(elems) => {
            for e in elems {
                v.visit_expr(e);
            }
        }
        Expr::Assign { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        Expr::Binary { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => v.visit_expr(expr),
        Expr::ArrayAccess { array, index } => {
            v.visit_expr(array);
            v.visit_expr(index);
        }
        Expr::Conditional { cond, then, alt } => {
            v.visit_expr(cond);
            v.visit_expr(then);
            v.visit_expr(alt);
        }
        Expr::InstanceOf { expr, .. } => v.visit_expr(expr),
        Expr::Literal(_)
        | Expr::Name(_)
        | Expr::This
        | Expr::Super
        | Expr::ClassLiteral(_)
        | Expr::Lambda
        | Expr::MethodRef
        | Expr::Unparsed => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_compilation_unit;

    #[derive(Default)]
    struct CallCounter {
        calls: Vec<String>,
    }

    impl Visitor for CallCounter {
        fn visit_expr(&mut self, expr: &Expr) {
            if let Expr::MethodCall { name, .. } = expr {
                self.calls.push(name.clone());
            }
            walk_expr(self, expr);
        }
    }

    #[test]
    fn visitor_finds_nested_calls() {
        let unit = parse_compilation_unit(
            r#"
            class A {
                void m() {
                    a(b(), c(d()));
                    if (cond()) { e(); }
                }
            }
            "#,
        )
        .unwrap();
        let mut counter = CallCounter::default();
        walk_unit(&mut counter, &unit);
        let mut calls = counter.calls;
        calls.sort();
        assert_eq!(calls, vec!["a", "b", "c", "cond", "d", "e"]);
    }
}
