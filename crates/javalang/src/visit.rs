//! A read-only visitor over the AST.
//!
//! Override the hooks you care about; `walk_*` free functions provide
//! the default traversal so overrides can recurse selectively. Child
//! expressions and statements live in the unit's [`Ast`] arena, so
//! every hook receives the arena alongside the node.

use crate::ast::*;

/// A read-only AST visitor. All hooks default to plain traversal.
pub trait Visitor {
    /// Called for every type declaration (including nested ones).
    fn visit_type_decl(&mut self, ast: &Ast, decl: &TypeDecl) {
        walk_type_decl(self, ast, decl);
    }

    /// Called for every method declaration.
    fn visit_method(&mut self, ast: &Ast, method: &MethodDecl) {
        walk_method(self, ast, method);
    }

    /// Called for every field declaration.
    fn visit_field(&mut self, ast: &Ast, field: &FieldDecl) {
        walk_field(self, ast, field);
    }

    /// Called for every statement.
    fn visit_stmt(&mut self, ast: &Ast, stmt: &Stmt) {
        walk_stmt(self, ast, stmt);
    }

    /// Called for every expression.
    fn visit_expr(&mut self, ast: &Ast, expr: &Expr) {
        walk_expr(self, ast, expr);
    }
}

/// Visits every type in `unit`.
pub fn walk_unit<V: Visitor + ?Sized>(v: &mut V, unit: &CompilationUnit) {
    for t in &unit.types {
        v.visit_type_decl(&unit.ast, t);
    }
}

/// Default traversal for a type declaration.
pub fn walk_type_decl<V: Visitor + ?Sized>(v: &mut V, ast: &Ast, decl: &TypeDecl) {
    for m in &decl.members {
        match m {
            Member::Field(f) => v.visit_field(ast, f),
            Member::Method(m) => v.visit_method(ast, m),
            Member::Initializer { body, .. } => {
                for s in &body.stmts {
                    v.visit_stmt(ast, &ast[*s]);
                }
            }
            Member::Type(t) => v.visit_type_decl(ast, t),
        }
    }
}

/// Default traversal for a method.
pub fn walk_method<V: Visitor + ?Sized>(v: &mut V, ast: &Ast, method: &MethodDecl) {
    if let Some(body) = &method.body {
        for s in &body.stmts {
            v.visit_stmt(ast, &ast[*s]);
        }
    }
}

/// Default traversal for a field.
pub fn walk_field<V: Visitor + ?Sized>(v: &mut V, ast: &Ast, field: &FieldDecl) {
    for d in &field.declarators {
        if let Some(init) = d.init {
            v.visit_expr(ast, &ast[init]);
        }
    }
}

/// Default traversal for a statement.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, ast: &Ast, stmt: &Stmt) {
    match stmt {
        Stmt::Block(b) => {
            for s in &b.stmts {
                v.visit_stmt(ast, &ast[*s]);
            }
        }
        Stmt::LocalVar { declarators, .. } => {
            for d in declarators {
                if let Some(init) = d.init {
                    v.visit_expr(ast, &ast[init]);
                }
            }
        }
        Stmt::Expr(e) | Stmt::Throw(e) | Stmt::Assert(e) => v.visit_expr(ast, &ast[*e]),
        Stmt::If { cond, then, alt } => {
            v.visit_expr(ast, &ast[*cond]);
            v.visit_stmt(ast, &ast[*then]);
            if let Some(alt) = alt {
                v.visit_stmt(ast, &ast[*alt]);
            }
        }
        Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
            v.visit_expr(ast, &ast[*cond]);
            v.visit_stmt(ast, &ast[*body]);
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            for s in init {
                v.visit_stmt(ast, &ast[*s]);
            }
            if let Some(c) = cond {
                v.visit_expr(ast, &ast[*c]);
            }
            for u in update {
                v.visit_expr(ast, &ast[*u]);
            }
            v.visit_stmt(ast, &ast[*body]);
        }
        Stmt::ForEach { iterable, body, .. } => {
            v.visit_expr(ast, &ast[*iterable]);
            v.visit_stmt(ast, &ast[*body]);
        }
        Stmt::Return(value) => {
            if let Some(value) = value {
                v.visit_expr(ast, &ast[*value]);
            }
        }
        Stmt::Try {
            resources,
            block,
            catches,
            finally,
        } => {
            for r in resources {
                v.visit_stmt(ast, &ast[*r]);
            }
            for s in &block.stmts {
                v.visit_stmt(ast, &ast[*s]);
            }
            for c in catches {
                for s in &c.body.stmts {
                    v.visit_stmt(ast, &ast[*s]);
                }
            }
            if let Some(f) = finally {
                for s in &f.stmts {
                    v.visit_stmt(ast, &ast[*s]);
                }
            }
        }
        Stmt::Switch { scrutinee, cases } => {
            v.visit_expr(ast, &ast[*scrutinee]);
            for c in cases {
                for l in &c.labels {
                    v.visit_expr(ast, &ast[*l]);
                }
                for s in &c.body {
                    v.visit_stmt(ast, &ast[*s]);
                }
            }
        }
        Stmt::Synchronized { monitor, body } => {
            v.visit_expr(ast, &ast[*monitor]);
            for s in &body.stmts {
                v.visit_stmt(ast, &ast[*s]);
            }
        }
        Stmt::LocalType(t) => v.visit_type_decl(ast, t),
        Stmt::Break | Stmt::Continue | Stmt::Empty | Stmt::Unparsed => {}
    }
}

/// Default traversal for an expression.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, ast: &Ast, expr: &Expr) {
    match expr {
        Expr::FieldAccess { target, .. } => v.visit_expr(ast, &ast[*target]),
        Expr::MethodCall { target, args, .. } => {
            if let Some(t) = target {
                v.visit_expr(ast, &ast[*t]);
            }
            for a in args {
                v.visit_expr(ast, &ast[*a]);
            }
        }
        Expr::New { args, .. } => {
            for a in args {
                v.visit_expr(ast, &ast[*a]);
            }
        }
        Expr::NewArray { dims, init, .. } => {
            for d in dims {
                v.visit_expr(ast, &ast[*d]);
            }
            if let Some(init) = init {
                for e in init {
                    v.visit_expr(ast, &ast[*e]);
                }
            }
        }
        Expr::ArrayInit(elems) => {
            for e in elems {
                v.visit_expr(ast, &ast[*e]);
            }
        }
        Expr::Assign { lhs, rhs, .. } => {
            v.visit_expr(ast, &ast[*lhs]);
            v.visit_expr(ast, &ast[*rhs]);
        }
        Expr::Binary { lhs, rhs, .. } => {
            v.visit_expr(ast, &ast[*lhs]);
            v.visit_expr(ast, &ast[*rhs]);
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => v.visit_expr(ast, &ast[*expr]),
        Expr::ArrayAccess { array, index } => {
            v.visit_expr(ast, &ast[*array]);
            v.visit_expr(ast, &ast[*index]);
        }
        Expr::Conditional { cond, then, alt } => {
            v.visit_expr(ast, &ast[*cond]);
            v.visit_expr(ast, &ast[*then]);
            v.visit_expr(ast, &ast[*alt]);
        }
        Expr::InstanceOf { expr, .. } => v.visit_expr(ast, &ast[*expr]),
        Expr::Literal(_)
        | Expr::Name(_)
        | Expr::This
        | Expr::Super
        | Expr::ClassLiteral(_)
        | Expr::Lambda
        | Expr::MethodRef
        | Expr::Unparsed => {}
    }
}

/// A node reference on the [`ast_depth`] worklist.
enum Node<'a> {
    Type(&'a TypeDecl),
    Stmt(StmtId),
    Expr(ExprId),
}

/// The maximum nesting depth of `unit` across type declarations,
/// statements, and expressions, computed **iteratively** (explicit
/// worklist, no recursion) so it is safe to call on arbitrarily deep
/// trees.
///
/// Parser-produced units are bounded by [`crate::limits::Limits::max_nesting`],
/// but `analyze` and the visitors accept any [`CompilationUnit`]; this
/// lets them reject pathological trees *before* recursing into them.
pub fn ast_depth(unit: &CompilationUnit) -> usize {
    let ast = &unit.ast;
    let mut max = 0usize;
    let mut work: Vec<(Node<'_>, usize)> = unit.types.iter().map(|t| (Node::Type(t), 1)).collect();
    fn push_block<'a>(work: &mut Vec<(Node<'a>, usize)>, b: &Block, d: usize) {
        for s in &b.stmts {
            work.push((Node::Stmt(*s), d));
        }
    }
    while let Some((node, d)) = work.pop() {
        max = max.max(d);
        match node {
            Node::Type(t) => {
                for m in &t.members {
                    match m {
                        Member::Field(f) => {
                            for decl in &f.declarators {
                                if let Some(init) = decl.init {
                                    work.push((Node::Expr(init), d + 1));
                                }
                            }
                        }
                        Member::Method(m) => {
                            if let Some(body) = &m.body {
                                push_block(&mut work, body, d + 1);
                            }
                        }
                        Member::Initializer { body, .. } => {
                            push_block(&mut work, body, d + 1);
                        }
                        Member::Type(nested) => work.push((Node::Type(nested), d + 1)),
                    }
                }
            }
            Node::Stmt(stmt) => match &ast[stmt] {
                Stmt::Block(b) => push_block(&mut work, b, d + 1),
                Stmt::LocalVar { declarators, .. } => {
                    for decl in declarators {
                        if let Some(init) = decl.init {
                            work.push((Node::Expr(init), d + 1));
                        }
                    }
                }
                Stmt::Expr(e) | Stmt::Throw(e) | Stmt::Assert(e) => {
                    work.push((Node::Expr(*e), d + 1));
                }
                Stmt::If { cond, then, alt } => {
                    work.push((Node::Expr(*cond), d + 1));
                    work.push((Node::Stmt(*then), d + 1));
                    if let Some(alt) = alt {
                        work.push((Node::Stmt(*alt), d + 1));
                    }
                }
                Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
                    work.push((Node::Expr(*cond), d + 1));
                    work.push((Node::Stmt(*body), d + 1));
                }
                Stmt::For {
                    init,
                    cond,
                    update,
                    body,
                } => {
                    for s in init {
                        work.push((Node::Stmt(*s), d + 1));
                    }
                    if let Some(c) = cond {
                        work.push((Node::Expr(*c), d + 1));
                    }
                    for u in update {
                        work.push((Node::Expr(*u), d + 1));
                    }
                    work.push((Node::Stmt(*body), d + 1));
                }
                Stmt::ForEach { iterable, body, .. } => {
                    work.push((Node::Expr(*iterable), d + 1));
                    work.push((Node::Stmt(*body), d + 1));
                }
                Stmt::Return(value) => {
                    if let Some(value) = value {
                        work.push((Node::Expr(*value), d + 1));
                    }
                }
                Stmt::Try {
                    resources,
                    block,
                    catches,
                    finally,
                } => {
                    for r in resources {
                        work.push((Node::Stmt(*r), d + 1));
                    }
                    push_block(&mut work, block, d + 1);
                    for c in catches {
                        push_block(&mut work, &c.body, d + 1);
                    }
                    if let Some(f) = finally {
                        push_block(&mut work, f, d + 1);
                    }
                }
                Stmt::Switch { scrutinee, cases } => {
                    work.push((Node::Expr(*scrutinee), d + 1));
                    for c in cases {
                        for l in &c.labels {
                            work.push((Node::Expr(*l), d + 1));
                        }
                        for s in &c.body {
                            work.push((Node::Stmt(*s), d + 1));
                        }
                    }
                }
                Stmt::Synchronized { monitor, body } => {
                    work.push((Node::Expr(*monitor), d + 1));
                    push_block(&mut work, body, d + 1);
                }
                Stmt::LocalType(t) => work.push((Node::Type(t), d + 1)),
                Stmt::Break | Stmt::Continue | Stmt::Empty | Stmt::Unparsed => {}
            },
            Node::Expr(expr) => match &ast[expr] {
                Expr::FieldAccess { target, .. } => {
                    work.push((Node::Expr(*target), d + 1));
                }
                Expr::MethodCall { target, args, .. } => {
                    if let Some(t) = target {
                        work.push((Node::Expr(*t), d + 1));
                    }
                    for a in args {
                        work.push((Node::Expr(*a), d + 1));
                    }
                }
                Expr::New { args, .. } => {
                    for a in args {
                        work.push((Node::Expr(*a), d + 1));
                    }
                }
                Expr::NewArray { dims, init, .. } => {
                    for dim in dims {
                        work.push((Node::Expr(*dim), d + 1));
                    }
                    if let Some(init) = init {
                        for e in init {
                            work.push((Node::Expr(*e), d + 1));
                        }
                    }
                }
                Expr::ArrayInit(elems) => {
                    for e in elems {
                        work.push((Node::Expr(*e), d + 1));
                    }
                }
                Expr::Assign { lhs, rhs, .. } | Expr::Binary { lhs, rhs, .. } => {
                    work.push((Node::Expr(*lhs), d + 1));
                    work.push((Node::Expr(*rhs), d + 1));
                }
                Expr::Unary { expr, .. }
                | Expr::Cast { expr, .. }
                | Expr::InstanceOf { expr, .. } => {
                    work.push((Node::Expr(*expr), d + 1));
                }
                Expr::ArrayAccess { array, index } => {
                    work.push((Node::Expr(*array), d + 1));
                    work.push((Node::Expr(*index), d + 1));
                }
                Expr::Conditional { cond, then, alt } => {
                    work.push((Node::Expr(*cond), d + 1));
                    work.push((Node::Expr(*then), d + 1));
                    work.push((Node::Expr(*alt), d + 1));
                }
                Expr::Literal(_)
                | Expr::Name(_)
                | Expr::This
                | Expr::Super
                | Expr::ClassLiteral(_)
                | Expr::Lambda
                | Expr::MethodRef
                | Expr::Unparsed => {}
            },
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_compilation_unit;

    #[derive(Default)]
    struct CallCounter {
        calls: Vec<String>,
    }

    impl Visitor for CallCounter {
        fn visit_expr(&mut self, ast: &Ast, expr: &Expr) {
            if let Expr::MethodCall { name, .. } = expr {
                self.calls.push(name.to_string());
            }
            walk_expr(self, ast, expr);
        }
    }

    #[test]
    fn visitor_finds_nested_calls() {
        let unit = parse_compilation_unit(
            r#"
            class A {
                void m() {
                    a(b(), c(d()));
                    if (cond()) { e(); }
                }
            }
            "#,
        )
        .unwrap();
        let mut counter = CallCounter::default();
        walk_unit(&mut counter, &unit);
        let mut calls = counter.calls;
        calls.sort();
        assert_eq!(calls, vec!["a", "b", "c", "cond", "d", "e"]);
    }

    #[test]
    fn ast_depth_grows_with_nesting() {
        let shallow = parse_compilation_unit("class A { int x = 1; }").unwrap();
        let deep =
            parse_compilation_unit("class A { void m() { if (a) { if (b) { c(d(e())); } } } }")
                .unwrap();
        assert!(ast_depth(&shallow) < ast_depth(&deep));
        assert!(ast_depth(&CompilationUnit::default()) == 0);
    }

    #[test]
    fn ast_depth_survives_pathological_trees() {
        // A 100k-deep expression would overflow the stack in a recursive
        // walker; the iterative depth must handle it. The arena also
        // makes dropping the unit non-recursive, so no leak is needed.
        let mut ast = Ast::default();
        let mut expr = ast.alloc_expr(Expr::int_lit(1));
        for _ in 0..100_000 {
            expr = ast.alloc_expr(Expr::Unary {
                op: UnOp::Neg,
                expr,
            });
        }
        let unit = CompilationUnit {
            ast,
            types: vec![TypeDecl {
                kind: TypeKind::Class,
                modifiers: Modifiers::default(),
                name: "A".into(),
                extends: None,
                implements: vec![],
                enum_constants: vec![],
                members: vec![Member::Field(FieldDecl {
                    modifiers: Modifiers::default(),
                    ty: Type::Primitive(PrimitiveType::Int),
                    declarators: vec![Declarator {
                        name: "x".into(),
                        extra_dims: 0,
                        init: Some(expr),
                    }],
                    span: crate::error::Span::default(),
                })],
                span: crate::error::Span::default(),
            }],
            ..CompilationUnit::default()
        };
        assert!(ast_depth(&unit) > 100_000);
    }
}
