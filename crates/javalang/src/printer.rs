//! A source-code emitter for the AST.
//!
//! Used by the synthetic corpus generator to render generated programs,
//! and by round-trip tests (`print ∘ parse ∘ print = print`).

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a compilation unit back to Java source.
pub fn pretty_print(unit: &CompilationUnit) -> String {
    let mut p = Printer {
        ast: &unit.ast,
        out: String::new(),
        indent: 0,
    };
    p.unit(unit);
    p.out
}

struct Printer<'a> {
    ast: &'a Ast,
    out: String,
    indent: usize,
}

impl Printer<'_> {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn unit(&mut self, unit: &CompilationUnit) {
        if let Some(pkg) = &unit.package {
            self.line(&format!("package {pkg};"));
            self.out.push('\n');
        }
        for import in &unit.imports {
            let stat = if import.is_static { "static " } else { "" };
            let star = if import.on_demand { ".*" } else { "" };
            self.line(&format!("import {stat}{}{star};", import.path));
        }
        if !unit.imports.is_empty() {
            self.out.push('\n');
        }
        for t in &unit.types {
            self.type_decl(t);
        }
    }

    fn modifiers(m: &Modifiers) -> String {
        let mut s = String::new();
        match m.visibility {
            Visibility::Public => s.push_str("public "),
            Visibility::Protected => s.push_str("protected "),
            Visibility::Private => s.push_str("private "),
            Visibility::Package => {}
        }
        if m.is_static {
            s.push_str("static ");
        }
        if m.is_abstract {
            s.push_str("abstract ");
        }
        if m.is_final {
            s.push_str("final ");
        }
        s
    }

    fn type_decl(&mut self, t: &TypeDecl) {
        let kw = match t.kind {
            TypeKind::Class => "class",
            TypeKind::Interface => "interface",
            TypeKind::Enum => "enum",
            TypeKind::Annotation => "@interface",
        };
        let mut header = format!("{}{kw} {}", Self::modifiers(&t.modifiers), t.name);
        if let Some(ext) = &t.extends {
            let _ = write!(header, " extends {}", type_str(ext));
        }
        if !t.implements.is_empty() {
            let list: Vec<_> = t.implements.iter().map(type_str).collect();
            let _ = write!(header, " implements {}", list.join(", "));
        }
        header.push_str(" {");
        self.line(&header);
        self.indent += 1;
        if !t.enum_constants.is_empty() {
            let consts = t.enum_constants.join(", ");
            self.line(&format!("{consts};"));
        }
        for m in &t.members {
            self.member(m);
        }
        self.indent -= 1;
        self.line("}");
    }

    fn member(&mut self, m: &Member) {
        match m {
            Member::Field(f) => {
                let decls: Vec<_> = f
                    .declarators
                    .iter()
                    .map(|d| declarator_str(self.ast, d))
                    .collect();
                self.line(&format!(
                    "{}{} {};",
                    Self::modifiers(&f.modifiers),
                    type_str(&f.ty),
                    decls.join(", ")
                ));
            }
            Member::Method(m) => self.method(m),
            Member::Initializer { is_static, body } => {
                self.line(if *is_static { "static {" } else { "{" });
                self.indent += 1;
                for s in &body.stmts {
                    self.stmt(&self.ast[*s]);
                }
                self.indent -= 1;
                self.line("}");
            }
            Member::Type(t) => self.type_decl(t),
        }
    }

    fn method(&mut self, m: &MethodDecl) {
        let mut header = Self::modifiers(&m.modifiers);
        if let Some(rt) = &m.return_type {
            let _ = write!(header, "{} ", type_str(rt));
        }
        let params: Vec<_> = m
            .params
            .iter()
            .map(|p| {
                format!(
                    "{}{} {}",
                    type_str(&p.ty),
                    if p.varargs { "..." } else { "" },
                    p.name
                )
            })
            .collect();
        let _ = write!(header, "{}({})", m.name, params.join(", "));
        if !m.throws.is_empty() {
            let list: Vec<_> = m.throws.iter().map(type_str).collect();
            let _ = write!(header, " throws {}", list.join(", "));
        }
        match &m.body {
            None => {
                header.push(';');
                self.line(&header);
            }
            Some(body) => {
                header.push_str(" {");
                self.line(&header);
                self.indent += 1;
                for s in &body.stmts {
                    self.stmt(&self.ast[*s]);
                }
                self.indent -= 1;
                self.line("}");
            }
        }
    }

    fn block_inline(&mut self, b: &Block) {
        self.indent += 1;
        for s in &b.stmts {
            self.stmt(&self.ast[*s]);
        }
        self.indent -= 1;
    }

    /// Renders a `for`-init / try-resource statement without its `;`.
    fn header_stmt_str(&self, s: StmtId) -> String {
        match &self.ast[s] {
            Stmt::LocalVar { ty, declarators } => {
                let decls: Vec<_> = declarators
                    .iter()
                    .map(|d| declarator_str(self.ast, d))
                    .collect();
                format!("{} {}", type_str(ty), decls.join(", "))
            }
            Stmt::Expr(e) => expr_str(self.ast, &self.ast[*e]),
            _ => String::new(),
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        let ast = self.ast;
        match s {
            Stmt::Block(b) => {
                self.line("{");
                self.block_inline(b);
                self.line("}");
            }
            Stmt::LocalVar { ty, declarators } => {
                let decls: Vec<_> = declarators.iter().map(|d| declarator_str(ast, d)).collect();
                self.line(&format!("{} {};", type_str(ty), decls.join(", ")));
            }
            Stmt::Expr(e) => self.line(&format!("{};", expr_str(ast, &ast[*e]))),
            Stmt::If { cond, then, alt } => {
                self.line(&format!("if ({}) {{", expr_str(ast, &ast[*cond])));
                self.indent += 1;
                self.stmt_unwrapped(&ast[*then]);
                self.indent -= 1;
                match alt {
                    Some(alt) => {
                        self.line("} else {");
                        self.indent += 1;
                        self.stmt_unwrapped(&ast[*alt]);
                        self.indent -= 1;
                        self.line("}");
                    }
                    None => self.line("}"),
                }
            }
            Stmt::While { cond, body } => {
                self.line(&format!("while ({}) {{", expr_str(ast, &ast[*cond])));
                self.indent += 1;
                self.stmt_unwrapped(&ast[*body]);
                self.indent -= 1;
                self.line("}");
            }
            Stmt::DoWhile { body, cond } => {
                self.line("do {");
                self.indent += 1;
                self.stmt_unwrapped(&ast[*body]);
                self.indent -= 1;
                self.line(&format!("}} while ({});", expr_str(ast, &ast[*cond])));
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                let init_s: Vec<_> = init.iter().map(|s| self.header_stmt_str(*s)).collect();
                let cond_s = cond.map(|c| expr_str(ast, &ast[c])).unwrap_or_default();
                let update_s: Vec<_> = update.iter().map(|u| expr_str(ast, &ast[*u])).collect();
                self.line(&format!(
                    "for ({}; {}; {}) {{",
                    init_s.join(", "),
                    cond_s,
                    update_s.join(", ")
                ));
                self.indent += 1;
                self.stmt_unwrapped(&ast[*body]);
                self.indent -= 1;
                self.line("}");
            }
            Stmt::ForEach {
                ty,
                name,
                iterable,
                body,
            } => {
                self.line(&format!(
                    "for ({} {} : {}) {{",
                    type_str(ty),
                    name,
                    expr_str(ast, &ast[*iterable])
                ));
                self.indent += 1;
                self.stmt_unwrapped(&ast[*body]);
                self.indent -= 1;
                self.line("}");
            }
            Stmt::Return(v) => match v {
                Some(v) => self.line(&format!("return {};", expr_str(ast, &ast[*v]))),
                None => self.line("return;"),
            },
            Stmt::Throw(v) => self.line(&format!("throw {};", expr_str(ast, &ast[*v]))),
            Stmt::Try {
                resources,
                block,
                catches,
                finally,
            } => {
                if resources.is_empty() {
                    self.line("try {");
                } else {
                    let res: Vec<_> = resources.iter().map(|s| self.header_stmt_str(*s)).collect();
                    self.line(&format!("try ({}) {{", res.join("; ")));
                }
                self.block_inline(block);
                for c in catches {
                    let types: Vec<_> = c.types.iter().map(type_str).collect();
                    self.line(&format!("}} catch ({} {}) {{", types.join(" | "), c.name));
                    self.block_inline(&c.body);
                }
                if let Some(f) = finally {
                    self.line("} finally {");
                    self.block_inline(f);
                }
                self.line("}");
            }
            Stmt::Switch { scrutinee, cases } => {
                self.line(&format!("switch ({}) {{", expr_str(ast, &ast[*scrutinee])));
                self.indent += 1;
                for case in cases {
                    if case.labels.is_empty() {
                        self.line("default:");
                    } else {
                        for l in &case.labels {
                            self.line(&format!("case {}:", expr_str(ast, &ast[*l])));
                        }
                    }
                    self.indent += 1;
                    for s in &case.body {
                        self.stmt(&ast[*s]);
                    }
                    self.indent -= 1;
                }
                self.indent -= 1;
                self.line("}");
            }
            Stmt::Synchronized { monitor, body } => {
                self.line(&format!(
                    "synchronized ({}) {{",
                    expr_str(ast, &ast[*monitor])
                ));
                self.block_inline(body);
                self.line("}");
            }
            Stmt::Break => self.line("break;"),
            Stmt::Continue => self.line("continue;"),
            Stmt::Assert(e) => self.line(&format!("assert {};", expr_str(ast, &ast[*e]))),
            Stmt::Empty => self.line(";"),
            Stmt::LocalType(t) => self.type_decl(t),
            Stmt::Unparsed => self.line("/* unparsed */;"),
        }
    }

    /// Prints the body of a statement that the caller already wrapped in
    /// braces; flattens one level of block nesting.
    fn stmt_unwrapped(&mut self, s: &Stmt) {
        match s {
            Stmt::Block(b) => {
                for s in &b.stmts {
                    self.stmt(&self.ast[*s]);
                }
            }
            other => self.stmt(other),
        }
    }
}

fn declarator_str(ast: &Ast, d: &Declarator) -> String {
    let dims = "[]".repeat(d.extra_dims);
    match d.init {
        Some(init) => format!("{}{dims} = {}", d.name, expr_str(ast, &ast[init])),
        None => format!("{}{dims}", d.name),
    }
}

/// Renders a type reference.
pub fn type_str(t: &Type) -> String {
    match t {
        Type::Primitive(p) => p.as_str().to_owned(),
        Type::Named { name, args } => {
            if args.is_empty() {
                name.to_string()
            } else {
                let list: Vec<_> = args.iter().map(type_str).collect();
                format!("{name}<{}>", list.join(", "))
            }
        }
        Type::Array(inner) => format!("{}[]", type_str(inner)),
        Type::Wildcard => "?".to_owned(),
        Type::Unknown => "var".to_owned(),
    }
}

fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

fn escape_char(c: char) -> String {
    match c {
        '\'' => "\\'".to_owned(),
        '\\' => "\\\\".to_owned(),
        '\n' => "\\n".to_owned(),
        '\t' => "\\t".to_owned(),
        '\r' => "\\r".to_owned(),
        other => other.to_string(),
    }
}

/// Renders an expression; child nodes are resolved through `ast`.
pub fn expr_str(ast: &Ast, e: &Expr) -> String {
    let sub = |id: &ExprId| expr_str(ast, &ast[*id]);
    match e {
        Expr::Literal(l) => match l {
            Lit::Int(v) => v.to_string(),
            Lit::Float(v) => {
                if v.fract() == 0.0 {
                    format!("{v:.1}")
                } else {
                    v.to_string()
                }
            }
            Lit::Bool(b) => b.to_string(),
            Lit::Char(c) => format!("'{}'", escape_char(*c)),
            Lit::Str(s) => format!("\"{}\"", escape_str(s)),
            Lit::Null => "null".to_owned(),
        },
        Expr::Name(dotted) => dotted.to_string(),
        Expr::FieldAccess { target, name } => {
            format!("{}.{name}", sub(target))
        }
        Expr::MethodCall { target, name, args } => {
            let args_s: Vec<_> = args.iter().map(sub).collect();
            match target {
                Some(t) => format!("{}.{name}({})", sub(t), args_s.join(", ")),
                None => format!("{name}({})", args_s.join(", ")),
            }
        }
        Expr::New {
            ty,
            args,
            anon_body,
        } => {
            let args_s: Vec<_> = args.iter().map(sub).collect();
            let body = if *anon_body { " { }" } else { "" };
            format!("new {}({}){body}", type_str(ty), args_s.join(", "))
        }
        Expr::NewArray { ty, dims, init } => {
            let mut s = format!("new {}", type_str(ty));
            for d in dims {
                let _ = write!(s, "[{}]", sub(d));
            }
            if let Some(init) = init {
                if dims.is_empty() {
                    s.push_str("[]");
                }
                let elems: Vec<_> = init.iter().map(sub).collect();
                let _ = write!(s, " {{ {} }}", elems.join(", "));
            }
            s
        }
        Expr::ArrayInit(elems) => {
            let elems_s: Vec<_> = elems.iter().map(sub).collect();
            format!("{{ {} }}", elems_s.join(", "))
        }
        Expr::Assign { lhs, op, rhs } => {
            let op_s = match op {
                AssignOp::Assign => "=",
                AssignOp::Add => "+=",
                AssignOp::Sub => "-=",
                AssignOp::Mul => "*=",
                AssignOp::Div => "/=",
                AssignOp::Rem => "%=",
                AssignOp::And => "&=",
                AssignOp::Or => "|=",
                AssignOp::Xor => "^=",
                AssignOp::Shl => "<<=",
                AssignOp::Shr => ">>=",
                AssignOp::UShr => ">>>=",
            };
            format!("{} {op_s} {}", sub(lhs), sub(rhs))
        }
        Expr::Binary { op, lhs, rhs } => {
            let op_s = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Gt => ">",
                BinOp::Le => "<=",
                BinOp::Ge => ">=",
                BinOp::AndAnd => "&&",
                BinOp::OrOr => "||",
                BinOp::BitAnd => "&",
                BinOp::BitOr => "|",
                BinOp::BitXor => "^",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::UShr => ">>>",
            };
            format!("({} {op_s} {})", sub(lhs), sub(rhs))
        }
        Expr::Unary { op, expr } => match op {
            UnOp::Neg => format!("-{}", sub(expr)),
            UnOp::Pos => format!("+{}", sub(expr)),
            UnOp::Not => format!("!{}", sub(expr)),
            UnOp::BitNot => format!("~{}", sub(expr)),
            UnOp::PreInc => format!("++{}", sub(expr)),
            UnOp::PreDec => format!("--{}", sub(expr)),
            UnOp::PostInc => format!("{}++", sub(expr)),
            UnOp::PostDec => format!("{}--", sub(expr)),
        },
        Expr::Cast { ty, expr } => format!("({}) {}", type_str(ty), sub(expr)),
        Expr::ArrayAccess { array, index } => {
            format!("{}[{}]", sub(array), sub(index))
        }
        Expr::Conditional { cond, then, alt } => {
            format!("({} ? {} : {})", sub(cond), sub(then), sub(alt))
        }
        Expr::InstanceOf { expr, ty } => {
            format!("({} instanceof {})", sub(expr), type_str(ty))
        }
        Expr::This => "this".to_owned(),
        Expr::Super => "super".to_owned(),
        Expr::ClassLiteral(ty) => format!("{}.class", type_str(ty)),
        Expr::Lambda => "() -> { }".to_owned(),
        Expr::MethodRef => "Object::toString".to_owned(),
        Expr::Unparsed => "/* unparsed */ null".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_compilation_unit;

    #[test]
    fn roundtrip_is_stable() {
        let src = r#"
            package demo;
            import javax.crypto.Cipher;
            public class AESCipher {
                private static final String ALGO = "AES/CBC/PKCS5Padding";
                Cipher enc;
                protected void setKey(Secret key, String iv) throws Exception {
                    byte[] ivBytes = Hex.decodeHex(iv.toCharArray());
                    IvParameterSpec ivSpec = new IvParameterSpec(ivBytes);
                    enc = Cipher.getInstance(ALGO);
                    enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
                }
            }
        "#;
        let unit1 = parse_compilation_unit(src).unwrap();
        let printed1 = pretty_print(&unit1);
        let unit2 = parse_compilation_unit(&printed1).unwrap();
        let printed2 = pretty_print(&unit2);
        assert_eq!(printed1, printed2);
    }

    #[test]
    fn prints_escapes() {
        assert_eq!(
            expr_str(&Ast::default(), &Expr::str_lit("a\"b\\c\n")),
            r#""a\"b\\c\n""#
        );
    }

    #[test]
    fn prints_array_literal() {
        let mut ast = Ast::default();
        let one = ast.alloc_expr(Expr::int_lit(1));
        let two = ast.alloc_expr(Expr::int_lit(2));
        let e = Expr::NewArray {
            ty: Type::Primitive(PrimitiveType::Byte),
            dims: vec![],
            init: Some(vec![one, two]),
        };
        assert_eq!(expr_str(&ast, &e), "new byte[] { 1, 2 }");
    }
}
