//! A lexer, parser, and AST for the subset of Java exercised by
//! crypto-API client code.
//!
//! The original DiffCode system (PLDI'18) analyzes Java sources fetched
//! from version control, including *partial programs* — library code
//! without an entry point, snippets that reference unresolved types, and
//! files that do not compile on their own. This crate therefore
//! implements an **error-tolerant** recursive-descent front end rather
//! than a conforming compiler front end: unparseable class members are
//! skipped (with a recorded [`ParseDiagnostic`]) instead of failing the
//! whole file.
//!
//! # Example
//!
//! ```
//! use javalang::parse_compilation_unit;
//!
//! let unit = parse_compilation_unit(
//!     r#"
//!     class Demo {
//!         void run() throws Exception {
//!             javax.crypto.Cipher c = javax.crypto.Cipher.getInstance("AES");
//!         }
//!     }
//!     "#,
//! )?;
//! assert_eq!(unit.types.len(), 1);
//! # Ok::<(), javalang::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod limits;
pub mod parser;
pub mod printer;
pub mod token;
pub mod visit;

pub use ast::CompilationUnit;
pub use error::{ParseDiagnostic, ParseError, ParseErrorKind};
pub use limits::Limits;
pub use parser::{parse_compilation_unit, parse_compilation_unit_with_limits, Parser};
pub use printer::pretty_print;

/// Convenience: lex `source` into a token stream, discarding trivia.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed literals (e.g. an unterminated
/// string).
pub fn lex(source: &str) -> Result<Vec<token::SpannedToken<'_>>, ParseError> {
    lexer::Lexer::new(source).tokenize()
}

/// Parses a *partial program*: a full compilation unit, a bare class
/// body (members without a surrounding class), or a bare statement
/// sequence — the kinds of snippets DiffCode mines from patches and
/// pastes.
///
/// Wrapping is attempted in that order; the first parse producing at
/// least one type declaration wins.
///
/// # Errors
///
/// Fails only if none of the three interpretations lexes/parses.
///
/// # Example
///
/// ```
/// // A bare statement sequence, not valid as a compilation unit:
/// let unit = javalang::parse_snippet(
///     r#"Cipher c = Cipher.getInstance("AES"); c.init(Cipher.ENCRYPT_MODE, key);"#,
/// )?;
/// assert_eq!(unit.types.len(), 1); // wrapped in a synthetic class
/// # Ok::<(), javalang::ParseError>(())
/// ```
pub fn parse_snippet(source: &str) -> Result<CompilationUnit, ParseError> {
    parse_snippet_with_limits(source, Limits::DEFAULT)
}

/// Like [`parse_snippet`], with explicit resource budgets.
///
/// The budgets apply to each candidate interpretation; the synthetic
/// wrapper class adds a handful of tokens and one nesting level, which
/// is accounted for before the source's own budget is charged.
///
/// # Errors
///
/// As [`parse_snippet`], plus typed budget errors when `limits` are
/// exceeded.
pub fn parse_snippet_with_limits(
    source: &str,
    limits: Limits,
) -> Result<CompilationUnit, ParseError> {
    let direct = parse_compilation_unit_with_limits(source, limits);
    if let Ok(unit) = &direct {
        if !unit.types.is_empty() && unit.diagnostics.is_empty() {
            return direct;
        }
    }
    // Candidate interpretations, scored by recovered-error count; the
    // cleanest one (fewest skipped regions) wins, with ties broken in
    // declaration order below.
    let mut best: Option<CompilationUnit> = None;
    let mut consider = |unit: CompilationUnit, has_content: bool| {
        if !has_content {
            return;
        }
        let better = match &best {
            None => true,
            Some(current) => unit.diagnostics.len() < current.diagnostics.len(),
        };
        if better {
            best = Some(unit);
        }
    };

    if let Ok(unit) = &direct {
        let has_types = !unit.types.is_empty();
        consider(unit.clone(), has_types);
    }
    // The synthetic wrappers add a few dozen bytes, a dozen tokens, and
    // up to two nesting levels; widen the budgets by that much so a
    // source exactly at its limit is not rejected for the wrapper's
    // overhead.
    let wrapped_limits = Limits {
        max_source_bytes: limits.max_source_bytes.saturating_add(96),
        max_tokens: limits.max_tokens.saturating_add(16),
        max_nesting: limits.max_nesting.saturating_add(2),
        ..limits
    };
    let as_members = format!("class __Snippet__ {{\n{source}\n}}");
    if let Ok(unit) = parse_compilation_unit_with_limits(&as_members, wrapped_limits) {
        let has_content = unit.types.first().is_some_and(|t| !t.members.is_empty());
        consider(unit, has_content);
    }
    let as_statements =
        format!("class __Snippet__ {{ void __snippet__() throws Exception {{\n{source}\n}} }}");
    if let Ok(unit) = parse_compilation_unit_with_limits(&as_statements, wrapped_limits) {
        let has_content = unit.types.first().is_some_and(|t| {
            t.methods()
                .next()
                .and_then(|m| m.body.as_ref())
                .is_some_and(|b| !b.stmts.is_empty())
        });
        consider(unit, has_content);
    }
    match best {
        Some(unit) => Ok(unit),
        None => direct,
    }
}
