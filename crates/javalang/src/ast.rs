//! The abstract syntax tree produced by the parser.
//!
//! The tree is deliberately permissive: type names are kept as dotted
//! strings rather than resolved symbols, because DiffCode analyzes
//! partial programs where resolution is impossible.

use crate::error::Span;
use std::fmt;

/// A parsed source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompilationUnit {
    /// The `package` declaration, if present.
    pub package: Option<String>,
    /// `import` declarations in source order.
    pub imports: Vec<Import>,
    /// Top-level type declarations.
    pub types: Vec<TypeDecl>,
    /// Recoverable problems encountered while parsing this unit.
    pub diagnostics: Vec<crate::error::ParseDiagnostic>,
}

impl CompilationUnit {
    /// Iterates over all type declarations, including nested ones.
    pub fn all_types(&self) -> Vec<&TypeDecl> {
        let mut out = Vec::new();
        fn walk<'a>(t: &'a TypeDecl, out: &mut Vec<&'a TypeDecl>) {
            out.push(t);
            for m in &t.members {
                if let Member::Type(nested) = m {
                    walk(nested, out);
                }
            }
        }
        for t in &self.types {
            walk(t, &mut out);
        }
        out
    }

    /// Resolves a simple type name against the imports of this unit,
    /// returning the last segment of the matching import, or the name
    /// unchanged.
    pub fn simple_name<'a>(&self, name: &'a str) -> &'a str {
        name.rsplit('.').next().unwrap_or(name)
    }
}

/// An `import` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Import {
    /// `true` for `import static`.
    pub is_static: bool,
    /// The dotted path, without any trailing `.*`.
    pub path: String,
    /// `true` for on-demand (`.*`) imports.
    pub on_demand: bool,
}

/// The kind of a type declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeKind {
    /// A `class`.
    Class,
    /// An `interface`.
    Interface,
    /// An `enum`.
    Enum,
    /// An `@interface` annotation declaration.
    Annotation,
}

/// Modifier flags. Only the ones the analysis cares about are tracked
/// individually; the rest are recorded by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Modifiers {
    /// `static`
    pub is_static: bool,
    /// `final`
    pub is_final: bool,
    /// `public` / `protected` / `private` / package-private.
    pub visibility: Visibility,
    /// `abstract`
    pub is_abstract: bool,
}

/// Java visibility levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Visibility {
    /// `public`
    Public,
    /// `protected`
    Protected,
    /// No modifier.
    #[default]
    Package,
    /// `private`
    Private,
}

/// A class/interface/enum declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDecl {
    /// What kind of type this is.
    pub kind: TypeKind,
    /// Declared modifiers.
    pub modifiers: Modifiers,
    /// The simple name.
    pub name: String,
    /// The `extends` clause, if any (single name for classes).
    pub extends: Option<Type>,
    /// The `implements` clause.
    pub implements: Vec<Type>,
    /// Enum constants (empty for non-enums).
    pub enum_constants: Vec<String>,
    /// Members in source order.
    pub members: Vec<Member>,
    /// Source location.
    pub span: Span,
}

impl TypeDecl {
    /// All field declarations of this type.
    pub fn fields(&self) -> impl Iterator<Item = &FieldDecl> {
        self.members.iter().filter_map(|m| match m {
            Member::Field(f) => Some(f),
            _ => None,
        })
    }

    /// All method declarations of this type (constructors included).
    pub fn methods(&self) -> impl Iterator<Item = &MethodDecl> {
        self.members.iter().filter_map(|m| match m {
            Member::Method(m) => Some(m),
            _ => None,
        })
    }
}

/// A class member.
#[derive(Debug, Clone, PartialEq)]
pub enum Member {
    /// A field declaration (possibly with several declarators).
    Field(FieldDecl),
    /// A method or constructor.
    Method(MethodDecl),
    /// A static or instance initializer block.
    Initializer {
        /// `true` for `static { ... }`.
        is_static: bool,
        /// The body.
        body: Block,
    },
    /// A nested type.
    Type(TypeDecl),
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Declared modifiers.
    pub modifiers: Modifiers,
    /// The declared type.
    pub ty: Type,
    /// One declarator per comma-separated name.
    pub declarators: Vec<Declarator>,
    /// Source location.
    pub span: Span,
}

/// A single `name = init` declarator.
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    /// The variable name.
    pub name: String,
    /// Extra array dimensions declared after the name (`int x[]`).
    pub extra_dims: usize,
    /// The initializer, if any.
    pub init: Option<Expr>,
}

/// A method or constructor declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// Declared modifiers.
    pub modifiers: Modifiers,
    /// Return type; `None` for constructors.
    pub return_type: Option<Type>,
    /// The method name (class name for constructors).
    pub name: String,
    /// `true` if this is a constructor.
    pub is_constructor: bool,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Declared thrown types.
    pub throws: Vec<Type>,
    /// The body; `None` for abstract/native methods.
    pub body: Option<Block>,
    /// Source location.
    pub span: Span,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// The declared type.
    pub ty: Type,
    /// The parameter name.
    pub name: String,
    /// `true` for varargs (`Type... name`).
    pub varargs: bool,
}

/// A type reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// A primitive type.
    Primitive(PrimitiveType),
    /// A (possibly dotted, possibly generic) named type. Generic
    /// arguments are recorded but erased for analysis.
    Named {
        /// Dotted name as written (e.g. `javax.crypto.Cipher`).
        name: String,
        /// Type arguments, if written.
        args: Vec<Type>,
    },
    /// An array type.
    Array(Box<Type>),
    /// `?` or `? extends X` wildcards inside generics.
    Wildcard,
    /// `var` or a type the parser could not make sense of.
    Unknown,
}

impl Type {
    /// Convenience constructor for a non-generic named type.
    pub fn named(name: impl Into<String>) -> Type {
        Type::Named {
            name: name.into(),
            args: Vec::new(),
        }
    }

    /// The simple (last-segment, erased) name of this type, or `None`
    /// for primitives/arrays/wildcards.
    pub fn simple_name(&self) -> Option<&str> {
        match self {
            Type::Named { name, .. } => Some(name.rsplit('.').next().unwrap_or(name)),
            _ => None,
        }
    }

    /// A display string in the abstraction's notation: `byte[]`, `int`,
    /// `Cipher`, …
    pub fn display_name(&self) -> String {
        match self {
            Type::Primitive(p) => p.as_str().to_owned(),
            Type::Named { name, .. } => name.rsplit('.').next().unwrap_or(name).to_owned(),
            Type::Array(inner) => format!("{}[]", inner.display_name()),
            Type::Wildcard => "?".to_owned(),
            Type::Unknown => "<unknown>".to_owned(),
        }
    }
}

/// Java's primitive types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum PrimitiveType {
    Boolean,
    Byte,
    Short,
    Int,
    Long,
    Char,
    Float,
    Double,
    Void,
}

impl PrimitiveType {
    /// The keyword spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            PrimitiveType::Boolean => "boolean",
            PrimitiveType::Byte => "byte",
            PrimitiveType::Short => "short",
            PrimitiveType::Int => "int",
            PrimitiveType::Long => "long",
            PrimitiveType::Char => "char",
            PrimitiveType::Float => "float",
            PrimitiveType::Double => "double",
            PrimitiveType::Void => "void",
        }
    }
}

impl fmt::Display for PrimitiveType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A `{ ... }` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A nested block.
    Block(Block),
    /// A local variable declaration.
    LocalVar {
        /// Declared type (or [`Type::Unknown`] for `var`).
        ty: Type,
        /// Declarators.
        declarators: Vec<Declarator>,
    },
    /// An expression statement.
    Expr(Expr),
    /// `if (cond) then else alt`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Else branch, if present.
        alt: Option<Box<Stmt>>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
    },
    /// A classic `for` loop.
    For {
        /// Initializers (declarations or expression statements).
        init: Vec<Stmt>,
        /// The loop condition, if present.
        cond: Option<Expr>,
        /// Update expressions.
        update: Vec<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// An enhanced `for (T x : iterable)` loop.
    ForEach {
        /// Element type.
        ty: Type,
        /// Element variable name.
        name: String,
        /// The iterated expression.
        iterable: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `return expr;`
    Return(Option<Expr>),
    /// `throw expr;`
    Throw(Expr),
    /// `try { .. } catch (..) { .. } finally { .. }` with optional
    /// resources.
    Try {
        /// try-with-resources declarations.
        resources: Vec<Stmt>,
        /// The guarded block.
        block: Block,
        /// Catch clauses.
        catches: Vec<CatchClause>,
        /// The finally block, if present.
        finally: Option<Block>,
    },
    /// A `switch` statement (cases flattened; analysis treats all arms
    /// as may-execute).
    Switch {
        /// The scrutinee.
        scrutinee: Expr,
        /// Case bodies.
        cases: Vec<SwitchCase>,
    },
    /// `synchronized (expr) { .. }`
    Synchronized {
        /// The monitor expression.
        monitor: Expr,
        /// The body.
        body: Block,
    },
    /// `break;` (labels ignored).
    Break,
    /// `continue;` (labels ignored).
    Continue,
    /// `assert expr;` / `assert expr : msg;`
    Assert(Expr),
    /// An empty statement.
    Empty,
    /// A local class declaration.
    LocalType(TypeDecl),
    /// A statement the parser skipped after an error.
    Unparsed,
}

/// One `case`/`default` arm of a switch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// The case label expressions; empty for `default`.
    pub labels: Vec<Expr>,
    /// The statements of the arm.
    pub body: Vec<Stmt>,
}

/// A catch clause.
#[derive(Debug, Clone, PartialEq)]
pub struct CatchClause {
    /// Caught exception types (multi-catch allowed).
    pub types: Vec<Type>,
    /// Binder name.
    pub name: String,
    /// Handler body.
    pub body: Block,
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AssignOp {
    Assign,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    UShr,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    UShr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Pos,
    Not,
    BitNot,
    PreInc,
    PreDec,
    PostInc,
    PostDec,
}

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// `int`/`long` literal.
    Int(i64),
    /// `float`/`double` literal.
    Float(f64),
    /// `boolean` literal.
    Bool(bool),
    /// `char` literal.
    Char(char),
    /// String literal.
    Str(String),
    /// `null`.
    Null,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Literal(Lit),
    /// A simple or qualified name (`x`, `Cipher.ENCRYPT_MODE`). Names
    /// are kept unresolved; the analyzer decides what each segment is.
    Name(Vec<String>),
    /// `target.field` where target is a non-name expression.
    FieldAccess {
        /// The receiver expression.
        target: Box<Expr>,
        /// The accessed field.
        name: String,
    },
    /// A method invocation.
    MethodCall {
        /// Explicit receiver, if any. `None` for unqualified calls.
        target: Option<Box<Expr>>,
        /// The method name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `new T(args)` (anonymous class bodies recorded but opaque).
    New {
        /// The instantiated type.
        ty: Type,
        /// Constructor arguments.
        args: Vec<Expr>,
        /// `true` if an anonymous class body followed.
        anon_body: bool,
    },
    /// `new T[dims]` or `new T[]{...}`.
    NewArray {
        /// Element type.
        ty: Type,
        /// Explicit dimension expressions.
        dims: Vec<Expr>,
        /// The array initializer, if given.
        init: Option<Vec<Expr>>,
    },
    /// A bare `{...}` array initializer (only valid in declarations).
    ArrayInit(Vec<Expr>),
    /// An assignment (also compound assignments).
    Assign {
        /// Assignment target.
        lhs: Box<Expr>,
        /// Which operator.
        op: AssignOp,
        /// Assigned value.
        rhs: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `(T) expr`.
    Cast {
        /// Target type.
        ty: Type,
        /// The casted expression.
        expr: Box<Expr>,
    },
    /// `array[index]`.
    ArrayAccess {
        /// Array expression.
        array: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `cond ? then : alt`.
    Conditional {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        alt: Box<Expr>,
    },
    /// `expr instanceof T`.
    InstanceOf {
        /// Tested expression.
        expr: Box<Expr>,
        /// Tested type.
        ty: Type,
    },
    /// `this`.
    This,
    /// `super`.
    Super,
    /// `T.class`.
    ClassLiteral(Type),
    /// A lambda expression; the body is kept opaque.
    Lambda,
    /// A method reference (`T::m`); kept opaque.
    MethodRef,
    /// An expression the parser skipped after an error.
    Unparsed,
}

impl Expr {
    /// Convenience constructor for a simple name.
    pub fn name(segments: &[&str]) -> Expr {
        Expr::Name(segments.iter().map(|s| (*s).to_owned()).collect())
    }

    /// Convenience constructor for a string literal.
    pub fn str_lit(s: impl Into<String>) -> Expr {
        Expr::Literal(Lit::Str(s.into()))
    }

    /// Convenience constructor for an int literal.
    pub fn int_lit(v: i64) -> Expr {
        Expr::Literal(Lit::Int(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display_names() {
        assert_eq!(Type::named("javax.crypto.Cipher").display_name(), "Cipher");
        assert_eq!(
            Type::Array(Box::new(Type::Primitive(PrimitiveType::Byte))).display_name(),
            "byte[]"
        );
        assert_eq!(Type::Primitive(PrimitiveType::Int).display_name(), "int");
    }

    #[test]
    fn simple_name_strips_qualifier() {
        let t = Type::named("a.b.C");
        assert_eq!(t.simple_name(), Some("C"));
        assert_eq!(Type::Primitive(PrimitiveType::Int).simple_name(), None);
    }

    #[test]
    fn all_types_walks_nested() {
        let inner = TypeDecl {
            kind: TypeKind::Class,
            modifiers: Modifiers::default(),
            name: "Inner".into(),
            extends: None,
            implements: vec![],
            enum_constants: vec![],
            members: vec![],
            span: Span::default(),
        };
        let outer = TypeDecl {
            kind: TypeKind::Class,
            modifiers: Modifiers::default(),
            name: "Outer".into(),
            extends: None,
            implements: vec![],
            enum_constants: vec![],
            members: vec![Member::Type(inner)],
            span: Span::default(),
        };
        let unit = CompilationUnit {
            package: None,
            imports: vec![],
            types: vec![outer],
            diagnostics: vec![],
        };
        let names: Vec<_> = unit.all_types().iter().map(|t| t.name.clone()).collect();
        assert_eq!(names, vec!["Outer", "Inner"]);
    }

    use crate::error::Span;
}
