//! The abstract syntax tree produced by the parser.
//!
//! The tree is deliberately permissive: type names are kept as dotted
//! strings rather than resolved symbols, because DiffCode analyzes
//! partial programs where resolution is impossible.
//!
//! # Arena layout
//!
//! Expressions and statements live in a per-file [`Ast`] arena carried
//! by the [`CompilationUnit`]; child links are typed indices
//! ([`ExprId`], [`StmtId`]) instead of `Box` pointers. The parser
//! allocates a node only when it becomes a child of another node, so
//! children always precede their parent in the arena. Two properties
//! follow:
//!
//! * **Bulk allocation** — a whole file's expressions are two `Vec`s,
//!   not thousands of individual heap boxes, and dropping a unit is a
//!   flat `Vec` drop (no recursive drop glue, however deep the tree).
//! * **Bounded node count** — the arena length is the node budget:
//!   parser-produced units allocate at most one node per consumed
//!   token, so [`crate::limits::Limits::max_tokens`] bounds the arena
//!   without separate accounting.
//!
//! Declarations (types, members, parameters) keep their tree shape:
//! they are few per file and never hot.

use crate::error::Span;
use std::fmt;

/// An interned name: shared, immutable, compared by content. Every
/// identifier-shaped string in the AST (names, dotted paths, type
/// names, string literals) is one of these, so repeated occurrences
/// share storage and cloning into downstream layers is a refcount
/// bump.
pub type Name = intern::Sym;

/// Index of an expression in a [`CompilationUnit`]'s [`Ast`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

/// Index of a statement in a [`CompilationUnit`]'s [`Ast`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(u32);

/// The bump arena holding every expression and statement of one parsed
/// file. Nodes are reached from the declaration tree via [`ExprId`] /
/// [`StmtId`] links; children always have smaller indices than the
/// node that references them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Ast {
    exprs: Vec<Expr>,
    stmts: Vec<Stmt>,
}

impl Ast {
    /// An empty arena pre-sized from a token count. Measured over the
    /// mining corpus, parsed sources land near one expression per three
    /// tokens and one statement per eight, so these capacities make
    /// arena growth a single allocation each instead of a doubling
    /// series.
    pub fn with_token_estimate(n_tokens: usize) -> Self {
        Ast {
            exprs: Vec::with_capacity(n_tokens / 3 + 4),
            stmts: Vec::with_capacity(n_tokens / 8 + 4),
        }
    }

    /// Appends an expression, returning its id.
    pub fn alloc_expr(&mut self, expr: Expr) -> ExprId {
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(expr);
        id
    }

    /// Appends a statement, returning its id.
    pub fn alloc_stmt(&mut self, stmt: Stmt) -> StmtId {
        let id = StmtId(self.stmts.len() as u32);
        self.stmts.push(stmt);
        id
    }

    /// The expression behind `id`.
    pub fn expr(&self, id: ExprId) -> &Expr {
        &self.exprs[id.0 as usize]
    }

    /// The statement behind `id`.
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        &self.stmts[id.0 as usize]
    }

    /// Number of expressions in the arena (allocated, not necessarily
    /// all reachable — parser backtracking can orphan a few).
    pub fn expr_count(&self) -> usize {
        self.exprs.len()
    }

    /// Number of statements in the arena.
    pub fn stmt_count(&self) -> usize {
        self.stmts.len()
    }
}

impl std::ops::Index<ExprId> for Ast {
    type Output = Expr;
    fn index(&self, id: ExprId) -> &Expr {
        self.expr(id)
    }
}

impl std::ops::Index<StmtId> for Ast {
    type Output = Stmt;
    fn index(&self, id: StmtId) -> &Stmt {
        self.stmt(id)
    }
}

/// A parsed source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompilationUnit {
    /// The `package` declaration, if present.
    pub package: Option<Name>,
    /// `import` declarations in source order.
    pub imports: Vec<Import>,
    /// Top-level type declarations.
    pub types: Vec<TypeDecl>,
    /// Recoverable problems encountered while parsing this unit.
    pub diagnostics: Vec<crate::error::ParseDiagnostic>,
    /// The arena holding this unit's expressions and statements.
    pub ast: Ast,
}

impl CompilationUnit {
    /// Iterates over all type declarations, including nested ones.
    pub fn all_types(&self) -> Vec<&TypeDecl> {
        let mut out = Vec::new();
        fn walk<'a>(t: &'a TypeDecl, out: &mut Vec<&'a TypeDecl>) {
            out.push(t);
            for m in &t.members {
                if let Member::Type(nested) = m {
                    walk(nested, out);
                }
            }
        }
        for t in &self.types {
            walk(t, &mut out);
        }
        out
    }

    /// Resolves a simple type name against the imports of this unit,
    /// returning the last segment of the matching import, or the name
    /// unchanged.
    pub fn simple_name<'a>(&self, name: &'a str) -> &'a str {
        name.rsplit('.').next().unwrap_or(name)
    }
}

/// An `import` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Import {
    /// `true` for `import static`.
    pub is_static: bool,
    /// The dotted path, without any trailing `.*`.
    pub path: Name,
    /// `true` for on-demand (`.*`) imports.
    pub on_demand: bool,
}

/// The kind of a type declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeKind {
    /// A `class`.
    Class,
    /// An `interface`.
    Interface,
    /// An `enum`.
    Enum,
    /// An `@interface` annotation declaration.
    Annotation,
}

/// Modifier flags. Only the ones the analysis cares about are tracked
/// individually; the rest are recorded by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Modifiers {
    /// `static`
    pub is_static: bool,
    /// `final`
    pub is_final: bool,
    /// `public` / `protected` / `private` / package-private.
    pub visibility: Visibility,
    /// `abstract`
    pub is_abstract: bool,
}

/// Java visibility levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Visibility {
    /// `public`
    Public,
    /// `protected`
    Protected,
    /// No modifier.
    #[default]
    Package,
    /// `private`
    Private,
}

/// A class/interface/enum declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDecl {
    /// What kind of type this is.
    pub kind: TypeKind,
    /// Declared modifiers.
    pub modifiers: Modifiers,
    /// The simple name.
    pub name: Name,
    /// The `extends` clause, if any (single name for classes).
    pub extends: Option<Type>,
    /// The `implements` clause.
    pub implements: Vec<Type>,
    /// Enum constants (empty for non-enums).
    pub enum_constants: Vec<Name>,
    /// Members in source order.
    pub members: Vec<Member>,
    /// Source location.
    pub span: Span,
}

impl TypeDecl {
    /// All field declarations of this type.
    pub fn fields(&self) -> impl Iterator<Item = &FieldDecl> {
        self.members.iter().filter_map(|m| match m {
            Member::Field(f) => Some(f),
            _ => None,
        })
    }

    /// All method declarations of this type (constructors included).
    pub fn methods(&self) -> impl Iterator<Item = &MethodDecl> {
        self.members.iter().filter_map(|m| match m {
            Member::Method(m) => Some(m),
            _ => None,
        })
    }
}

/// A class member.
#[derive(Debug, Clone, PartialEq)]
pub enum Member {
    /// A field declaration (possibly with several declarators).
    Field(FieldDecl),
    /// A method or constructor.
    Method(MethodDecl),
    /// A static or instance initializer block.
    Initializer {
        /// `true` for `static { ... }`.
        is_static: bool,
        /// The body.
        body: Block,
    },
    /// A nested type.
    Type(TypeDecl),
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Declared modifiers.
    pub modifiers: Modifiers,
    /// The declared type.
    pub ty: Type,
    /// One declarator per comma-separated name.
    pub declarators: Vec<Declarator>,
    /// Source location.
    pub span: Span,
}

/// A single `name = init` declarator.
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    /// The variable name.
    pub name: Name,
    /// Extra array dimensions declared after the name (`int x[]`).
    pub extra_dims: usize,
    /// The initializer, if any.
    pub init: Option<ExprId>,
}

/// A method or constructor declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// Declared modifiers.
    pub modifiers: Modifiers,
    /// Return type; `None` for constructors.
    pub return_type: Option<Type>,
    /// The method name (class name for constructors).
    pub name: Name,
    /// `true` if this is a constructor.
    pub is_constructor: bool,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Declared thrown types.
    pub throws: Vec<Type>,
    /// The body; `None` for abstract/native methods.
    pub body: Option<Block>,
    /// Source location.
    pub span: Span,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// The declared type.
    pub ty: Type,
    /// The parameter name.
    pub name: Name,
    /// `true` for varargs (`Type... name`).
    pub varargs: bool,
}

/// A type reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// A primitive type.
    Primitive(PrimitiveType),
    /// A (possibly dotted, possibly generic) named type. Generic
    /// arguments are recorded but erased for analysis.
    Named {
        /// Dotted name as written (e.g. `javax.crypto.Cipher`).
        name: Name,
        /// Type arguments, if written.
        args: Vec<Type>,
    },
    /// An array type.
    Array(Box<Type>),
    /// `?` or `? extends X` wildcards inside generics.
    Wildcard,
    /// `var` or a type the parser could not make sense of.
    Unknown,
}

impl Type {
    /// Convenience constructor for a non-generic named type.
    pub fn named(name: impl Into<Name>) -> Type {
        Type::Named {
            name: name.into(),
            args: Vec::new(),
        }
    }

    /// The simple (last-segment, erased) name of this type, or `None`
    /// for primitives/arrays/wildcards.
    pub fn simple_name(&self) -> Option<&str> {
        match self {
            Type::Named { name, .. } => Some(name.rsplit('.').next().unwrap_or(name)),
            _ => None,
        }
    }

    /// A display string in the abstraction's notation: `byte[]`, `int`,
    /// `Cipher`, …
    pub fn display_name(&self) -> String {
        match self {
            Type::Primitive(p) => p.as_str().to_owned(),
            Type::Named { name, .. } => name.rsplit('.').next().unwrap_or(name).to_owned(),
            Type::Array(inner) => format!("{}[]", inner.display_name()),
            Type::Wildcard => "?".to_owned(),
            Type::Unknown => "<unknown>".to_owned(),
        }
    }
}

/// Java's primitive types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum PrimitiveType {
    Boolean,
    Byte,
    Short,
    Int,
    Long,
    Char,
    Float,
    Double,
    Void,
}

impl PrimitiveType {
    /// The keyword spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            PrimitiveType::Boolean => "boolean",
            PrimitiveType::Byte => "byte",
            PrimitiveType::Short => "short",
            PrimitiveType::Int => "int",
            PrimitiveType::Long => "long",
            PrimitiveType::Char => "char",
            PrimitiveType::Float => "float",
            PrimitiveType::Double => "double",
            PrimitiveType::Void => "void",
        }
    }
}

impl fmt::Display for PrimitiveType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A `{ ... }` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements in order, as arena ids.
    pub stmts: Vec<StmtId>,
}

/// A statement. Child statements and expressions are arena ids into
/// the owning [`CompilationUnit`]'s [`Ast`].
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A nested block.
    Block(Block),
    /// A local variable declaration.
    LocalVar {
        /// Declared type (or [`Type::Unknown`] for `var`).
        ty: Type,
        /// Declarators.
        declarators: Vec<Declarator>,
    },
    /// An expression statement.
    Expr(ExprId),
    /// `if (cond) then else alt`.
    If {
        /// Condition.
        cond: ExprId,
        /// Then branch.
        then: StmtId,
        /// Else branch, if present.
        alt: Option<StmtId>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: ExprId,
        /// Loop body.
        body: StmtId,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body.
        body: StmtId,
        /// Loop condition.
        cond: ExprId,
    },
    /// A classic `for` loop.
    For {
        /// Initializers (declarations or expression statements).
        init: Vec<StmtId>,
        /// The loop condition, if present.
        cond: Option<ExprId>,
        /// Update expressions.
        update: Vec<ExprId>,
        /// Loop body.
        body: StmtId,
    },
    /// An enhanced `for (T x : iterable)` loop.
    ForEach {
        /// Element type.
        ty: Type,
        /// Element variable name.
        name: Name,
        /// The iterated expression.
        iterable: ExprId,
        /// Loop body.
        body: StmtId,
    },
    /// `return expr;`
    Return(Option<ExprId>),
    /// `throw expr;`
    Throw(ExprId),
    /// `try { .. } catch (..) { .. } finally { .. }` with optional
    /// resources.
    Try {
        /// try-with-resources declarations.
        resources: Vec<StmtId>,
        /// The guarded block.
        block: Block,
        /// Catch clauses.
        catches: Vec<CatchClause>,
        /// The finally block, if present.
        finally: Option<Block>,
    },
    /// A `switch` statement (cases flattened; analysis treats all arms
    /// as may-execute).
    Switch {
        /// The scrutinee.
        scrutinee: ExprId,
        /// Case bodies.
        cases: Vec<SwitchCase>,
    },
    /// `synchronized (expr) { .. }`
    Synchronized {
        /// The monitor expression.
        monitor: ExprId,
        /// The body.
        body: Block,
    },
    /// `break;` (labels ignored).
    Break,
    /// `continue;` (labels ignored).
    Continue,
    /// `assert expr;` / `assert expr : msg;`
    Assert(ExprId),
    /// An empty statement.
    Empty,
    /// A local class declaration.
    LocalType(TypeDecl),
    /// A statement the parser skipped after an error.
    Unparsed,
}

/// One `case`/`default` arm of a switch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// The case label expressions; empty for `default`.
    pub labels: Vec<ExprId>,
    /// The statements of the arm.
    pub body: Vec<StmtId>,
}

/// A catch clause.
#[derive(Debug, Clone, PartialEq)]
pub struct CatchClause {
    /// Caught exception types (multi-catch allowed).
    pub types: Vec<Type>,
    /// Binder name.
    pub name: Name,
    /// Handler body.
    pub body: Block,
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AssignOp {
    Assign,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    UShr,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    UShr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Pos,
    Not,
    BitNot,
    PreInc,
    PreDec,
    PostInc,
    PostDec,
}

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// `int`/`long` literal.
    Int(i64),
    /// `float`/`double` literal.
    Float(f64),
    /// `boolean` literal.
    Bool(bool),
    /// `char` literal.
    Char(char),
    /// String literal.
    Str(Name),
    /// `null`.
    Null,
}

/// An expression. Child expressions are arena ids into the owning
/// [`CompilationUnit`]'s [`Ast`].
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Literal(Lit),
    /// A simple or qualified name as a dotted string (`x`,
    /// `Cipher.ENCRYPT_MODE`). Names are kept unresolved; the analyzer
    /// decides what each segment is.
    Name(Name),
    /// `target.field` where target is a non-name expression.
    FieldAccess {
        /// The receiver expression.
        target: ExprId,
        /// The accessed field.
        name: Name,
    },
    /// A method invocation.
    MethodCall {
        /// Explicit receiver, if any. `None` for unqualified calls.
        target: Option<ExprId>,
        /// The method name.
        name: Name,
        /// Argument expressions.
        args: Vec<ExprId>,
    },
    /// `new T(args)` (anonymous class bodies recorded but opaque).
    New {
        /// The instantiated type.
        ty: Type,
        /// Constructor arguments.
        args: Vec<ExprId>,
        /// `true` if an anonymous class body followed.
        anon_body: bool,
    },
    /// `new T[dims]` or `new T[]{...}`.
    NewArray {
        /// Element type.
        ty: Type,
        /// Explicit dimension expressions.
        dims: Vec<ExprId>,
        /// The array initializer, if given.
        init: Option<Vec<ExprId>>,
    },
    /// A bare `{...}` array initializer (only valid in declarations).
    ArrayInit(Vec<ExprId>),
    /// An assignment (also compound assignments).
    Assign {
        /// Assignment target.
        lhs: ExprId,
        /// Which operator.
        op: AssignOp,
        /// Assigned value.
        rhs: ExprId,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: ExprId,
        /// Right operand.
        rhs: ExprId,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: ExprId,
    },
    /// `(T) expr`.
    Cast {
        /// Target type.
        ty: Type,
        /// The casted expression.
        expr: ExprId,
    },
    /// `array[index]`.
    ArrayAccess {
        /// Array expression.
        array: ExprId,
        /// Index expression.
        index: ExprId,
    },
    /// `cond ? then : alt`.
    Conditional {
        /// Condition.
        cond: ExprId,
        /// Value when true.
        then: ExprId,
        /// Value when false.
        alt: ExprId,
    },
    /// `expr instanceof T`.
    InstanceOf {
        /// Tested expression.
        expr: ExprId,
        /// Tested type.
        ty: Type,
    },
    /// `this`.
    This,
    /// `super`.
    Super,
    /// `T.class`.
    ClassLiteral(Type),
    /// A lambda expression; the body is kept opaque.
    Lambda,
    /// A method reference (`T::m`); kept opaque.
    MethodRef,
    /// An expression the parser skipped after an error.
    Unparsed,
}

impl Expr {
    /// Convenience constructor for a (possibly dotted) name.
    pub fn name(dotted: impl Into<Name>) -> Expr {
        Expr::Name(dotted.into())
    }

    /// Convenience constructor for a string literal.
    pub fn str_lit(s: impl Into<Name>) -> Expr {
        Expr::Literal(Lit::Str(s.into()))
    }

    /// Convenience constructor for an int literal.
    pub fn int_lit(v: i64) -> Expr {
        Expr::Literal(Lit::Int(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display_names() {
        assert_eq!(Type::named("javax.crypto.Cipher").display_name(), "Cipher");
        assert_eq!(
            Type::Array(Box::new(Type::Primitive(PrimitiveType::Byte))).display_name(),
            "byte[]"
        );
        assert_eq!(Type::Primitive(PrimitiveType::Int).display_name(), "int");
    }

    #[test]
    fn simple_name_strips_qualifier() {
        let t = Type::named("a.b.C");
        assert_eq!(t.simple_name(), Some("C"));
        assert_eq!(Type::Primitive(PrimitiveType::Int).simple_name(), None);
    }

    #[test]
    fn arena_ids_roundtrip() {
        let mut ast = Ast::default();
        let a = ast.alloc_expr(Expr::int_lit(1));
        let b = ast.alloc_expr(Expr::int_lit(2));
        let sum = ast.alloc_expr(Expr::Binary {
            op: BinOp::Add,
            lhs: a,
            rhs: b,
        });
        assert_eq!(ast.expr_count(), 3);
        assert_eq!(ast[a], Expr::int_lit(1));
        let Expr::Binary { lhs, rhs, .. } = &ast[sum] else {
            panic!("expected binary")
        };
        // Children precede their parent in the arena.
        assert!(*lhs < sum && *rhs < sum);
    }

    #[test]
    fn all_types_walks_nested() {
        let inner = TypeDecl {
            kind: TypeKind::Class,
            modifiers: Modifiers::default(),
            name: "Inner".into(),
            extends: None,
            implements: vec![],
            enum_constants: vec![],
            members: vec![],
            span: Span::default(),
        };
        let outer = TypeDecl {
            kind: TypeKind::Class,
            modifiers: Modifiers::default(),
            name: "Outer".into(),
            extends: None,
            implements: vec![],
            enum_constants: vec![],
            members: vec![Member::Type(inner)],
            span: Span::default(),
        };
        let unit = CompilationUnit {
            types: vec![outer],
            ..CompilationUnit::default()
        };
        let names: Vec<_> = unit.all_types().iter().map(|t| &*t.name).collect();
        assert_eq!(names, vec!["Outer", "Inner"]);
    }
}
