//! Hard resource budgets for the front end.
//!
//! Mining operates on untrusted input — truncated files, generated
//! code, adversarial garbage — so every dimension along which a file
//! can be pathological gets a hard cap that produces a typed
//! [`crate::ParseError`] instead of a hang, a stack overflow, or an
//! out-of-memory abort. The defaults are far above anything a real
//! hand-written Java file reaches (the paper's corpus files are a few
//! KiB), but low enough that a single hostile file cannot stall a
//! crawl-scale run.

/// Resource budgets applied while lexing and parsing one source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum source length in bytes. Longer inputs fail with
    /// [`crate::ParseErrorKind::SourceTooLarge`] before lexing starts.
    pub max_source_bytes: usize,
    /// Maximum number of tokens the lexer will produce
    /// ([`crate::ParseErrorKind::TokenBudgetExceeded`]).
    pub max_tokens: usize,
    /// Maximum length in bytes of a single token — megabyte identifiers
    /// and string literals are a classic fuzzer product
    /// ([`crate::ParseErrorKind::TokenTooLong`]).
    pub max_token_bytes: usize,
    /// Maximum recursion depth across *all* recursive parser paths:
    /// expressions, statements, types and type arguments, array
    /// initialisers, casts, and nested type declarations
    /// ([`crate::ParseErrorKind::NestingTooDeep`]).
    pub max_nesting: usize,
}

impl Limits {
    /// The budgets used when none are specified: 1 MiB of source,
    /// 262 144 tokens, 64 KiB tokens, nesting depth 64.
    pub const DEFAULT: Limits = Limits {
        max_source_bytes: 1 << 20,
        max_tokens: 1 << 18,
        max_token_bytes: 1 << 16,
        max_nesting: 64,
    };

    /// Effectively unlimited budgets — for trusted, hand-written
    /// sources (fixtures, tests) where truncation would be a bug.
    /// Nesting stays bounded because it guards the call stack, which
    /// is finite no matter how much the caller trusts the input.
    pub const UNBOUNDED: Limits = Limits {
        max_source_bytes: usize::MAX,
        max_tokens: usize::MAX,
        max_token_bytes: usize::MAX,
        max_nesting: 512,
    };
}

impl Default for Limits {
    fn default() -> Self {
        Limits::DEFAULT
    }
}
