//! Error and diagnostic types for the front end.

use std::error::Error;
use std::fmt;

/// A byte-offset range into the original source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Span {
    /// A span covering `start..end` on `line`.
    pub fn new(start: usize, end: usize, line: u32) -> Self {
        Span { start, end, line }
    }

    /// The smallest span containing both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// A fatal parse error: the file could not be turned into an AST at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    span: Span,
}

impl ParseError {
    /// Creates a parse error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError { message: message.into(), span }
    }

    /// The human-readable description, lowercase, without punctuation.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where in the source the error occurred.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl Error for ParseError {}

/// A recoverable problem encountered while parsing: the parser skipped
/// the offending region and kept going.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDiagnostic {
    /// What went wrong.
    pub message: String,
    /// Where the parser was when it gave up on the construct.
    pub span: Span,
}

impl fmt::Display for ParseDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "skipped: {} at {}", self.message, self.span)
    }
}
