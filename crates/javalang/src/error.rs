//! Error and diagnostic types for the front end.
//!
//! Every failure on the untrusted-input path carries a typed
//! [`ParseErrorKind`] so downstream consumers (the mining pipeline's
//! quarantine accounting in particular) can bucket failures without
//! string matching. The human-readable `message` strings are part of
//! the stable surface too — tests assert on them — so kinds are an
//! *addition*, not a replacement.

use std::borrow::Cow;
use std::error::Error;
use std::fmt;

/// A byte-offset range into the original source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Span {
    /// A span covering `start..end` on `line`.
    pub fn new(start: usize, end: usize, line: u32) -> Self {
        Span { start, end, line }
    }

    /// The smallest span containing both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// What category of failure a [`ParseError`] represents.
///
/// Lexical kinds come out of [`crate::lexer::Lexer`]; syntactic kinds
/// out of the parser. Budget kinds can come from either, depending on
/// which limit tripped first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// `/*` with no matching `*/`.
    UnterminatedComment,
    /// `"` with no closing quote on the same line.
    UnterminatedString,
    /// `'` with no closing quote.
    UnterminatedChar,
    /// A backslash escape cut off by end of input, or a malformed
    /// `\uXXXX` sequence.
    InvalidEscape,
    /// A numeric literal with no digits or out-of-range digits
    /// (`0x`, `0b_`, `1e`, ...).
    InvalidLiteral,
    /// A byte that starts no Java token (`#`, a stray `\`, ...).
    UnexpectedChar,
    /// The source text exceeds [`crate::limits::Limits::max_source_bytes`].
    SourceTooLarge,
    /// The token stream exceeds [`crate::limits::Limits::max_tokens`].
    TokenBudgetExceeded,
    /// A single token exceeds [`crate::limits::Limits::max_token_bytes`].
    TokenTooLong,
    /// The parser found a token that fits no production and could not
    /// recover.
    UnexpectedToken,
    /// Expression / statement / type nesting exceeded
    /// [`crate::limits::Limits::max_nesting`].
    NestingTooDeep,
    /// An invariant the front end maintains internally was violated —
    /// always a bug in this crate, never the input's fault, but
    /// reported as an error rather than a panic so one bad file cannot
    /// abort a mining run.
    Internal,
}

impl ParseErrorKind {
    /// Whether this kind is produced during lexing (as opposed to
    /// parsing). Budget kinds that trip in the lexer count as lexical.
    pub fn is_lexical(self) -> bool {
        matches!(
            self,
            ParseErrorKind::UnterminatedComment
                | ParseErrorKind::UnterminatedString
                | ParseErrorKind::UnterminatedChar
                | ParseErrorKind::InvalidEscape
                | ParseErrorKind::InvalidLiteral
                | ParseErrorKind::UnexpectedChar
                | ParseErrorKind::SourceTooLarge
                | ParseErrorKind::TokenBudgetExceeded
                | ParseErrorKind::TokenTooLong
        )
    }

    /// A short stable identifier, usable as a counter key.
    pub fn name(self) -> &'static str {
        match self {
            ParseErrorKind::UnterminatedComment => "unterminated-comment",
            ParseErrorKind::UnterminatedString => "unterminated-string",
            ParseErrorKind::UnterminatedChar => "unterminated-char",
            ParseErrorKind::InvalidEscape => "invalid-escape",
            ParseErrorKind::InvalidLiteral => "invalid-literal",
            ParseErrorKind::UnexpectedChar => "unexpected-char",
            ParseErrorKind::SourceTooLarge => "source-too-large",
            ParseErrorKind::TokenBudgetExceeded => "token-budget",
            ParseErrorKind::TokenTooLong => "token-too-long",
            ParseErrorKind::UnexpectedToken => "unexpected-token",
            ParseErrorKind::NestingTooDeep => "nesting-too-deep",
            ParseErrorKind::Internal => "internal",
        }
    }
}

/// A fatal parse error: the file could not be turned into an AST at all.
///
/// The payload lives behind one `Box`, keeping `ParseError` (and with
/// it every `Result` threaded through the recursive-descent parser's
/// hot path) pointer-sized; speculative parses construct and discard
/// errors freely, and static messages don't allocate a `String`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    inner: Box<ParseErrorInner>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ParseErrorInner {
    kind: ParseErrorKind,
    message: Cow<'static, str>,
    span: Span,
}

impl ParseError {
    /// Creates a parse error at `span` with the generic
    /// [`ParseErrorKind::UnexpectedToken`] kind.
    pub fn new(message: impl Into<Cow<'static, str>>, span: Span) -> Self {
        ParseError::with_kind(ParseErrorKind::UnexpectedToken, message, span)
    }

    /// Creates a parse error of a specific kind at `span`.
    pub fn with_kind(
        kind: ParseErrorKind,
        message: impl Into<Cow<'static, str>>,
        span: Span,
    ) -> Self {
        ParseError {
            inner: Box::new(ParseErrorInner {
                kind,
                message: message.into(),
                span,
            }),
        }
    }

    /// The failure category.
    pub fn kind(&self) -> ParseErrorKind {
        self.inner.kind
    }

    /// The human-readable description, lowercase, without punctuation.
    pub fn message(&self) -> &str {
        &self.inner.message
    }

    /// Where in the source the error occurred.
    pub fn span(&self) -> Span {
        self.inner.span
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.inner.message, self.inner.span)
    }
}

impl Error for ParseError {}

/// A recoverable problem encountered while parsing: the parser skipped
/// the offending region and kept going.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDiagnostic {
    /// What went wrong.
    pub message: String,
    /// Where the parser was when it gave up on the construct.
    pub span: Span,
}

impl fmt::Display for ParseDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "skipped: {} at {}", self.message, self.span)
    }
}
