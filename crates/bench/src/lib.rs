//! Shared plumbing for the experiment binaries.
//!
//! Each binary regenerates one table/figure of the paper's evaluation
//! section; see DESIGN.md for the experiment index and EXPERIMENTS.md
//! for paper-vs-measured numbers.

use corpus::GeneratorConfig;
use obs::{fmt_ns, MetricsRegistry};
use std::path::PathBuf;

/// Parses `[n_projects] [seed]` from the command line, with
/// paper-scale defaults. Flag arguments (`--bench-json <path>`) are
/// skipped; see [`bench_json_path`].
pub fn config_from_args(default_projects: usize) -> GeneratorConfig {
    let (positionals, _) = split_args();
    let n_projects = positionals
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_projects);
    let seed = positionals
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD1FF_C0DE);
    GeneratorConfig {
        n_projects,
        seed,
        ..GeneratorConfig::default()
    }
}

/// The `--bench-json <path>` argument, if given: where the binary
/// writes its metrics-registry snapshot (counters, gauges, and the
/// per-stage latency spans CI's regression gate reads).
pub fn bench_json_path() -> Option<PathBuf> {
    split_args().1
}

/// Splits the command line into positional arguments and the optional
/// `--bench-json` value.
fn split_args() -> (Vec<String>, Option<PathBuf>) {
    let mut positionals = Vec::new();
    let mut json = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        if arg == "--bench-json" {
            json = iter.next().map(PathBuf::from);
        } else {
            positionals.push(arg);
        }
    }
    (positionals, json)
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}\n", "=".repeat(72));
}

/// Renders every span in `registry` as a latency table, sorted by the
/// registry's deterministic (lexicographic) span order. This is the
/// experiment binaries' single timing sink: stages record spans and
/// this table is printed at the end, instead of each binary doing its
/// own `Instant` arithmetic.
pub fn render_span_table(registry: &MetricsRegistry) -> String {
    let mut table = diffcode::Table::new(vec![
        "span", "count", "total", "mean", "p50", "p90", "p99", "min", "max",
    ]);
    for (name, span) in registry.spans() {
        let quantile = |q: f64| {
            registry
                .hist(name)
                .map_or_else(|| "-".to_owned(), |h| fmt_ns(h.quantile(q)))
        };
        table.row(vec![
            name.to_owned(),
            span.count.to_string(),
            fmt_ns(span.sum_ns),
            fmt_ns(span.mean_ns()),
            quantile(0.50),
            quantile(0.90),
            quantile(0.99),
            fmt_ns(span.min_ns),
            fmt_ns(span.max_ns),
        ]);
    }
    table.render()
}

/// One cold code change, end to end: parse and analyze both versions,
/// then derive the usage-change diff for every target class — exactly
/// what the mining loop pays per change on a cache miss. Returns the
/// number of non-trivial usage changes derived (a value to keep the
/// optimizer honest). Shared by the `frontend` criterion group and the
/// `frontend.*` metric spans `all_experiments` records for CI's
/// bench-regression gate.
pub fn cold_change(old: &str, new: &str, api: &analysis::ApiModel) -> usize {
    use usagegraph::{dags_for_class, diff_dags, pair_dags, DEFAULT_MAX_DEPTH};
    let old_usages = analysis::analyze(&javalang::parse_snippet(old).unwrap(), api);
    let new_usages = analysis::analyze(&javalang::parse_snippet(new).unwrap(), api);
    let mut derived = 0;
    for class in analysis::TARGET_CLASSES {
        let old_dags = dags_for_class(&old_usages, class, DEFAULT_MAX_DEPTH);
        let new_dags = dags_for_class(&new_usages, class, DEFAULT_MAX_DEPTH);
        if old_dags.is_empty() && new_dags.is_empty() {
            continue;
        }
        for (a, b) in pair_dags(old_dags, new_dags, class) {
            derived += usize::from(!diff_dags(&a, &b).is_same());
        }
    }
    derived
}

/// Times each front-end stage over a fixed slice of `corpus`'s code
/// changes, recording `frontend.lex` / `frontend.parse` /
/// `frontend.analyze` / `frontend.change` spans — one span per pass
/// over the whole slice, so span means sit well above the regression
/// gate's noise floor while still scaling linearly with per-change
/// cost. Returns `(changes timed, passes per stage)`.
pub fn frontend_microbench(
    corpus: &corpus::Corpus,
    metrics: &mut MetricsRegistry,
) -> (usize, usize) {
    const SAMPLES: usize = 32;
    const REPS: usize = 120;
    let changes: Vec<(&str, &str)> = corpus
        .code_changes()
        .take(SAMPLES)
        .map(|c| (c.old, c.new))
        .collect();
    let api = analysis::ApiModel::standard();
    let mut sink = 0usize;
    // One untimed warm-up pass (criterion-style): populates the interner,
    // faults in code pages, and trains branch predictors so the measured
    // reps time the steady state rather than first-touch costs.
    sink += changes
        .iter()
        .map(|(old, new)| cold_change(old, new, &api))
        .sum::<usize>();
    for _ in 0..REPS {
        sink += metrics.time("frontend.lex", || {
            changes
                .iter()
                .map(|(old, new)| {
                    javalang::lex(old).unwrap().len() + javalang::lex(new).unwrap().len()
                })
                .sum::<usize>()
        });
        sink += metrics.time("frontend.parse", || {
            changes
                .iter()
                .map(|(old, new)| {
                    javalang::parse_snippet(old).unwrap().types.len()
                        + javalang::parse_snippet(new).unwrap().types.len()
                })
                .sum::<usize>()
        });
        let units: Vec<_> = changes
            .iter()
            .flat_map(|(old, new)| {
                [
                    javalang::parse_snippet(old).unwrap(),
                    javalang::parse_snippet(new).unwrap(),
                ]
            })
            .collect();
        sink += metrics.time("frontend.analyze", || {
            units
                .iter()
                .map(|unit| analysis::analyze(unit, &api).events.len())
                .sum::<usize>()
        });
        sink += metrics.time("frontend.change", || {
            changes
                .iter()
                .map(|(old, new)| cold_change(old, new, &api))
                .sum::<usize>()
        });
    }
    std::hint::black_box(sink);
    (changes.len(), REPS)
}

/// Measures what the histogram plane added to `record_span`: one span
/// times a pass of bare `BTreeMap<String, SpanStats>` upserts (the
/// pre-histogram registry cost model), the other the full
/// [`MetricsRegistry::record_span`] path (span stats + log-linear
/// bucket increment). Both land in the bench JSON, where CI pins
/// `obs.record_span / obs.span_stats_only <= 2` (the EXPERIMENTS.md
/// record-overhead budget). Returns `(records per pass, passes)`.
pub fn obs_overhead_microbench(metrics: &mut MetricsRegistry) -> (usize, usize) {
    use std::collections::BTreeMap;
    use std::time::Duration;
    const SAMPLES: usize = 4_096;
    const REPS: usize = 60;
    // Deterministic latency-shaped samples (xorshift, ns..10ms).
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let durations: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Duration::from_nanos(state % 10_000_000)
        })
        .collect();
    let mut sink = 0u64;
    for _ in 0..REPS {
        sink += metrics.time("obs.span_stats_only", || {
            let mut spans: BTreeMap<String, obs::SpanStats> = BTreeMap::new();
            for d in &durations {
                spans.entry("bench.span".to_owned()).or_default().record(*d);
            }
            spans.values().map(|s| s.count).sum::<u64>()
        });
        sink += metrics.time("obs.record_span", || {
            let mut registry = MetricsRegistry::new();
            for d in &durations {
                registry.record_span("bench.span", *d);
            }
            registry.hist("bench.span").map_or(0, obs::Histogram::count)
        });
    }
    std::hint::black_box(sink);
    (SAMPLES, REPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_uses_paper_scale() {
        let cfg = config_from_args(461);
        assert_eq!(cfg.n_projects, 461);
    }

    #[test]
    fn span_table_renders_percentile_columns() {
        let mut registry = MetricsRegistry::new();
        for ns in [100u64, 200, 300, 400] {
            registry.record_span("stage", std::time::Duration::from_nanos(ns));
        }
        let table = render_span_table(&registry);
        assert!(table.contains("p50"), "{table}");
        assert!(table.contains("p99"), "{table}");
        assert!(table.contains("stage"), "{table}");
    }
}
