//! Shared plumbing for the experiment binaries.
//!
//! Each binary regenerates one table/figure of the paper's evaluation
//! section; see DESIGN.md for the experiment index and EXPERIMENTS.md
//! for paper-vs-measured numbers.

use corpus::GeneratorConfig;
use obs::{fmt_ns, MetricsRegistry};
use std::path::PathBuf;

/// Parses `[n_projects] [seed]` from the command line, with
/// paper-scale defaults. Flag arguments (`--bench-json <path>`) are
/// skipped; see [`bench_json_path`].
pub fn config_from_args(default_projects: usize) -> GeneratorConfig {
    let (positionals, _) = split_args();
    let n_projects = positionals
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_projects);
    let seed = positionals
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD1FF_C0DE);
    GeneratorConfig {
        n_projects,
        seed,
        ..GeneratorConfig::default()
    }
}

/// The `--bench-json <path>` argument, if given: where the binary
/// writes its metrics-registry snapshot (counters, gauges, and the
/// per-stage latency spans CI's regression gate reads).
pub fn bench_json_path() -> Option<PathBuf> {
    split_args().1
}

/// Splits the command line into positional arguments and the optional
/// `--bench-json` value.
fn split_args() -> (Vec<String>, Option<PathBuf>) {
    let mut positionals = Vec::new();
    let mut json = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        if arg == "--bench-json" {
            json = iter.next().map(PathBuf::from);
        } else {
            positionals.push(arg);
        }
    }
    (positionals, json)
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}\n", "=".repeat(72));
}

/// Renders every span in `registry` as a latency table, sorted by the
/// registry's deterministic (lexicographic) span order. This is the
/// experiment binaries' single timing sink: stages record spans and
/// this table is printed at the end, instead of each binary doing its
/// own `Instant` arithmetic.
pub fn render_span_table(registry: &MetricsRegistry) -> String {
    let mut table = diffcode::Table::new(vec!["span", "count", "total", "mean", "min", "max"]);
    for (name, span) in registry.spans() {
        table.row(vec![
            name.to_owned(),
            span.count.to_string(),
            fmt_ns(span.sum_ns),
            fmt_ns(span.mean_ns()),
            fmt_ns(span.min_ns),
            fmt_ns(span.max_ns),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_uses_paper_scale() {
        let cfg = config_from_args(461);
        assert_eq!(cfg.n_projects, 461);
    }
}
