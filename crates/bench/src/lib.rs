//! Shared plumbing for the experiment binaries.
//!
//! Each binary regenerates one table/figure of the paper's evaluation
//! section; see DESIGN.md for the experiment index and EXPERIMENTS.md
//! for paper-vs-measured numbers.

use corpus::GeneratorConfig;

/// Parses `[n_projects] [seed]` from the command line, with
/// paper-scale defaults.
pub fn config_from_args(default_projects: usize) -> GeneratorConfig {
    let mut args = std::env::args().skip(1);
    let n_projects = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_projects);
    let seed = args.next().and_then(|s| s.parse().ok()).unwrap_or(0xD1FF_C0DE);
    GeneratorConfig { n_projects, seed, ..GeneratorConfig::default() }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}\n", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_uses_paper_scale() {
        let cfg = config_from_args(461);
        assert_eq!(cfg.n_projects, 461);
    }
}
