//! Shared plumbing for the experiment binaries.
//!
//! Each binary regenerates one table/figure of the paper's evaluation
//! section; see DESIGN.md for the experiment index and EXPERIMENTS.md
//! for paper-vs-measured numbers.

use corpus::GeneratorConfig;
use obs::{fmt_ns, MetricsRegistry};

/// Parses `[n_projects] [seed]` from the command line, with
/// paper-scale defaults.
pub fn config_from_args(default_projects: usize) -> GeneratorConfig {
    let mut args = std::env::args().skip(1);
    let n_projects = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_projects);
    let seed = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD1FF_C0DE);
    GeneratorConfig {
        n_projects,
        seed,
        ..GeneratorConfig::default()
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}\n", "=".repeat(72));
}

/// Renders every span in `registry` as a latency table, sorted by the
/// registry's deterministic (lexicographic) span order. This is the
/// experiment binaries' single timing sink: stages record spans and
/// this table is printed at the end, instead of each binary doing its
/// own `Instant` arithmetic.
pub fn render_span_table(registry: &MetricsRegistry) -> String {
    let mut table = diffcode::Table::new(vec!["span", "count", "total", "mean", "min", "max"]);
    for (name, span) in registry.spans() {
        table.row(vec![
            name.to_owned(),
            span.count.to_string(),
            fmt_ns(span.sum_ns),
            fmt_ns(span.mean_ns()),
            fmt_ns(span.min_ns),
            fmt_ns(span.max_ns),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_uses_paper_scale() {
        let cfg = config_from_args(461);
        assert_eq!(cfg.n_projects, 461);
    }
}
