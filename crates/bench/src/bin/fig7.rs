//! Figure 7: security fixes vs buggy changes vs non-semantic changes,
//! per CryptoLint oracle rule, across the filter stages.
//!
//! Usage: `cargo run --release -p diffcode-bench --bin fig7 [n_projects] [seed]`

use diffcode::Experiments;
use diffcode_bench::{config_from_args, header};

fn main() {
    let config = config_from_args(461);
    header(&format!(
        "Figure 7 — change classification vs CL1–CL5 over {} projects",
        config.n_projects
    ));
    let exp = Experiments::new(corpus::generate(&config));
    print!("{}", exp.figure7_table());

    let rows = exp.figure7();
    let fixes: usize = rows.iter().map(|r| r.fix.total).sum();
    let bugs: usize = rows.iter().map(|r| r.bug.total).sum();
    let fix_fdup: usize = rows.iter().map(|r| r.fix.fdup).sum();
    let fix_lost: usize = rows
        .iter()
        .map(|r| r.fix.fsame + r.fix.fadd + r.fix.frem)
        .sum();
    println!("\nfixes={fixes} bugs={bugs} (paper: >80% of classified changes are fixes)");
    println!(
        "fixes removed by fsame/fadd/frem: {fix_lost} (paper: 0); by fdup: {fix_fdup} (paper: 1)"
    );
}
