//! Prints the descriptive statistics of a generated corpus next to the
//! paper's §6.1 numbers, to make the calibration auditable.
//!
//! Usage: `cargo run --release -p diffcode-bench --bin corpus_stats [n_projects] [seed]`

use corpus::corpus_stats;
use diffcode::Table;
use diffcode_bench::{config_from_args, header};

fn main() {
    let config = config_from_args(461);
    let corpus = corpus::generate(&config);
    let stats = corpus_stats(&corpus);

    header(&format!(
        "Corpus statistics — {} projects, seed {:#x}",
        config.n_projects, config.seed
    ));

    let mut table = Table::new(["quantity", "paper (§6.1)", "this corpus"]);
    table.row(["projects", "461", &stats.projects.to_string()]);
    table.row(["distinct users", "397", &stats.distinct_users.to_string()]);
    table.row([
        "code changes mined",
        "11,551",
        &stats.code_changes.to_string(),
    ]);
    table.row([
        "android projects",
        "(n/a, implied by R6)",
        &stats.android_projects.to_string(),
    ]);
    print!("{}", table.render());

    println!("\ncommits by category:");
    for (kind, count) in &stats.commits_by_kind {
        let pct = 100.0 * *count as f64 / stats.total_commits.max(1) as f64;
        println!("  {kind:<14} {count:>6}  ({pct:.1}%)");
    }
    println!(
        "\nsecurity-fix rate among crypto-touching commits: {:.2}%",
        100.0 * stats.fix_rate()
    );

    println!("\nprojects using each target class at HEAD:");
    for (class, count) in &stats.projects_using_class {
        let pct = 100.0 * *count as f64 / stats.projects.max(1) as f64;
        println!("  {class:<18} {count:>4}  ({pct:.1}%)");
    }
}
