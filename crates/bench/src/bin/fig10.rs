//! Figure 10: CryptoChecker rule violations over the checking corpus
//! (the paper checks 519 projects: 461 training + 58 newer).
//!
//! Usage: `cargo run --release -p diffcode-bench --bin fig10 [n_projects] [seed]`

use diffcode::Experiments;
use diffcode_bench::{config_from_args, header};

fn main() {
    let config = config_from_args(519);
    header(&format!(
        "Figure 10 — CryptoChecker over {} projects (seed {:#x})",
        config.n_projects, config.seed
    ));
    let mut exp = Experiments::new(corpus::generate(&config));
    let out = exp.figure10();
    print!("{}", out.table());
    println!(
        "\n{} of {} projects ({:.1}%) violate at least one rule (paper: >57%)",
        out.any_violation,
        out.total_projects,
        100.0 * out.any_violation as f64 / out.total_projects as f64
    );
}
