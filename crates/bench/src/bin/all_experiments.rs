//! Regenerates every table/figure in one run and prints them in paper
//! order. Mines the corpus once and reuses it across figures.
//!
//! All timings come from the observability layer: stages run under
//! [`obs::MetricsRegistry`] spans (the mining spans are the ones the
//! pipeline itself records, merged across worker shards) and the run
//! ends with the aggregated stage-latency table — no ad-hoc clock
//! arithmetic in the binary.
//!
//! Usage: `cargo run --release -p diffcode-bench --bin all_experiments [n_projects] [seed]
//! [--bench-json <path>]`
//!
//! `--bench-json` writes the run's metrics snapshot (per-stage latency
//! spans included) for CI's bench-regression gate.

use diffcode::Experiments;
use diffcode_bench::{
    bench_json_path, config_from_args, frontend_microbench, header, obs_overhead_microbench,
    render_span_table,
};
use obs::MetricsRegistry;

fn main() {
    let config = config_from_args(461);
    let mut metrics = MetricsRegistry::new();
    println!(
        "generating corpus: {} projects, seed {:#x}",
        config.n_projects, config.seed
    );
    let corpus = metrics.time("corpus.generate", || corpus::generate(&config));
    println!(
        "  {} projects, {} commits",
        corpus.projects.len(),
        corpus.total_commits()
    );
    // Cold front-end stage costs (frontend.* spans): the numbers the
    // bench-regression gate and the front-end speedup gate read from
    // the bench JSON.
    let (timed, passes) = frontend_microbench(&corpus, &mut metrics);
    for stage in ["lex", "parse", "analyze", "change"] {
        if let Some(span) = metrics.span(&format!("frontend.{stage}")) {
            println!(
                "  frontend.{stage}: {}/change cold ({timed} changes x {passes} passes)",
                obs::fmt_ns(span.mean_ns() / timed as u64),
            );
        }
    }
    // Histogram record-path overhead (obs.* spans): the full
    // record_span cost vs the bare span-stats upsert it extends, for
    // the EXPERIMENTS.md table and the CI --max-ratio gate.
    let (records, obs_passes) = obs_overhead_microbench(&mut metrics);
    for stage in ["span_stats_only", "record_span"] {
        if let Some(span) = metrics.span(&format!("obs.{stage}")) {
            println!(
                "  obs.{stage}: {}/record ({records} records x {obs_passes} passes)",
                obs::fmt_ns(span.mean_ns() / records as u64),
            );
        }
    }
    let mut exp = metrics.time("experiments.mine", || Experiments::new(corpus));
    metrics.merge(exp.metrics());
    println!(
        "  mined {} code changes -> {} usage changes in {}",
        exp.code_changes(),
        exp.mined_changes().len(),
        obs::fmt_ns(metrics.span("experiments.mine").map_or(0, |s| s.sum_ns)),
    );

    header("Figure 6 — usage changes per target API class after filtering");
    let fig6 = metrics.time("figures.fig6", || exp.figure6_table());
    print!("{fig6}");

    header("Figure 7 — fixes / bugs / non-semantic vs CL1–CL5");
    let fig7 = metrics.time("figures.fig7", || exp.figure7_table());
    print!("{fig7}");

    header("Figure 8 — Cipher dendrogram (clusters at cut 0.45)");
    let fig8 = metrics.time("figures.fig8", || exp.figure8("Cipher", 0.45));
    println!(
        "{} filtered changes, {} clusters; top clusters:",
        fig8.filtered.len(),
        fig8.elicitation.clusters.len()
    );
    for (i, cluster) in fig8.elicitation.clusters.iter().take(5).enumerate() {
        println!("\ncluster {} ({} members):", i + 1, cluster.members.len());
        print!("{}", cluster.representative);
    }

    header("Figure 9 — the 13 elicited security rules");
    print!("{}", diffcode::figure9_table());

    header("Figure 10 — CryptoChecker violations");
    let out = metrics.time("figures.fig10", || exp.figure10());
    print!("{}", out.table());
    println!(
        "\n{} of {} projects ({:.1}%) violate at least one rule (paper: >57%)",
        out.any_violation,
        out.total_projects,
        100.0 * out.any_violation as f64 / out.total_projects as f64
    );

    header("Stage latencies (MetricsRegistry spans)");
    print!("{}", render_span_table(&metrics));
    let total: u64 = [
        "corpus.generate",
        "experiments.mine",
        "figures.fig6",
        "figures.fig7",
        "figures.fig8",
        "figures.fig10",
    ]
    .iter()
    .filter_map(|name| metrics.span(name).map(|s| s.sum_ns))
    .sum();
    println!("\ntotal stage time: {}", obs::fmt_ns(total));

    if let Some(path) = bench_json_path() {
        if let Err(err) = std::fs::write(&path, metrics.to_json()) {
            eprintln!("error: writing {}: {err}", path.display());
            std::process::exit(2);
        }
        println!("bench metrics written to {}", path.display());
    }
}
