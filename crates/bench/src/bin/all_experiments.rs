//! Regenerates every table/figure in one run and prints them in paper
//! order. Mines the corpus once and reuses it across figures.
//!
//! Usage: `cargo run --release -p diffcode-bench --bin all_experiments [n_projects] [seed]`

use diffcode::Experiments;
use diffcode_bench::{config_from_args, header};

fn main() {
    let config = config_from_args(461);
    let started = std::time::Instant::now();
    println!(
        "generating corpus: {} projects, seed {:#x}",
        config.n_projects, config.seed
    );
    let corpus = corpus::generate(&config);
    println!(
        "  {} projects, {} commits",
        corpus.projects.len(),
        corpus.total_commits()
    );
    let exp_started = std::time::Instant::now();
    let mut exp = Experiments::new(corpus);
    println!(
        "  mined {} code changes -> {} usage changes in {:.1?}",
        exp.code_changes(),
        exp.mined_changes().len(),
        exp_started.elapsed()
    );

    header("Figure 6 — usage changes per target API class after filtering");
    print!("{}", exp.figure6_table());

    header("Figure 7 — fixes / bugs / non-semantic vs CL1–CL5");
    print!("{}", exp.figure7_table());

    header("Figure 8 — Cipher dendrogram (clusters at cut 0.45)");
    let fig8 = exp.figure8("Cipher", 0.45);
    println!(
        "{} filtered changes, {} clusters; top clusters:",
        fig8.filtered.len(),
        fig8.elicitation.clusters.len()
    );
    for (i, cluster) in fig8.elicitation.clusters.iter().take(5).enumerate() {
        println!("\ncluster {} ({} members):", i + 1, cluster.members.len());
        print!("{}", cluster.representative);
    }

    header("Figure 9 — the 13 elicited security rules");
    print!("{}", diffcode::figure9_table());

    header("Figure 10 — CryptoChecker violations");
    let out = exp.figure10();
    print!("{}", out.table());
    println!(
        "\n{} of {} projects ({:.1}%) violate at least one rule (paper: >57%)",
        out.any_violation,
        out.total_projects,
        100.0 * out.any_violation as f64 / out.total_projects as f64
    );

    println!("\ntotal wall time: {:.1?}", started.elapsed());
}
