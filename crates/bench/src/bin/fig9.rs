//! Figure 9: the 13 security rules elicited from the security fixes.
//!
//! Usage: `cargo run -p diffcode-bench --bin fig9`

use diffcode_bench::header;

fn main() {
    header("Figure 9 — security rules derived from Java Crypto API fixes");
    print!("{}", diffcode::figure9_table());
    println!(
        "\n{} rules; R2, R7, R9, R10, R11, R12 were previously documented, the rest are new.",
        rules::all_rules().len()
    );
}
