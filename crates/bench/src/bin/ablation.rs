//! Ablation study over the design choices DESIGN.md calls out:
//!
//! 1. **DAG construction depth** (paper: n = 5) — shallower DAGs lose
//!    nested features (e.g. the IV spec's constructor), deeper ones add
//!    nothing on this API surface.
//! 2. **Clustering linkage** (paper: complete) — single linkage chains
//!    unrelated fixes together; complete/average keep clusters tight.
//! 3. **Crypto-tailored base-type abstraction** (paper §3.3) — if
//!    configuration strings are collapsed to `⊤str` instead of being
//!    tracked exactly, most security fixes become invisible (their
//!    before/after features coincide) and are wrongly filtered as
//!    refactorings.
//!
//! Usage: `cargo run --release -p diffcode-bench --bin ablation [n_projects] [seed]`

use cluster::{agglomerate_matrix, usage_distance_matrix, Linkage};
use diffcode::{apply_filters, stage_changes, DiffCode, FilterStage, MinedUsageChange, Table};
use diffcode_bench::{config_from_args, header};
use usagegraph::{FeaturePath, UsageChange};

fn main() {
    let config = config_from_args(120);
    println!(
        "corpus: {} projects, seed {:#x}",
        config.n_projects, config.seed
    );
    let corpus = corpus::generate(&config);

    ablate_depth(&corpus);
    ablate_linkage(&corpus);
    ablate_abstraction(&corpus);
}

// ---------------------------------------------------------------------
// 1. DAG depth
// ---------------------------------------------------------------------

fn ablate_depth(corpus: &corpus::Corpus) {
    header("Ablation 1 — DAG construction depth (paper uses n = 5)");
    let mut table = Table::new([
        "depth",
        "usage changes",
        "semantic",
        "survivors",
        "fix commits surviving",
    ]);
    for depth in [2usize, 3, 5, 7] {
        let mut dc = DiffCode::with_depth(depth);
        let mined = dc.mine(corpus, &[]);
        let fix_surviving = fixes_surviving(&mined.changes);
        let total = mined.changes.len();
        let (kept, stats) = apply_filters(mined.changes);
        let _ = kept;
        table.row([
            depth.to_string(),
            total.to_string(),
            stats.after_fsame.to_string(),
            stats.after_fdup.to_string(),
            fix_surviving.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nexpected shape: depth 2 sees only method names (fixes that change\n\
         arguments vanish); depth 5 and 7 agree (nothing nests deeper here)."
    );
}

/// Number of generator-labelled fix commits with at least one semantic
/// usage change.
fn fixes_surviving(changes: &[MinedUsageChange]) -> usize {
    use std::collections::BTreeSet;
    let mut surviving: BTreeSet<&str> = BTreeSet::new();
    for (stage, change) in stage_changes(changes) {
        if change.meta.message.starts_with("Security:") && !matches!(stage, FilterStage::FSame) {
            surviving.insert(change.meta.commit.as_str());
        }
    }
    surviving.len()
}

// ---------------------------------------------------------------------
// 2. Linkage
// ---------------------------------------------------------------------

fn ablate_linkage(corpus: &corpus::Corpus) {
    header("Ablation 2 — clustering linkage (paper uses complete)");
    let mut dc = DiffCode::new();
    let mined = dc.mine(corpus, &[]);
    let cipher: Vec<MinedUsageChange> = mined
        .changes
        .into_iter()
        .filter(|c| c.class == "Cipher")
        .collect();
    let (filtered, _) = apply_filters(cipher);
    let changes: Vec<UsageChange> = filtered.iter().map(|c| c.change.clone()).collect();
    println!("{} filtered Cipher changes\n", changes.len());

    // All three linkages agglomerate over one shared distance matrix:
    // the pairwise distances do not depend on the linkage, so the
    // ablation pays for them once.
    let matrix = usage_distance_matrix(&changes);

    let mut table = Table::new(["linkage", "clusters@0.45", "largest", "max merge dist"]);
    for (name, linkage) in [
        ("single", Linkage::Single),
        ("average", Linkage::Average),
        ("complete", Linkage::Complete),
    ] {
        let dendrogram = agglomerate_matrix(&matrix, linkage);
        let clusters = dendrogram.cut(0.45);
        let largest = clusters.iter().map(Vec::len).max().unwrap_or(0);
        let max_dist = dendrogram
            .merges
            .last()
            .map(|m| format!("{:.3}", m.distance))
            .unwrap_or_else(|| "-".to_owned());
        table.row([
            name.to_owned(),
            clusters.len().to_string(),
            largest.to_string(),
            max_dist,
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nexpected shape: single linkage merges earlier (chains) giving fewer,\n\
         looser clusters; complete keeps the ECB-fix family tight."
    );
}

// ---------------------------------------------------------------------
// 3. Abstraction precision
// ---------------------------------------------------------------------

/// Collapses configuration-string labels to `⊤str`, simulating an
/// abstraction that does not keep string constants.
fn coarsen_path(path: &FeaturePath) -> FeaturePath {
    FeaturePath(
        path.labels()
            .iter()
            .map(|label| match label.split_once(':') {
                Some((prefix, value)) if prefix.starts_with("arg") && is_string_value(value) => {
                    usagegraph::Label::from(format!("{prefix}:\u{22a4}str"))
                }
                _ => label.clone(),
            })
            .collect(),
    )
}

fn is_string_value(value: &str) -> bool {
    if value.parse::<i64>().is_ok() {
        return false;
    }
    let atomic = [
        "constbyte",
        "constbyte[]",
        "\u{22a4}byte",
        "\u{22a4}byte[]",
        "\u{22a4}int",
        "\u{22a4}int[]",
        "\u{22a4}str",
        "\u{22a4}str[]",
        "\u{22a4}bool",
        "\u{22a4}obj",
        "\u{22a4}",
        "null",
        "true",
        "false",
    ];
    if atomic.contains(&value) {
        return false;
    }
    // Type names of nested objects keep their label; collapsing them
    // would also be wrong for a string-blind abstraction.
    if value.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && value.chars().all(|c| c.is_alphanumeric())
    {
        return false;
    }
    true
}

fn coarsen(change: &MinedUsageChange) -> MinedUsageChange {
    let mut out = change.clone();
    out.old_dag.paths = change.old_dag.paths.iter().map(coarsen_path).collect();
    out.new_dag.paths = change.new_dag.paths.iter().map(coarsen_path).collect();
    out.change = UsageChange {
        class: change.class.clone(),
        removed: usagegraph::removed(&out.old_dag, &out.new_dag),
        added: usagegraph::removed(&out.new_dag, &out.old_dag),
    };
    out
}

fn ablate_abstraction(corpus: &corpus::Corpus) {
    header("Ablation 3 — string-constant tracking (paper §3.3)");
    let mut dc = DiffCode::new();
    let mined = dc.mine(corpus, &[]);

    let precise_fixes = fixes_surviving(&mined.changes);
    let coarse: Vec<MinedUsageChange> = mined.changes.iter().map(coarsen).collect();
    let coarse_fixes = fixes_surviving(&coarse);

    let (_, precise_stats) = apply_filters(mined.changes);
    let (_, coarse_stats) = apply_filters(coarse);

    let mut table = Table::new([
        "abstraction",
        "semantic",
        "survivors",
        "fix commits surviving",
    ]);
    table.row([
        "exact strings (paper)".to_owned(),
        precise_stats.after_fsame.to_string(),
        precise_stats.after_fdup.to_string(),
        precise_fixes.to_string(),
    ]);
    table.row([
        "strings collapsed to \u{22a4}str".to_owned(),
        coarse_stats.after_fsame.to_string(),
        coarse_stats.after_fdup.to_string(),
        coarse_fixes.to_string(),
    ]);
    print!("{}", table.render());
    println!(
        "\nexpected shape: pure algorithm-string fixes (SHA-1 -> SHA-256, DES -> AES)\n\
         look like refactorings without exact strings and are wrongly filtered;\n\
         fixes that also change structure (adding an IV argument) survive."
    );
}
