//! Generalization beyond the paper's six classes (its concluding
//! claim: "while we focus on crypto APIs, the approach is general").
//!
//! This binary points the unchanged pipeline at a **seventh** target
//! class — `java.security.Signature` — and shows the same machinery
//! working end to end: mining, the filtering funnel, clustering, an
//! auto-suggested rule, and a DSL-defined checker rule, all without a
//! single line of new analysis code.
//!
//! Usage: `cargo run --release -p diffcode-bench --bin extension [n_projects] [seed]`

use diffcode::{apply_filters, elicit_auto, DiffCode, Table};
use diffcode_bench::{config_from_args, header};
use rules::{dsl, CheckedProject, ProjectContext};

fn main() {
    let config = config_from_args(200);
    println!(
        "corpus: {} projects, seed {:#x}",
        config.n_projects, config.seed
    );
    let corpus = corpus::generate(&config);

    // 1. Mine the new class with the existing pipeline.
    let mut dc = DiffCode::new();
    let mined = dc.mine(&corpus, &["Signature"]);
    header("Filtering funnel for the 7th class: Signature");
    let total = mined.changes.len();
    let (filtered, stats) = apply_filters(mined.changes);
    let mut table = Table::new([
        "Target API Class",
        "Usage Changes",
        "fsame",
        "fadd",
        "frem",
        "fdup",
    ]);
    table.row([
        "Signature".to_owned(),
        total.to_string(),
        stats.after_fsame.to_string(),
        stats.after_fadd.to_string(),
        stats.after_frem.to_string(),
        stats.after_fdup.to_string(),
    ]);
    print!("{}", table.render());

    // 2. Cluster and auto-suggest rules (silhouette-chosen cut).
    header("Clusters and auto-suggested rules");
    let elicitation = elicit_auto(&filtered);
    for (i, cluster) in elicitation.clusters.iter().enumerate() {
        println!("cluster {} ({} members):", i + 1, cluster.members.len());
        print!("{}", cluster.representative);
        println!("suggested rule:\n{}\n", cluster.suggested);
    }

    // 3. A checker rule for the new class, written in the Figure 9 DSL.
    header("DSL-defined rule checked across the corpus");
    let rule = dsl::parse_rule(
        "S1",
        "Do not sign with SHA-1 or MD5 based algorithms",
        "Signature : getInstance(X) \u{2227} (X=SHA1withRSA \u{2228} X=MD5withRSA)",
    )
    .expect("rule parses");
    println!("{} : {}", rule.id, rule.description);

    let mut applicable = 0usize;
    let mut matching = 0usize;
    for project in &corpus.projects {
        let usages: Vec<analysis::Usages> = project
            .head_files()
            .values()
            .filter_map(|src| dc.analyze_source(src).ok())
            .map(|rc| (*rc).clone())
            .collect();
        let checked = CheckedProject {
            name: project.full_name(),
            usages,
            context: ProjectContext::plain(),
        };
        let is_applicable = checked
            .usages
            .iter()
            .any(|u| rule.applicable(u, &checked.context));
        if is_applicable {
            applicable += 1;
            if checked
                .usages
                .iter()
                .any(|u| rule.matches(u, &checked.context))
            {
                matching += 1;
            }
        }
    }
    println!(
        "\napplicable: {applicable} projects ({:.1}%), matching: {matching} ({:.1}% of applicable)",
        100.0 * applicable as f64 / corpus.projects.len() as f64,
        if applicable == 0 {
            0.0
        } else {
            100.0 * matching as f64 / applicable as f64
        },
    );
    println!(
        "\nNo pipeline code changed for this experiment: the class name and one\n\
         DSL rule are the only inputs — the paper's generality claim, executed."
    );
}
