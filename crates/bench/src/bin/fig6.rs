//! Figure 6: usage changes per target API class after each filtering
//! stage.
//!
//! Usage: `cargo run --release -p diffcode-bench --bin fig6 [n_projects] [seed]`

use diffcode::Experiments;
use diffcode_bench::{config_from_args, header};

fn main() {
    let config = config_from_args(461);
    header(&format!(
        "Figure 6 — filtering funnel over {} projects (seed {:#x})",
        config.n_projects, config.seed
    ));
    let corpus = corpus::generate(&config);
    println!(
        "corpus: {} projects, {} commits",
        corpus.projects.len(),
        corpus.total_commits()
    );
    let exp = Experiments::new(corpus);
    println!(
        "mined {} code changes into {} usage changes\n",
        exp.code_changes(),
        exp.mined_changes().len()
    );
    print!("{}", exp.figure6_table());

    let rows = exp.figure6();
    let total: usize = rows.iter().map(|r| r.stats.total).sum();
    let after: usize = rows.iter().map(|r| r.stats.after_fdup).sum();
    println!(
        "\noverall: {total} usage changes -> {after} after all filters ({:.2}% filtered)",
        100.0 * (total - after) as f64 / total.max(1) as f64
    );
    println!("paper shape: >99% of usage changes filtered; a reviewable remainder per class");
}
