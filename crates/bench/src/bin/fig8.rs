//! Figure 8: hierarchical clustering of the filtered `Cipher` usage
//! changes; the ECB-fix cluster identifies rule R7.
//!
//! Usage: `cargo run --release -p diffcode-bench --bin fig8 [n_projects] [seed]`

use diffcode::Experiments;
use diffcode_bench::{config_from_args, header};

fn main() {
    let config = config_from_args(461);
    header(&format!(
        "Figure 8 — dendrogram of filtered Cipher usage changes ({} projects)",
        config.n_projects
    ));
    let exp = Experiments::new(corpus::generate(&config));
    let fig8 = exp.figure8("Cipher", 0.45);
    println!(
        "{} filtered Cipher changes, {} clusters at cut 0.45\n",
        fig8.filtered.len(),
        fig8.elicitation.clusters.len()
    );

    for (i, cluster) in fig8.elicitation.clusters.iter().take(10).enumerate() {
        println!(
            "--- cluster {} ({} members) ---",
            i + 1,
            cluster.members.len()
        );
        print!("{}", cluster.representative);
        println!();
    }

    // The paper's headline cluster: ECB-mode fixes merging into R7.
    let ecb_cluster = fig8.elicitation.clusters.iter().find(|c| {
        c.representative.removed.iter().any(|p| {
            let s = p.to_string();
            s.ends_with("arg1:AES") || s.contains("AES/ECB")
        })
    });
    match ecb_cluster {
        Some(c) => {
            println!(
                "ECB-fix cluster found with {} members -> elicits rule R7 (\"do not use ECB\")",
                c.members.len()
            );
            println!("auto-suggested predicate:\n{}", c.suggested);
        }
        None => println!("no ECB cluster found (corpus too small?)"),
    }

    // Beyond the paper: the silhouette-optimal cut needs no threshold.
    let auto = diffcode::elicit_auto(&fig8.filtered);
    println!(
        "\nsilhouette-chosen cut (no threshold): {} clusters, largest has {} members",
        auto.clusters.len(),
        auto.clusters.first().map(|c| c.members.len()).unwrap_or(0)
    );

    println!("\n=== Dendrogram ===\n");
    print!("{}", fig8.rendering);
}
