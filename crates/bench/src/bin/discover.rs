//! Fully automated rule discovery (paper §6.3 "On Automating Rule
//! Elicitation", taken to its conclusion): mine → filter → cluster →
//! auto-suggest a rule per cluster → check every suggested rule across
//! the corpus. The paper stops at manual inspection of the clusters;
//! this binary shows what the pipeline finds with no human in the loop.
//!
//! Usage: `cargo run --release -p diffcode-bench --bin discover [n_projects] [seed]`

use analysis::TARGET_CLASSES;
use diffcode::{DiffCode, Experiments, Table};
use diffcode_bench::{config_from_args, header};
use rules::SuggestedRule;

fn main() {
    let config = config_from_args(200);
    println!(
        "corpus: {} projects, seed {:#x}",
        config.n_projects, config.seed
    );
    let corpus = corpus::generate(&config);
    let exp = Experiments::new(corpus.clone());

    // Pre-analyze every project HEAD once for rule evaluation.
    let mut dc = DiffCode::new();
    let heads: Vec<(String, Vec<std::rc::Rc<analysis::Usages>>)> = corpus
        .projects
        .iter()
        .map(|p| {
            let usages = p
                .head_files()
                .values()
                .filter_map(|src| dc.analyze_source(src).ok())
                .collect();
            (p.full_name(), usages)
        })
        .collect();

    header("Automatically discovered rules (one per cluster, ≥2 members)");
    let mut table = Table::new([
        "class",
        "cluster size",
        "projects matching",
        "suggested predicate (first line)",
    ]);

    let mut discovered = 0usize;
    for class in TARGET_CLASSES {
        let fig8 = exp.figure8(class, 0.45);
        for cluster in &fig8.elicitation.clusters {
            if cluster.members.len() < 2 {
                continue;
            }
            discovered += 1;
            let rule = SuggestedRule::from_change(&cluster.representative);
            let matching = heads
                .iter()
                .filter(|(_, usages)| usages.iter().any(|u| rule.matches(u)))
                .count();
            let first_line = rule
                .to_string()
                .lines()
                .next()
                .unwrap_or_default()
                .to_owned();
            table.row([
                class.to_owned(),
                cluster.members.len().to_string(),
                format!(
                    "{matching} ({:.1}%)",
                    100.0 * matching as f64 / corpus.projects.len() as f64
                ),
                first_line,
            ]);
        }
    }
    print!("{}", table.render());
    println!(
        "\n{discovered} rules discovered without manual inspection.\n\
         The paper's manual step (§2, step 3) maps these clusters to the\n\
         Figure 9 rules — e.g. the AES/ECB cluster to R7, SHA-1 to R1."
    );
}
