//! The `frontend` group: cold per-change cost of each front-end stage
//! — lex-only, parse-only, analyze-only, and the full cold change
//! (both versions parsed, analyzed, and diffed into usage changes).
//!
//! These are the numbers the arena/zero-copy refactor is measured by;
//! `all_experiments` records the same stages as `frontend.*` metric
//! spans so CI's bench-regression gate can machine-check them.

use analysis::{analyze, ApiModel};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use diffcode_bench::cold_change;
use std::hint::black_box;

fn sample_changes() -> Vec<(String, String)> {
    let corpus = corpus::generate(&corpus::GeneratorConfig::small(4, 0xF00D));
    corpus
        .code_changes()
        .take(16)
        .map(|c| (c.old.to_owned(), c.new.to_owned()))
        .collect()
}

fn bench_frontend(c: &mut Criterion) {
    let changes = sample_changes();
    let api = ApiModel::standard();
    let total_bytes: u64 = changes
        .iter()
        .map(|(o, n)| (o.len() + n.len()) as u64)
        .sum();

    let mut group = c.benchmark_group("frontend");
    group.throughput(Throughput::Bytes(total_bytes));

    group.bench_function("lex", |b| {
        b.iter(|| {
            let mut tokens = 0usize;
            for (old, new) in &changes {
                tokens += javalang::lex(black_box(old)).unwrap().len();
                tokens += javalang::lex(black_box(new)).unwrap().len();
            }
            tokens
        })
    });

    group.bench_function("parse", |b| {
        b.iter(|| {
            let mut types = 0usize;
            for (old, new) in &changes {
                types += javalang::parse_snippet(black_box(old)).unwrap().types.len();
                types += javalang::parse_snippet(black_box(new)).unwrap().types.len();
            }
            types
        })
    });

    group.bench_function("analyze", |b| {
        let units: Vec<_> = changes
            .iter()
            .flat_map(|(old, new)| {
                [
                    javalang::parse_snippet(old).unwrap(),
                    javalang::parse_snippet(new).unwrap(),
                ]
            })
            .collect();
        b.iter(|| {
            units
                .iter()
                .map(|unit| analyze(black_box(unit), &api).events.len())
                .sum::<usize>()
        })
    });

    group.bench_function("change", |b| {
        b.iter(|| {
            changes
                .iter()
                .map(|(old, new)| cold_change(black_box(old), black_box(new), &api))
                .sum::<usize>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);
