//! Abstract-interpretation and DAG-construction throughput.

use analysis::{analyze, ApiModel};
use corpus::fixtures;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usagegraph::{dags_for_class, DEFAULT_MAX_DEPTH};

fn bench_analysis(c: &mut Criterion) {
    let api = ApiModel::standard();
    let unit = javalang::parse_compilation_unit(fixtures::FIGURE2_NEW).unwrap();
    c.bench_function("analysis/figure2_new", |b| {
        b.iter(|| analyze(black_box(&unit), &api).objects.len());
    });

    // A corpus-generated cipher module is larger and inter-procedural.
    let corpus = corpus::generate(&corpus::GeneratorConfig::small(12, 0xAB));
    let src = corpus
        .code_changes()
        .map(|ch| ch.new.to_owned())
        .find(|s| s.contains("Cipher.getInstance"))
        .expect("at least one cipher module in 12 projects");
    let unit = javalang::parse_compilation_unit(&src).unwrap();
    c.bench_function("analysis/generated_cipher_module", |b| {
        b.iter(|| analyze(black_box(&unit), &api).objects.len());
    });
}

fn bench_dag_construction(c: &mut Criterion) {
    let api = ApiModel::standard();
    let unit = javalang::parse_compilation_unit(fixtures::FIGURE2_NEW).unwrap();
    let usages = analyze(&unit, &api);
    c.bench_function("dag/build_all_cipher_dags", |b| {
        b.iter(|| dags_for_class(black_box(&usages), "Cipher", DEFAULT_MAX_DEPTH).len());
    });
}

fn bench_dag_distance(c: &mut Criterion) {
    let api = ApiModel::standard();
    let old = analyze(
        &javalang::parse_compilation_unit(fixtures::FIGURE2_OLD).unwrap(),
        &api,
    );
    let new = analyze(
        &javalang::parse_compilation_unit(fixtures::FIGURE2_NEW).unwrap(),
        &api,
    );
    let old_dags = dags_for_class(&old, "Cipher", DEFAULT_MAX_DEPTH);
    let new_dags = dags_for_class(&new, "Cipher", DEFAULT_MAX_DEPTH);
    c.bench_function("dag/iou_distance", |b| {
        b.iter(|| black_box(&old_dags[0]).distance(black_box(&new_dags[0])));
    });
}

criterion_group!(
    benches,
    bench_analysis,
    bench_dag_construction,
    bench_dag_distance
);
criterion_main!(benches);
