//! End-to-end pipeline throughput: mine + abstract + filter whole
//! corpora.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diffcode::{apply_filters, DiffCode};
use std::hint::black_box;

fn bench_mine(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/mine");
    group.sample_size(10);
    for n_projects in [2usize, 5, 10] {
        let corpus = corpus::generate(&corpus::GeneratorConfig::small(n_projects, 0xE2E));
        group.bench_with_input(
            BenchmarkId::from_parameter(n_projects),
            &corpus,
            |b, corpus| {
                b.iter(|| {
                    let mut dc = DiffCode::new();
                    dc.mine(black_box(corpus), &[]).changes.len()
                });
            },
        );
    }
    group.finish();
}

fn bench_filter(c: &mut Criterion) {
    let corpus = corpus::generate(&corpus::GeneratorConfig::small(10, 0xE2E));
    let mut dc = DiffCode::new();
    let mined = dc.mine(&corpus, &[]);
    c.bench_function("pipeline/filter", |b| {
        b.iter(|| apply_filters(black_box(mined.changes.clone())).1);
    });
}

fn bench_checker(c: &mut Criterion) {
    let mut exp =
        diffcode::Experiments::new(corpus::generate(&corpus::GeneratorConfig::small(10, 0xE2E)));
    let projects = exp.checked_projects();
    let checker = rules::CryptoChecker::standard();
    c.bench_function("pipeline/crypto_checker", |b| {
        b.iter(|| checker.check_all(black_box(&projects)).len());
    });
}

criterion_group!(benches, bench_mine, bench_filter, bench_checker);
criterion_main!(benches);
