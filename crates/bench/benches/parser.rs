//! Front-end throughput: lexing and parsing generated Java sources.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn sample_sources() -> Vec<(String, String)> {
    let corpus = corpus::generate(&corpus::GeneratorConfig::small(3, 0xBE));
    let mut out = Vec::new();
    for (i, change) in corpus.code_changes().take(3).enumerate() {
        out.push((format!("file{i}"), change.new.to_owned()));
    }
    // A large file: concatenate many classes.
    let big = out
        .iter()
        .enumerate()
        .map(|(i, (_, src))| {
            src.replace("public class", &format!("class Variant{i}X"))
                .replace("package", "// package")
        })
        .collect::<Vec<_>>()
        .join("\n");
    out.push(("large".to_owned(), big.repeat(8)));
    out
}

fn bench_lexer(c: &mut Criterion) {
    let sources = sample_sources();
    let mut group = c.benchmark_group("lexer");
    for (name, src) in &sources {
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), src, |b, src| {
            b.iter(|| javalang::lex(black_box(src)).unwrap().len());
        });
    }
    group.finish();
}

fn bench_parser(c: &mut Criterion) {
    let sources = sample_sources();
    let mut group = c.benchmark_group("parser");
    for (name, src) in &sources {
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), src, |b, src| {
            b.iter(|| {
                javalang::parse_compilation_unit(black_box(src))
                    .unwrap()
                    .types
                    .len()
            });
        });
    }
    group.finish();
}

fn bench_printer(c: &mut Criterion) {
    let (_, src) = &sample_sources()[0];
    let unit = javalang::parse_compilation_unit(src).unwrap();
    c.bench_function("printer/pretty_print", |b| {
        b.iter(|| javalang::pretty_print(black_box(&unit)).len());
    });
}

criterion_group!(benches, bench_lexer, bench_parser, bench_printer);
criterion_main!(benches);
