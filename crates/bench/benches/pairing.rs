//! Min-cost assignment scaling (the DAG pairing step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use usagegraph::matching::min_cost_assignment;

fn deterministic_matrix(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 10_000) as f64 / 10_000.0
    };
    (0..n).map(|_| (0..n).map(|_| next()).collect()).collect()
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for n in [4usize, 16, 64, 128] {
        let cost = deterministic_matrix(n, 0x5eed);
        group.bench_with_input(BenchmarkId::from_parameter(n), &cost, |b, cost| {
            b.iter(|| min_cost_assignment(black_box(cost)).1);
        });
    }
    group.finish();
}

fn bench_pair_dags(c: &mut Criterion) {
    // Realistic DAG pairing: several objects per version.
    let api = analysis::ApiModel::standard();
    let old = analysis::analyze(
        &javalang::parse_compilation_unit(corpus::fixtures::FIGURE2_OLD).unwrap(),
        &api,
    );
    let new = analysis::analyze(
        &javalang::parse_compilation_unit(corpus::fixtures::FIGURE2_NEW).unwrap(),
        &api,
    );
    let old_dags = usagegraph::dags_for_class(&old, "Cipher", 5);
    let new_dags = usagegraph::dags_for_class(&new, "Cipher", 5);
    c.bench_function("pairing/figure2_cipher", |b| {
        b.iter(|| {
            usagegraph::pair_dags(
                black_box(old_dags.clone()),
                black_box(new_dags.clone()),
                "Cipher",
            )
            .len()
        });
    });
}

criterion_group!(benches, bench_hungarian, bench_pair_dags);
criterion_main!(benches);
