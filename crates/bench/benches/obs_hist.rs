//! Histogram record-path overhead: what every `record_span` call now
//! pays on top of the plain min/max/sum span statistics, plus the
//! quantile/merge costs the serve `/status` endpoint exercises and the
//! disabled-logger event cost (inert builder, no rendering).
//!
//! The paired `span_stats_only`/`record_span` measurement is what the
//! EXPERIMENTS.md overhead table and the CI `--max-ratio` gate pin:
//! the full registry record path (span stats + histogram) must stay
//! within 2x of the bare span-stats upsert.

use criterion::{criterion_group, criterion_main, Criterion};
use obs::{Histogram, LogLevel, Logger, MetricsRegistry, SpanStats};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Duration;

/// Deterministic latency-shaped samples (xorshift; spans ns..ms).
fn sample_durations(n: usize) -> Vec<Duration> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Duration::from_nanos(state % 10_000_000)
        })
        .collect()
}

fn bench_obs_hist(c: &mut Criterion) {
    let durations = sample_durations(4096);
    let mut group = c.benchmark_group("obs_hist");

    // The pre-histogram cost model: a BTreeMap<String, SpanStats>
    // upsert per sample, nothing else.
    group.bench_function("span_stats_only", |b| {
        b.iter(|| {
            let mut spans: BTreeMap<String, SpanStats> = BTreeMap::new();
            for d in &durations {
                spans
                    .entry("serve.request".to_owned())
                    .or_default()
                    .record(*d);
            }
            black_box(spans.len())
        });
    });

    // The full registry path: span stats + histogram bucket increment.
    group.bench_function("record_span", |b| {
        b.iter(|| {
            let mut registry = MetricsRegistry::new();
            for d in &durations {
                registry.record_span("serve.request", *d);
            }
            black_box(registry.hist("serve.request").map(Histogram::count))
        });
    });

    group.bench_function("hist_record", |b| {
        b.iter(|| {
            let mut hist = Histogram::new();
            for d in &durations {
                hist.record(d.as_nanos() as u64);
            }
            black_box(hist.count())
        });
    });

    let mut full = Histogram::new();
    for d in &durations {
        full.record(d.as_nanos() as u64);
    }
    group.bench_function("quantile", |b| {
        b.iter(|| {
            let h = black_box(&full);
            (h.quantile(0.5), h.quantile(0.99), h.quantile(0.999))
        });
    });

    group.bench_function("merge", |b| {
        b.iter(|| {
            let mut acc = Histogram::new();
            acc.merge(black_box(&full));
            acc.merge(black_box(&full));
            black_box(acc.count())
        });
    });

    // A disabled logger must keep an event alloc-free and render
    // nothing; this is the cost every instrumented call site pays in a
    // library embed.
    let log = Logger::disabled();
    group.bench_function("logger_disabled_event", |b| {
        b.iter(|| {
            for d in &durations {
                log.event(LogLevel::Info, "serve.access")
                    .u64("latency_ns", d.as_nanos() as u64)
                    .str("outcome", "ok")
                    .emit();
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_obs_hist);
criterion_main!(benches);
