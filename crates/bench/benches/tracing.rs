//! Tracing overhead: the same parallel mining run with the trace sink
//! disabled, fully enabled, and sampled.
//!
//! The disabled case is the one the <5% overhead budget applies to —
//! every instrumentation point degrades to an `is_enabled` branch, so
//! a disabled-sink run must be indistinguishable from the pre-tracing
//! pipeline (which is what the committed bench baseline pins).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diffcode::mine_parallel_traced;
use obs::{MetricsRegistry, TraceSink};
use std::hint::black_box;

fn bench_tracing_overhead(c: &mut Criterion) {
    let corpus = corpus::generate(&corpus::GeneratorConfig::small(8, 0xE2E));
    let mut group = c.benchmark_group("tracing/mine");
    group.sample_size(10);
    type MakeSink = fn() -> TraceSink;
    let cases: [(&str, MakeSink); 3] = [
        ("off", TraceSink::disabled),
        ("on", || TraceSink::enabled(1)),
        ("sampled-100", || TraceSink::enabled(100)),
    ];
    for (label, make_sink) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(label), &corpus, |b, corpus| {
            b.iter(|| {
                let mut registry = MetricsRegistry::new();
                let mut trace = make_sink();
                let result = mine_parallel_traced(
                    black_box(corpus),
                    &[],
                    4,
                    &mut registry,
                    None,
                    &mut trace,
                );
                (result.changes.len(), trace.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tracing_overhead);
criterion_main!(benches);
