//! Distance computation and agglomerative clustering scaling.

use cluster::{agglomerate, usage_dist};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use usagegraph::{FeaturePath, UsageChange};

fn synthetic_changes(n: usize) -> Vec<UsageChange> {
    let modes = ["AES/ECB", "AES/CBC", "AES/GCM", "DES", "RSA", "Blowfish"];
    (0..n)
        .map(|i| {
            let from = modes[i % modes.len()];
            let to = modes[(i + 1 + i / modes.len()) % modes.len()];
            UsageChange {
                class: "Cipher".to_owned(),
                removed: vec![FeaturePath(vec![
                    "Cipher".into(),
                    "getInstance".into(),
                    format!("arg1:{from}"),
                ])],
                added: vec![FeaturePath(vec![
                    "Cipher".into(),
                    "getInstance".into(),
                    format!("arg1:{to}"),
                ])],
            }
        })
        .collect()
}

fn bench_usage_dist(c: &mut Criterion) {
    let changes = synthetic_changes(2);
    c.bench_function("distance/usage_dist", |b| {
        b.iter(|| usage_dist(black_box(&changes[0]), black_box(&changes[1])));
    });
}

fn bench_agglomerate(c: &mut Criterion) {
    let mut group = c.benchmark_group("agglomerate");
    group.sample_size(20);
    for n in [10usize, 40, 80] {
        let changes = synthetic_changes(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &changes, |b, changes| {
            b.iter(|| {
                agglomerate(changes.len(), |i, j| {
                    usage_dist(&changes[i], &changes[j])
                })
                .merges
                .len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_usage_dist, bench_agglomerate);
criterion_main!(benches);
