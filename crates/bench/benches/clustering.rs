//! Distance computation and agglomerative clustering scaling.
//!
//! The agglomeration group compares the retained naive quadratic-scan
//! reference against the nn-chain fast path over the *same* shared
//! [`DistanceMatrix`], so the measured gap is purely algorithmic. The
//! naive loop recomputes cluster distances from leaf members every
//! round (O(n³) and beyond), which is why it is only benchmarked at
//! small sizes; the chain runs comfortably at n = 2000.

use cluster::{
    agglomerate_matrix, agglomerate_naive, matrix_from_prior, usage_dist, usage_distance_matrix,
    DistanceMatrix, Linkage,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use usagegraph::{FeaturePath, UsageChange};

fn synthetic_changes(n: usize) -> Vec<UsageChange> {
    let modes = ["AES/ECB", "AES/CBC", "AES/GCM", "DES", "RSA", "Blowfish"];
    (0..n)
        .map(|i| {
            let from = modes[i % modes.len()];
            let to = modes[(i + 1 + i / modes.len()) % modes.len()];
            UsageChange {
                class: "Cipher".to_owned(),
                removed: vec![FeaturePath(vec![
                    "Cipher".into(),
                    "getInstance".into(),
                    format!("arg1:{from}").into(),
                ])],
                added: vec![FeaturePath(vec![
                    "Cipher".into(),
                    "getInstance".into(),
                    format!("arg1:{to}").into(),
                ])],
            }
        })
        .collect()
}

/// A cheap synthetic matrix in generic position, so large-n benches
/// measure agglomeration itself rather than `usage_dist`.
fn synthetic_matrix(n: usize) -> DistanceMatrix {
    DistanceMatrix::from_fn(n, |i, j| {
        let x = ((i * 2654435761) ^ (j * 40503)) % 100_003;
        0.5 + x as f64 / 100_003.0
    })
}

fn bench_usage_dist(c: &mut Criterion) {
    let changes = synthetic_changes(2);
    c.bench_function("distance/usage_dist", |b| {
        b.iter(|| usage_dist(black_box(&changes[0]), black_box(&changes[1])));
    });
}

/// The shared-matrix build: parallel pairwise `usage_dist` with the
/// memoizing label cache.
fn bench_matrix_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_matrix");
    group.sample_size(10);
    for n in [40usize, 160] {
        let changes = synthetic_changes(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &changes, |b, changes| {
            b.iter(|| usage_distance_matrix(black_box(changes)).len());
        });
    }
    group.finish();
}

fn bench_agglomerate(c: &mut Criterion) {
    let mut group = c.benchmark_group("agglomerate");
    group.sample_size(20);
    for n in [10usize, 40, 80, 160] {
        let matrix = synthetic_matrix(n);
        group.bench_with_input(BenchmarkId::new("naive", n), &matrix, |b, m| {
            b.iter(|| {
                agglomerate_naive(m.len(), |i, j| m.get(i, j), Linkage::Complete)
                    .merges
                    .len()
            });
        });
        group.bench_with_input(BenchmarkId::new("nn_chain", n), &matrix, |b, m| {
            b.iter(|| agglomerate_matrix(m, Linkage::Complete).merges.len());
        });
    }
    group.finish();
}

/// The nn-chain at corpus scale — the size the naive loop cannot reach.
fn bench_nn_chain_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_chain_large");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let matrix = synthetic_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &matrix, |b, m| {
            b.iter(|| agglomerate_matrix(m, Linkage::Complete).merges.len());
        });
    }
    group.finish();
}

/// Warm re-cluster scaling: with a fixed number of NEW changes grown
/// onto the corpus, the warm matrix build should cost O(NEW · n)
/// `usage_dist` calls (the new rows), not O(n²) — so doubling n should
/// roughly double warm time, while the cold contrast at the same n
/// pays the full quadratic bill. The prior is the cold matrix with the
/// new rows blanked to `NaN`, exactly what the persisted cell log
/// reconstructs on a warm run.
fn bench_warm_recluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("warm_recluster");
    group.sample_size(10);
    const NEW: usize = 20;
    for n in [500usize, 2000] {
        let changes = synthetic_changes(n);
        let base = n - NEW;
        let cold = DistanceMatrix::from_fn(n, |i, j| usage_dist(&changes[i], &changes[j]));
        let mut prior = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                prior.push(if j < base { cold.get(i, j) } else { f64::NAN });
            }
        }
        group.bench_with_input(BenchmarkId::new("warm", n), &prior, |b, prior| {
            b.iter(|| {
                matrix_from_prior(n, black_box(prior), None, |i, j| {
                    usage_dist(&changes[i], &changes[j])
                })
                .expect("within budget")
                .computed
                .len()
            });
        });
        // The cold contrast pays quadratic usage_dist cost, so keep it
        // to the small size (the 2000-cold point is the distance_matrix
        // story, not this one).
        if n == 500 {
            group.bench_with_input(BenchmarkId::new("cold", n), &changes, |b, changes| {
                b.iter(|| {
                    let all_nan = vec![f64::NAN; n * (n - 1) / 2];
                    matrix_from_prior(n, black_box(&all_nan), None, |i, j| {
                        usage_dist(&changes[i], &changes[j])
                    })
                    .expect("within budget")
                    .computed
                    .len()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_usage_dist,
    bench_matrix_build,
    bench_agglomerate,
    bench_nn_chain_large,
    bench_warm_recluster
);
criterion_main!(benches);
