//! Distance computation and agglomerative clustering scaling.
//!
//! The agglomeration group compares the retained naive quadratic-scan
//! reference against the nn-chain fast path over the *same* shared
//! [`DistanceMatrix`], so the measured gap is purely algorithmic. The
//! naive loop recomputes cluster distances from leaf members every
//! round (O(n³) and beyond), which is why it is only benchmarked at
//! small sizes; the chain runs comfortably at n = 2000.

use cluster::{
    agglomerate_matrix, agglomerate_naive, usage_dist, usage_distance_matrix, DistanceMatrix,
    Linkage,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use usagegraph::{FeaturePath, UsageChange};

fn synthetic_changes(n: usize) -> Vec<UsageChange> {
    let modes = ["AES/ECB", "AES/CBC", "AES/GCM", "DES", "RSA", "Blowfish"];
    (0..n)
        .map(|i| {
            let from = modes[i % modes.len()];
            let to = modes[(i + 1 + i / modes.len()) % modes.len()];
            UsageChange {
                class: "Cipher".to_owned(),
                removed: vec![FeaturePath(vec![
                    "Cipher".into(),
                    "getInstance".into(),
                    format!("arg1:{from}").into(),
                ])],
                added: vec![FeaturePath(vec![
                    "Cipher".into(),
                    "getInstance".into(),
                    format!("arg1:{to}").into(),
                ])],
            }
        })
        .collect()
}

/// A cheap synthetic matrix in generic position, so large-n benches
/// measure agglomeration itself rather than `usage_dist`.
fn synthetic_matrix(n: usize) -> DistanceMatrix {
    DistanceMatrix::from_fn(n, |i, j| {
        let x = ((i * 2654435761) ^ (j * 40503)) % 100_003;
        0.5 + x as f64 / 100_003.0
    })
}

fn bench_usage_dist(c: &mut Criterion) {
    let changes = synthetic_changes(2);
    c.bench_function("distance/usage_dist", |b| {
        b.iter(|| usage_dist(black_box(&changes[0]), black_box(&changes[1])));
    });
}

/// The shared-matrix build: parallel pairwise `usage_dist` with the
/// memoizing label cache.
fn bench_matrix_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_matrix");
    group.sample_size(10);
    for n in [40usize, 160] {
        let changes = synthetic_changes(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &changes, |b, changes| {
            b.iter(|| usage_distance_matrix(black_box(changes)).len());
        });
    }
    group.finish();
}

fn bench_agglomerate(c: &mut Criterion) {
    let mut group = c.benchmark_group("agglomerate");
    group.sample_size(20);
    for n in [10usize, 40, 80, 160] {
        let matrix = synthetic_matrix(n);
        group.bench_with_input(BenchmarkId::new("naive", n), &matrix, |b, m| {
            b.iter(|| {
                agglomerate_naive(m.len(), |i, j| m.get(i, j), Linkage::Complete)
                    .merges
                    .len()
            });
        });
        group.bench_with_input(BenchmarkId::new("nn_chain", n), &matrix, |b, m| {
            b.iter(|| agglomerate_matrix(m, Linkage::Complete).merges.len());
        });
    }
    group.finish();
}

/// The nn-chain at corpus scale — the size the naive loop cannot reach.
fn bench_nn_chain_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_chain_large");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let matrix = synthetic_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &matrix, |b, m| {
            b.iter(|| agglomerate_matrix(m, Linkage::Complete).merges.len());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_usage_dist,
    bench_matrix_build,
    bench_agglomerate,
    bench_nn_chain_large
);
criterion_main!(benches);
