//! The append-log cache store.
//!
//! On disk a cache is one file, `<dir>/cache.log`: a magic header
//! followed by self-describing records
//! `(key: u128, version: u32, payload_len: u64, payload, fnv64(payload))`.
//! Appending is the only write pattern a mining run needs, so the
//! format never rewrites in place; [`CacheStore::vacuum`] produces a
//! compacted file when asked.
//!
//! Crash safety is by construction: a flush that dies mid-record
//! leaves a truncated tail that fails its length or checksum check, so
//! the next [`CacheStore::open`] indexes every record up to the tail
//! and ignores the rest; the next [`CacheStore::flush`] truncates the
//! garbage before appending. Corruption in the *middle* of the log —
//! a checksum-failed record with valid records after it, i.e. bitrot
//! rather than a crash — is a different animal: truncating there would
//! destroy good data, so the strict open refuses with
//! [`StoreError::CorruptRecord`] and the tolerant
//! [`CacheStore::open_tolerant`] + [`CacheStore::vacuum`] path is how
//! such a log is inspected and repaired. Entries are immutable once
//! written — a duplicate key appended later supersedes the earlier
//! record at load time (last write wins), which vacuum then compacts
//! away.

use crate::fingerprint::Fingerprint;
use crate::wire::{Reader, WireError, Writer};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Magic bytes opening every cache log (format, not analysis, version;
/// bump only on layout change).
const MAGIC: &[u8] = b"DIFFCACHE1\n";

/// The default namespace: `<dir>/cache.log`, the mining cache's home.
const DEFAULT_NS: &str = "cache";

/// The log file name for `namespace` inside a cache directory. Each
/// namespace is an independent append log — same directory, same wire
/// format, separate file — so two subsystems (mining outcomes and
/// clustering distances, say) can share a cache dir without sharing a
/// key space or an analysis version.
fn log_name(namespace: &str) -> String {
    assert!(
        !namespace.is_empty()
            && namespace
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'),
        "cache namespace must be a non-empty [A-Za-z0-9_-]+ token, got {namespace:?}"
    );
    format!("{namespace}.log")
}

/// FNV-1a 64 of `bytes` — the per-record payload checksum.
fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Why a cache store could not be opened.
///
/// Distinguishes plain filesystem failures from *mid-log corruption*:
/// a record whose framing is intact but whose payload fails its
/// checksum, with valid records after it. Tail damage (a crash
/// mid-append) is not an error — it is truncated away on the next
/// flush — but a bad record in the middle means real data loss is on
/// the table, so the strict [`CacheStore::open`] refuses rather than
/// silently dropping the valid records that follow it.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure creating the directory or reading the log.
    Io(io::Error),
    /// A record in the middle of the log failed its checksum while
    /// later records are still valid.
    CorruptRecord {
        /// Byte offset of the corrupt record within the log file.
        offset: u64,
        /// Valid records indexed before the corrupt one.
        valid_before: usize,
        /// Valid records found after it — the data a naive
        /// truncate-at-first-error load would have dropped.
        valid_after: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "cache I/O error: {err}"),
            StoreError::CorruptRecord {
                offset,
                valid_before,
                valid_after,
            } => write!(
                f,
                "cache log record at byte {offset} failed its checksum with \
                 {valid_after} valid record(s) after it ({valid_before} before); \
                 refusing to drop them silently — run `cache verify` to inspect \
                 the damage and `cache vacuum` to rebuild a clean log"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(err) => Some(err),
            StoreError::CorruptRecord { .. } => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(err: io::Error) -> Self {
        StoreError::Io(err)
    }
}

/// One indexed entry: the analysis version it was written under and
/// its serialized payload.
#[derive(Debug, Clone)]
struct Entry {
    version: u32,
    payload: Vec<u8>,
}

/// The result of a cache lookup.
#[derive(Debug, PartialEq, Eq)]
pub enum Lookup<'a> {
    /// The key is present at the store's analysis version.
    Hit(&'a [u8]),
    /// The key is present but was written under a different analysis
    /// version — the cached outcome may no longer be what the pipeline
    /// would compute, so it must be recomputed.
    StaleVersion,
    /// The key is absent.
    Miss,
}

/// Write log for one mining shard: an ordered append buffer plus its
/// own lookup index, so a shard sees its *own* writes (duplicate file
/// pairs within a shard hit on the second encounter) without any
/// shared mutable state. Dropped without being absorbed — e.g. when
/// the shard's worker thread dies — its entries simply never reach the
/// store, which is exactly what the accounting wants: a dead shard's
/// changes were folded in as skips, so caching their half-finished
/// outcomes would let a later warm run disagree with the cold one.
#[derive(Debug, Default)]
pub struct ShardLog {
    order: Vec<Fingerprint>,
    entries: HashMap<u128, Vec<u8>>,
}

impl ShardLog {
    /// An empty log.
    pub fn new() -> Self {
        ShardLog::default()
    }

    /// Records `payload` for `key` (first write wins within a shard —
    /// the pipeline only records a key it just missed on).
    pub fn record(&mut self, key: Fingerprint, payload: Vec<u8>) {
        if !self.entries.contains_key(&key.0) {
            self.order.push(key);
            self.entries.insert(key.0, payload);
        }
    }

    /// This shard's own payload for `key`, if it wrote one.
    pub fn get(&self, key: Fingerprint) -> Option<&[u8]> {
        self.entries.get(&key.0).map(Vec::as_slice)
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Aggregate facts about a store, for `diffcode cache stats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Indexed entries at the store's analysis version.
    pub current_entries: usize,
    /// Indexed entries written under another analysis version.
    pub stale_entries: usize,
    /// Well-formed records in the log — those scanned at open plus
    /// those flushed since (superseded duplicates included).
    pub records_loaded: usize,
    /// Bytes of unreadable tail ignored at open.
    pub corrupt_tail_bytes: u64,
    /// Checksum-failed mid-log records skipped by a tolerant open
    /// (always zero for a store opened strictly).
    pub corrupt_records: usize,
    /// Size of the log file in bytes (as of open plus flushed writes).
    pub file_bytes: u64,
    /// Entries recorded but not yet flushed.
    pub pending_entries: usize,
}

/// What [`CacheStore::vacuum`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VacuumReport {
    /// Entries kept (current version, one record per key).
    pub kept: usize,
    /// Indexed entries dropped for carrying a stale version.
    pub dropped_stale: usize,
    /// On-disk records dropped as superseded duplicates or corrupt.
    pub dropped_records: usize,
    /// File size before compaction.
    pub bytes_before: u64,
    /// File size after compaction.
    pub bytes_after: u64,
}

/// What [`verify`] found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Well-formed records (checksum passed).
    pub valid_records: usize,
    /// Records whose payload failed its checksum.
    pub checksum_failures: usize,
    /// Bytes of unreadable tail after the last well-formed record.
    pub corrupt_tail_bytes: u64,
    /// Distinct keys among valid records.
    pub distinct_keys: usize,
    /// Record count per analysis version, ascending.
    pub versions: BTreeMap<u32, usize>,
}

impl VerifyReport {
    /// `true` when the log has no integrity problems.
    pub fn is_clean(&self) -> bool {
        self.checksum_failures == 0 && self.corrupt_tail_bytes == 0
    }
}

/// A persistent content-addressed store bound to one analysis version.
#[derive(Debug)]
pub struct CacheStore {
    dir: PathBuf,
    /// Log file name within `dir` — `<namespace>.log`.
    log_name: String,
    version: u32,
    index: HashMap<u128, Entry>,
    pending: Vec<Fingerprint>,
    /// Byte length of the well-formed prefix of the log file; flush
    /// truncates to this before appending.
    valid_len: u64,
    records_loaded: usize,
    corrupt_tail_bytes: u64,
    corrupt_records: usize,
}

impl CacheStore {
    /// Opens (creating if needed) the cache under `dir`, indexing every
    /// well-formed record of its log. `version` is the caller's current
    /// analysis version: entries written under any other version will
    /// report [`Lookup::StaleVersion`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures creating the directory
    /// or reading the log. A corrupt *tail* (crash mid-append) is not
    /// an error — unreadable trailing bytes are skipped, reported via
    /// [`CacheStore::stats`], and truncated on the next flush. A
    /// checksum-failed record in the *middle* of the log, with valid
    /// records after it, fails with [`StoreError::CorruptRecord`]
    /// instead of silently dropping those later records; use
    /// [`CacheStore::open_tolerant`] (and then
    /// [`CacheStore::vacuum`]) to inspect and repair such a log.
    pub fn open(dir: &Path, version: u32) -> Result<CacheStore, StoreError> {
        CacheStore::open_ns(dir, version, DEFAULT_NS)
    }

    /// Opens the log of `namespace` under `dir` — `<dir>/<namespace>.log`.
    /// [`CacheStore::open`] is the `"cache"` namespace; other subsystems
    /// get their own log (and so their own key space and analysis
    /// version) in the same directory.
    ///
    /// # Errors
    ///
    /// As [`CacheStore::open`].
    ///
    /// # Panics
    ///
    /// If `namespace` is not a non-empty `[A-Za-z0-9_-]+` token (it
    /// names a file inside `dir`; path separators would escape it).
    pub fn open_ns(dir: &Path, version: u32, namespace: &str) -> Result<CacheStore, StoreError> {
        CacheStore::open_inner(dir, version, namespace, false)
    }

    /// Opens the cache under `dir` like [`CacheStore::open`], but skips
    /// checksum-failed mid-log records (counting them in
    /// [`CacheStats::corrupt_records`]) instead of failing. This is the
    /// inspection/repair path: `cache stats` and `cache vacuum` must
    /// work on a damaged log, and vacuum's rewrite is how the damage is
    /// healed.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] only.
    pub fn open_tolerant(dir: &Path, version: u32) -> Result<CacheStore, StoreError> {
        CacheStore::open_ns_tolerant(dir, version, DEFAULT_NS)
    }

    /// [`CacheStore::open_ns`] with the tolerant (inspection/repair)
    /// load of [`CacheStore::open_tolerant`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] only.
    ///
    /// # Panics
    ///
    /// As [`CacheStore::open_ns`], on a malformed namespace.
    pub fn open_ns_tolerant(
        dir: &Path,
        version: u32,
        namespace: &str,
    ) -> Result<CacheStore, StoreError> {
        CacheStore::open_inner(dir, version, namespace, true)
    }

    fn open_inner(
        dir: &Path,
        version: u32,
        namespace: &str,
        tolerant: bool,
    ) -> Result<CacheStore, StoreError> {
        std::fs::create_dir_all(dir)?;
        let mut store = CacheStore {
            dir: dir.to_owned(),
            log_name: log_name(namespace),
            version,
            index: HashMap::new(),
            pending: Vec::new(),
            valid_len: 0,
            records_loaded: 0,
            corrupt_tail_bytes: 0,
            corrupt_records: 0,
        };
        let log = store.log_path();
        if log.exists() {
            let bytes = std::fs::read(&log)?;
            store.load(&bytes, tolerant)?;
        }
        Ok(store)
    }

    /// The path of the backing log file.
    pub fn log_path(&self) -> PathBuf {
        self.dir.join(&self.log_name)
    }

    /// The analysis version lookups are checked against.
    pub fn version(&self) -> u32 {
        self.version
    }

    fn load(&mut self, bytes: &[u8], tolerant: bool) -> Result<(), StoreError> {
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            // Foreign or empty file: treat everything as corrupt tail
            // so flush rewrites from scratch.
            self.corrupt_tail_bytes = bytes.len() as u64;
            self.valid_len = 0;
            return Ok(());
        }
        let mut reader = Reader::new(&bytes[MAGIC.len()..]);
        let mut consumed = MAGIC.len() as u64;
        // A checksum-failed record whose *framing* parsed is only a
        // benign "corrupt tail" if nothing valid follows it. Track how
        // many such records a later valid record turns into mid-log
        // corruption (`skipped`), versus ones still waiting at the end
        // of the scan (`pending` — absorbed into the corrupt tail).
        let mut first_corrupt: Option<(u64, usize)> = None; // (offset, valid records before it)
        let mut valid_seen = 0usize;
        let mut pending_corrupt = 0usize;
        let mut skipped_corrupt = 0usize;
        while !reader.is_exhausted() {
            let record_start = (bytes.len() - reader.remaining()) as u64;
            match read_record(&mut reader) {
                Ok(RawRecord::Valid {
                    key,
                    version,
                    payload,
                }) => {
                    consumed = (bytes.len() - reader.remaining()) as u64;
                    self.records_loaded += 1;
                    valid_seen += 1;
                    skipped_corrupt += pending_corrupt;
                    pending_corrupt = 0;
                    // Last write wins: a re-recorded key supersedes.
                    self.index.insert(key.0, Entry { version, payload });
                }
                Ok(RawRecord::BadChecksum) => {
                    // Framing intact, payload untrustworthy. Keep
                    // scanning: whether this is tail damage or mid-log
                    // corruption depends on what comes after.
                    if first_corrupt.is_none() {
                        first_corrupt = Some((record_start, valid_seen));
                    }
                    pending_corrupt += 1;
                }
                // Structural damage: everything from here is tail.
                Err(_) => break,
            }
        }
        if skipped_corrupt > 0 {
            if let (false, Some((offset, valid_before))) = (tolerant, first_corrupt) {
                return Err(StoreError::CorruptRecord {
                    offset,
                    valid_before,
                    valid_after: valid_seen - valid_before,
                });
            }
            self.corrupt_records = skipped_corrupt;
        }
        self.valid_len = consumed;
        self.corrupt_tail_bytes = bytes.len() as u64 - consumed;
        Ok(())
    }

    /// Looks up `key`.
    pub fn get(&self, key: Fingerprint) -> Lookup<'_> {
        match self.index.get(&key.0) {
            Some(entry) if entry.version == self.version => Lookup::Hit(&entry.payload),
            Some(_) => Lookup::StaleVersion,
            None => Lookup::Miss,
        }
    }

    /// Records `payload` for `key` at the store's version. Visible to
    /// [`CacheStore::get`] immediately; durable after
    /// [`CacheStore::flush`].
    pub fn insert(&mut self, key: Fingerprint, payload: Vec<u8>) {
        // Callers only insert on a miss (the mining loop checks first;
        // `absorb` skips keys that already hit), so a key is pending at
        // most once per flush.
        self.index.insert(
            key.0,
            Entry {
                version: self.version,
                payload,
            },
        );
        self.pending.push(key);
    }

    /// Merges a shard's write log into the store (in the shard's append
    /// order, so flushed files are deterministic for a deterministic
    /// mining order).
    pub fn absorb(&mut self, log: ShardLog) {
        let ShardLog { order, mut entries } = log;
        for key in order {
            if let Some(payload) = entries.remove(&key.0) {
                // Skip keys a previously-absorbed shard already wrote:
                // identical content produces identical payloads, so
                // first-wins and last-wins agree; not re-appending just
                // keeps the log smaller.
                if matches!(self.get(key), Lookup::Hit(_)) {
                    continue;
                }
                self.insert(key, payload);
            }
        }
    }

    /// Appends every pending entry to the log file. Returns the number
    /// of records written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; pending entries stay queued on error.
    pub fn flush(&mut self) -> io::Result<usize> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        let path = self.log_path();
        let fresh = !path.exists() || self.valid_len == 0;
        // Not truncate(true): the well-formed prefix must survive. The
        // set_len below drops exactly the corrupt tail instead.
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)?;
        // Drop any corrupt tail (or foreign content) before appending.
        file.set_len(if fresh { 0 } else { self.valid_len })?;
        let mut out = io::BufWriter::new(file);
        use io::Seek as _;
        out.seek(io::SeekFrom::End(0))?;
        let mut written = 0u64;
        if fresh {
            out.write_all(MAGIC)?;
            written += MAGIC.len() as u64;
        }
        let mut flushed = 0usize;
        for key in std::mem::take(&mut self.pending) {
            let entry = &self.index[&key.0];
            let record = encode_record(key, entry.version, &entry.payload);
            out.write_all(&record)?;
            written += record.len() as u64;
            flushed += 1;
        }
        out.flush()?;
        self.valid_len = if fresh {
            written
        } else {
            self.valid_len + written
        };
        self.corrupt_tail_bytes = 0;
        // Keep the on-disk record count honest: vacuum and stats derive
        // the superseded-duplicate count from it.
        self.records_loaded += flushed;
        Ok(flushed)
    }

    /// Number of indexed entries at the current version.
    pub fn len(&self) -> usize {
        self.index
            .values()
            .filter(|e| e.version == self.version)
            .count()
    }

    /// `true` when no entry is indexed at the current version.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate store facts.
    pub fn stats(&self) -> CacheStats {
        let current_entries = self.len();
        CacheStats {
            current_entries,
            stale_entries: self.index.len() - current_entries,
            records_loaded: self.records_loaded,
            corrupt_tail_bytes: self.corrupt_tail_bytes,
            corrupt_records: self.corrupt_records,
            file_bytes: self.valid_len + self.corrupt_tail_bytes,
            pending_entries: self.pending.len(),
        }
    }

    /// Rewrites the log to exactly one record per current-version key
    /// (sorted by key, so vacuumed files are canonical), dropping stale
    /// versions, superseded duplicates, and any corrupt tail.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on error the original file is left in
    /// place (the rewrite goes through a temp file + rename).
    pub fn vacuum(&mut self) -> io::Result<VacuumReport> {
        self.flush()?;
        let bytes_before = self.valid_len + self.corrupt_tail_bytes;
        let mut keys: Vec<u128> = self
            .index
            .iter()
            .filter(|(_, e)| e.version == self.version)
            .map(|(k, _)| *k)
            .collect();
        keys.sort_unstable();
        let dropped_stale = self.index.len() - keys.len();

        let mut out: Vec<u8> = Vec::with_capacity(MAGIC.len());
        out.extend_from_slice(MAGIC);
        for key in &keys {
            let entry = &self.index[key];
            out.extend_from_slice(&encode_record(
                Fingerprint(*key),
                entry.version,
                &entry.payload,
            ));
        }
        let tmp = self.dir.join(format!("{}.tmp", self.log_name));
        std::fs::write(&tmp, &out)?;
        std::fs::rename(&tmp, self.log_path())?;

        // Skipped corrupt records count as dropped: the rewrite is what
        // finally removes their bytes from the log.
        let dropped_records =
            (self.records_loaded + self.corrupt_records).saturating_sub(keys.len());
        self.index.retain(|_, e| e.version == self.version);
        self.records_loaded = keys.len();
        self.valid_len = out.len() as u64;
        self.corrupt_tail_bytes = 0;
        self.corrupt_records = 0;
        Ok(VacuumReport {
            kept: keys.len(),
            dropped_stale,
            dropped_records,
            bytes_before,
            bytes_after: out.len() as u64,
        })
    }
}

/// Scans the log under `dir` without building an index: record
/// well-formedness, payload checksums, per-version counts.
///
/// # Errors
///
/// I/O failures only; an absent log verifies as an empty clean report.
pub fn verify(dir: &Path) -> io::Result<VerifyReport> {
    verify_ns(dir, DEFAULT_NS)
}

/// [`verify`] for one namespace's log — `<dir>/<namespace>.log`.
///
/// # Errors
///
/// I/O failures only; an absent log verifies as an empty clean report.
///
/// # Panics
///
/// On a malformed namespace, as [`CacheStore::open_ns`].
pub fn verify_ns(dir: &Path, namespace: &str) -> io::Result<VerifyReport> {
    let path = dir.join(log_name(namespace));
    let mut report = VerifyReport::default();
    if !path.exists() {
        return Ok(report);
    }
    let bytes = std::fs::read(&path)?;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        report.corrupt_tail_bytes = bytes.len() as u64;
        return Ok(report);
    }
    let mut reader = Reader::new(&bytes[MAGIC.len()..]);
    let mut keys = std::collections::HashSet::new();
    while !reader.is_exhausted() {
        match read_record_checked(&mut reader) {
            Ok((key, version, checksum_ok)) => {
                if checksum_ok {
                    report.valid_records += 1;
                    keys.insert(key.0);
                    *report.versions.entry(version).or_insert(0) += 1;
                } else {
                    report.checksum_failures += 1;
                }
            }
            Err(_) => {
                report.corrupt_tail_bytes = reader.remaining() as u64;
                break;
            }
        }
    }
    report.distinct_keys = keys.len();
    Ok(report)
}

/// Serializes one record.
fn encode_record(key: Fingerprint, version: u32, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u128(key.0);
    w.u32(version);
    w.bytes(payload);
    w.u64(checksum(payload));
    w.finish()
}

/// One record as read off the log: either fully valid, or structurally
/// intact (length framing parsed, so the scan can continue past it)
/// but failing its payload checksum.
enum RawRecord {
    Valid {
        key: Fingerprint,
        version: u32,
        payload: Vec<u8>,
    },
    BadChecksum,
}

/// Reads one record. Structural damage (truncated framing) is a wire
/// error; a checksum mismatch with intact framing is reported as
/// [`RawRecord::BadChecksum`] so the caller can decide whether it is
/// tail damage or mid-log corruption.
fn read_record(reader: &mut Reader<'_>) -> Result<RawRecord, WireError> {
    let key = Fingerprint(reader.u128()?);
    let version = reader.u32()?;
    let payload = reader.bytes()?.to_vec();
    let stored = reader.u64()?;
    if stored != checksum(&payload) {
        return Ok(RawRecord::BadChecksum);
    }
    Ok(RawRecord::Valid {
        key,
        version,
        payload,
    })
}

/// Reads one record structurally, reporting (rather than failing on) a
/// checksum mismatch — [`verify`] wants to keep scanning past a bad
/// payload whose framing is intact.
fn read_record_checked(reader: &mut Reader<'_>) -> Result<(Fingerprint, u32, bool), WireError> {
    let key = Fingerprint(reader.u128()?);
    let version = reader.u32()?;
    let payload = reader.bytes()?;
    let stored = reader.u64()?;
    Ok((key, version, stored == checksum(payload)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("diffcache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn insert_get_flush_reopen() {
        let dir = temp_dir("roundtrip");
        let key = fingerprint(&[b"a", b"b"]);
        let mut store = CacheStore::open(&dir, 1).unwrap();
        assert_eq!(store.get(key), Lookup::Miss);
        store.insert(key, vec![1, 2, 3]);
        assert_eq!(store.get(key), Lookup::Hit(&[1, 2, 3]));
        assert_eq!(store.flush().unwrap(), 1);
        assert_eq!(store.flush().unwrap(), 0, "nothing pending");

        let store = CacheStore::open(&dir, 1).unwrap();
        assert_eq!(store.get(key), Lookup::Hit(&[1, 2, 3]));
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_bump_invalidates_without_deleting() {
        let dir = temp_dir("version");
        let key = fingerprint(&[b"k"]);
        let mut store = CacheStore::open(&dir, 1).unwrap();
        store.insert(key, b"v1".to_vec());
        store.flush().unwrap();

        let store = CacheStore::open(&dir, 2).unwrap();
        assert_eq!(store.get(key), Lookup::StaleVersion);
        assert_eq!(store.len(), 0);
        assert_eq!(store.stats().stale_entries, 1);

        let store = CacheStore::open(&dir, 1).unwrap();
        assert_eq!(
            store.get(key),
            Lookup::Hit(b"v1".as_slice()),
            "old version intact"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_tail_is_ignored_and_healed_by_flush() {
        let dir = temp_dir("corrupt");
        let key = fingerprint(&[b"good"]);
        let mut store = CacheStore::open(&dir, 1).unwrap();
        store.insert(key, b"payload".to_vec());
        store.flush().unwrap();
        let log = store.log_path();
        // Simulate a crash mid-append: garbage after the valid record.
        let mut bytes = std::fs::read(&log).unwrap();
        bytes.extend_from_slice(&[0xAB; 13]);
        std::fs::write(&log, &bytes).unwrap();

        let mut store = CacheStore::open(&dir, 1).unwrap();
        assert_eq!(store.get(key), Lookup::Hit(b"payload".as_slice()));
        assert_eq!(store.stats().corrupt_tail_bytes, 13);
        let key2 = fingerprint(&[b"second"]);
        store.insert(key2, b"two".to_vec());
        store.flush().unwrap();

        let store = CacheStore::open(&dir, 1).unwrap();
        assert_eq!(
            store.stats().corrupt_tail_bytes,
            0,
            "flush truncated the tail"
        );
        assert_eq!(store.get(key), Lookup::Hit(b"payload".as_slice()));
        assert_eq!(store.get(key2), Lookup::Hit(b"two".as_slice()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_logs_see_their_own_writes_and_absorb_in_order() {
        let dir = temp_dir("shards");
        let mut store = CacheStore::open(&dir, 1).unwrap();
        let (ka, kb) = (fingerprint(&[b"a"]), fingerprint(&[b"b"]));

        let mut log1 = ShardLog::new();
        log1.record(ka, b"A".to_vec());
        assert_eq!(log1.get(ka), Some(b"A".as_slice()), "own write visible");
        log1.record(ka, b"IGNORED".to_vec());
        assert_eq!(log1.get(ka), Some(b"A".as_slice()), "first write wins");

        let mut log2 = ShardLog::new();
        log2.record(kb, b"B".to_vec());
        log2.record(ka, b"A".to_vec()); // duplicate across shards

        store.absorb(log1);
        store.absorb(log2);
        assert_eq!(store.get(ka), Lookup::Hit(b"A".as_slice()));
        assert_eq!(store.get(kb), Lookup::Hit(b"B".as_slice()));
        assert_eq!(
            store.stats().pending_entries,
            2,
            "cross-shard duplicate skipped"
        );
        store.flush().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropped_shard_log_leaves_no_trace() {
        let dir = temp_dir("dead-shard");
        let mut store = CacheStore::open(&dir, 1).unwrap();
        let key = fingerprint(&[b"dead"]);
        {
            let mut log = ShardLog::new();
            log.record(key, b"half-finished".to_vec());
            // The worker died: the log is dropped, never absorbed.
        }
        store.flush().unwrap();
        let store = CacheStore::open(&dir, 1).unwrap();
        assert_eq!(store.get(key), Lookup::Miss);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn vacuum_compacts_stale_and_duplicates() {
        let dir = temp_dir("vacuum");
        let key = fingerprint(&[b"x"]);
        let mut store = CacheStore::open(&dir, 1).unwrap();
        store.insert(key, b"old".to_vec());
        store.flush().unwrap();
        // Same key re-recorded at a newer version, plus a fresh key.
        let mut store = CacheStore::open(&dir, 2).unwrap();
        store.insert(key, b"new".to_vec());
        store.insert(fingerprint(&[b"y"]), b"why".to_vec());
        store.flush().unwrap();

        let mut store = CacheStore::open(&dir, 2).unwrap();
        assert_eq!(store.records_loaded, 3);
        let report = store.vacuum().unwrap();
        assert_eq!(report.kept, 2);
        assert!(report.bytes_after < report.bytes_before);

        let store = CacheStore::open(&dir, 2).unwrap();
        assert_eq!(store.get(key), Lookup::Hit(b"new".as_slice()));
        assert_eq!(store.stats().records_loaded, 2);
        assert_eq!(store.stats().stale_entries, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_reports_integrity() {
        let dir = temp_dir("verify");
        assert_eq!(
            verify(&dir).unwrap(),
            VerifyReport::default(),
            "absent log is clean"
        );
        let mut store = CacheStore::open(&dir, 3).unwrap();
        store.insert(fingerprint(&[b"1"]), b"one".to_vec());
        store.insert(fingerprint(&[b"2"]), b"two".to_vec());
        store.flush().unwrap();

        let report = verify(&dir).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.valid_records, 2);
        assert_eq!(report.distinct_keys, 2);
        assert_eq!(report.versions.get(&3), Some(&2));

        // Flip a payload byte: framing intact, checksum broken.
        let log = dir.join("cache.log");
        let mut bytes = std::fs::read(&log).unwrap();
        let flip = MAGIC.len() + 16 + 4 + 8; // first payload byte
        bytes[flip] ^= 0xFF;
        std::fs::write(&log, &bytes).unwrap();
        let report = verify(&dir).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.checksum_failures, 1);
        assert_eq!(report.valid_records, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_middle_record_fails_strict_open_and_heals_via_vacuum() {
        let dir = temp_dir("mid-corrupt");
        let (k1, k2, k3) = (
            fingerprint(&[b"first"]),
            fingerprint(&[b"second"]),
            fingerprint(&[b"third"]),
        );
        let mut store = CacheStore::open(&dir, 1).unwrap();
        store.insert(k1, b"one".to_vec());
        store.insert(k2, b"two".to_vec());
        store.insert(k3, b"three".to_vec());
        store.flush().unwrap();
        let log = store.log_path();

        // Byte-flip the *middle* record's payload: framing stays
        // intact, the checksum fails, and records 1 and 3 stay valid.
        let mut bytes = std::fs::read(&log).unwrap();
        let rec1_len = encode_record(k1, 1, b"one").len();
        let flip = MAGIC.len() + rec1_len + 16 + 4 + 8; // key + version + len prefix
        bytes[flip] ^= 0xFF;
        std::fs::write(&log, &bytes).unwrap();

        // Strict open refuses instead of silently dropping record 3.
        let err = match CacheStore::open(&dir, 1) {
            Err(err) => err,
            Ok(_) => panic!("strict open must fail on mid-log corruption"),
        };
        match &err {
            StoreError::CorruptRecord {
                offset,
                valid_before,
                valid_after,
            } => {
                assert_eq!(*offset, (MAGIC.len() + rec1_len) as u64);
                assert_eq!(*valid_before, 1);
                assert_eq!(*valid_after, 1);
            }
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("cache verify"), "hint missing: {msg}");
        assert!(msg.contains("cache vacuum"), "hint missing: {msg}");

        // Tolerant open skips the bad record but keeps both neighbours.
        let mut store = CacheStore::open_tolerant(&dir, 1).unwrap();
        assert_eq!(store.get(k1), Lookup::Hit(b"one".as_slice()));
        assert_eq!(store.get(k2), Lookup::Miss, "corrupt record not indexed");
        assert_eq!(store.get(k3), Lookup::Hit(b"three".as_slice()));
        assert_eq!(store.stats().corrupt_records, 1);

        // Vacuum rewrites a clean log; strict open works again.
        let report = store.vacuum().unwrap();
        assert_eq!(report.kept, 2);
        assert_eq!(report.dropped_records, 1);
        let store = CacheStore::open(&dir, 1).unwrap();
        assert_eq!(store.get(k1), Lookup::Hit(b"one".as_slice()));
        assert_eq!(store.get(k3), Lookup::Hit(b"three".as_slice()));
        assert_eq!(store.stats().corrupt_records, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_final_record_is_still_tail_damage() {
        let dir = temp_dir("last-corrupt");
        let (k1, k2) = (fingerprint(&[b"keep"]), fingerprint(&[b"flip"]));
        let mut store = CacheStore::open(&dir, 1).unwrap();
        store.insert(k1, b"keep".to_vec());
        store.insert(k2, b"flip".to_vec());
        store.flush().unwrap();
        let log = store.log_path();
        let mut bytes = std::fs::read(&log).unwrap();
        let last = bytes.len() - 9; // inside the last record's payload/checksum
        bytes[last] ^= 0xFF;
        std::fs::write(&log, &bytes).unwrap();

        // No valid record follows the damage, so this is the ordinary
        // corrupt-tail case: strict open succeeds and flush heals.
        let store = CacheStore::open(&dir, 1).unwrap();
        assert_eq!(store.get(k1), Lookup::Hit(b"keep".as_slice()));
        assert_eq!(store.get(k2), Lookup::Miss);
        assert!(store.stats().corrupt_tail_bytes > 0);
        assert_eq!(store.stats().corrupt_records, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn namespaces_are_isolated_logs_in_one_directory() {
        let dir = temp_dir("namespaces");
        let key = fingerprint(&[b"shared-key"]);
        let mut mine = CacheStore::open(&dir, 1).unwrap();
        let mut cluster = CacheStore::open_ns(&dir, 7, "cluster").unwrap();
        mine.insert(key, b"mining outcome".to_vec());
        cluster.insert(key, b"distance cell".to_vec());
        mine.flush().unwrap();
        cluster.flush().unwrap();
        assert_ne!(mine.log_path(), cluster.log_path());
        assert!(dir.join("cache.log").exists());
        assert!(dir.join("cluster.log").exists());

        // Same key, same dir, fully independent values and versions.
        let mine = CacheStore::open(&dir, 1).unwrap();
        let cluster = CacheStore::open_ns(&dir, 7, "cluster").unwrap();
        assert_eq!(mine.get(key), Lookup::Hit(b"mining outcome".as_slice()));
        assert_eq!(cluster.get(key), Lookup::Hit(b"distance cell".as_slice()));
        let other = CacheStore::open_ns(&dir, 8, "cluster").unwrap();
        assert_eq!(other.get(key), Lookup::StaleVersion);

        // Vacuuming one namespace leaves the other log untouched.
        let before = std::fs::read(dir.join("cache.log")).unwrap();
        CacheStore::open_ns(&dir, 7, "cluster")
            .unwrap()
            .vacuum()
            .unwrap();
        assert_eq!(std::fs::read(dir.join("cache.log")).unwrap(), before);

        // Per-namespace verify sees only its own log.
        let report = verify_ns(&dir, "cluster").unwrap();
        assert_eq!(report.valid_records, 1);
        assert_eq!(report.versions.get(&7), Some(&1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "cache namespace")]
    fn rejects_a_path_escaping_namespace() {
        let _ = CacheStore::open_ns(&temp_dir("bad-ns"), 1, "../evil");
    }

    #[test]
    fn foreign_file_is_treated_as_fully_corrupt() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("cache.log"), b"not a cache file at all").unwrap();
        let store = CacheStore::open(&dir, 1).unwrap();
        assert_eq!(store.len(), 0);
        assert!(store.stats().corrupt_tail_bytes > 0);
        let report = verify(&dir).unwrap();
        assert!(!report.is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
