//! A minimal length-prefixed binary codec.
//!
//! The workspace builds offline (no serde), so cache payloads and store
//! records are serialized by hand. The format is deliberately dumb:
//! little-endian fixed-width integers and length-prefixed byte strings,
//! no varints, no alignment. Decoding is total — every malformed input
//! produces a typed [`WireError`], never a panic — because cache files
//! are untrusted input to the pipeline (a crash mid-flush leaves a
//! truncated tail).

use std::fmt;

/// A decoding failure. The store treats any error as "record is
/// corrupt"; payload decoders treat it as a cache miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the expected number of bytes.
    Truncated {
        /// Bytes needed by the read.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A length prefix or tag had an impossible value.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated input: needed {needed} byte(s), {remaining} left"
                )
            }
            WireError::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serializes values into a growing byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u128.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Consumes the writer, returning the serialized bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Deserializes values from a byte slice, front to back.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when every byte has been consumed — decoders check this
    /// to reject trailing garbage.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(
            bytes.try_into().map_err(|_| WireError::Malformed("u32"))?,
        ))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(
            bytes.try_into().map_err(|_| WireError::Malformed("u64"))?,
        ))
    }

    /// Reads a little-endian u128.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        let bytes = self.take(16)?;
        Ok(u128::from_le_bytes(
            bytes.try_into().map_err(|_| WireError::Malformed("u128"))?,
        ))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u64()?;
        let len = usize::try_from(len)
            .map_err(|_| WireError::Malformed("length prefix exceeds usize"))?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError::Malformed("string is not UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.u128(0x6c62272e07bb014262b821756295c58d);
        w.bytes(b"raw");
        w.str("caf\u{e9}");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.u128().unwrap(), 0x6c62272e07bb014262b821756295c58d);
        assert_eq!(r.bytes().unwrap(), b"raw");
        assert_eq!(r.str().unwrap(), "caf\u{e9}");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = Writer::new();
        w.str("hello");
        let buf = w.finish();
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(
                matches!(r.str(), Err(WireError::Truncated { .. })),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn length_prefix_cannot_overread() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // absurd length prefix with no payload
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn non_utf8_string_is_malformed() {
        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.str(), Err(WireError::Malformed("string is not UTF-8")));
    }
}
