//! 128-bit content fingerprints (FNV-1a).
//!
//! `DefaultHasher` is explicitly unstable across releases and
//! processes, so cache keys use a hand-rolled FNV-1a over 128 bits:
//! trivially portable, deterministic forever, and wide enough that
//! birthday collisions are out of reach for any corpus this pipeline
//! will see (2⁶⁴ entries for a 50% collision chance).

use std::fmt;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit content fingerprint. Displays as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Parses the 32-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Running FNV-1a 128 state, fed length-delimited parts.
#[derive(Debug, Clone)]
struct Fnv128(u128);

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one part, length-prefixed so `["ab","c"]` and `["a","bc"]`
    /// hash differently.
    fn update_part(&mut self, part: &[u8]) {
        self.update(&(part.len() as u64).to_le_bytes());
        self.update(part);
    }
}

/// Fingerprints a sequence of byte parts. Each part is length-delimited
/// before hashing, so the fingerprint depends on the part boundaries,
/// not just the concatenation.
pub fn fingerprint(parts: &[&[u8]]) -> Fingerprint {
    let mut fnv = Fnv128::new();
    for part in parts {
        fnv.update_part(part);
    }
    Fingerprint(fnv.0)
}

/// [`fingerprint`] over string parts.
pub fn fingerprint_str(parts: &[&str]) -> Fingerprint {
    let mut fnv = Fnv128::new();
    for part in parts {
        fnv.update_part(part.as_bytes());
    }
    Fingerprint(fnv.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a 128 of the empty input is the offset basis; one part
        // still mixes in the length prefix.
        assert_eq!(fingerprint(&[]), Fingerprint(FNV_OFFSET));
        assert_ne!(fingerprint(&[b""]), Fingerprint(FNV_OFFSET));
    }

    #[test]
    fn part_boundaries_matter() {
        assert_ne!(fingerprint(&[b"ab", b"c"]), fingerprint(&[b"a", b"bc"]));
        assert_ne!(fingerprint(&[b"abc"]), fingerprint(&[b"ab", b"c"]));
        assert_eq!(fingerprint(&[b"ab", b"c"]), fingerprint(&[b"ab", b"c"]));
    }

    #[test]
    fn str_and_bytes_agree() {
        assert_eq!(
            fingerprint_str(&["old", "new"]),
            fingerprint(&[b"old", b"new"])
        );
    }

    #[test]
    fn hex_round_trip() {
        let fp = fingerprint(&[b"round", b"trip"]);
        let hex = fp.to_string();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::parse(&hex), Some(fp));
        assert_eq!(Fingerprint::parse("xyz"), None);
        assert_eq!(Fingerprint::parse(&hex[..31]), None);
    }

    #[test]
    fn distinct_inputs_distinct_outputs() {
        // Not a collision test, just a sanity sweep over small inputs.
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..1000 {
            let bytes = i.to_le_bytes();
            assert!(seen.insert(fingerprint(&[&bytes])), "collision at {i}");
        }
    }
}
