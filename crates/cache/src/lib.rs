//! # cache — persistent, content-addressed result cache
//!
//! Mining is inherently incremental: the per-change pipeline
//! (lex → parse → abstract interpretation → DAG diff) is a pure
//! function of the two file versions and the pipeline configuration,
//! so its outcome can be reused across runs instead of recomputed.
//! This crate provides the storage layer for that reuse; the pipeline
//! crate decides what goes into a key and what a payload means.
//!
//! Three layers, bottom up:
//!
//! 1. [`Fingerprint`] — a 128-bit FNV-1a content hash over
//!    length-delimited parts ([`fingerprint`]). Collisions at 128 bits
//!    are negligible for corpus-scale key counts, and the hash is
//!    stable across platforms and runs (unlike `DefaultHasher`).
//! 2. [`wire`] — a tiny length-prefixed binary codec
//!    ([`wire::Writer`]/[`wire::Reader`]) used both for the store's
//!    on-disk records and by callers to serialize payloads. Typed
//!    [`wire::WireError`]s, never panics on malformed input.
//! 3. [`CacheStore`] — an append-only log of
//!    `(key, version, payload, checksum)` records under a cache
//!    directory, loaded into an in-memory index on open. Writes
//!    accumulate in memory ([`CacheStore::insert`] or a per-shard
//!    [`ShardLog`] absorbed on join) and hit disk only on
//!    [`CacheStore::flush`] — nothing on the hot path takes a lock or
//!    touches the filesystem.
//!
//! Versioning: every record carries the *analysis version* the caller
//! opened the store with. A lookup that finds bytes written under a
//! different version reports [`Lookup::StaleVersion`] instead of a hit,
//! so bumping the version invalidates every existing entry without
//! touching the file. [`CacheStore::vacuum`] rewrites the log to drop
//! stale and superseded records; [`verify`] checks record integrity
//! without loading payloads into an index.
//!
//! # Example
//!
//! ```
//! use cache::{fingerprint, CacheStore, Lookup};
//!
//! let dir = std::env::temp_dir().join(format!("cache-doc-{}", std::process::id()));
//! let key = fingerprint(&[b"old source", b"new source", b"config"]);
//! let mut store = CacheStore::open(&dir, 1).unwrap();
//! assert!(matches!(store.get(key), Lookup::Miss));
//! store.insert(key, b"outcome".to_vec());
//! assert!(matches!(store.get(key), Lookup::Hit(b) if b == b"outcome"));
//! store.flush().unwrap();
//!
//! // A later run under a bumped analysis version sees stale entries.
//! let store = CacheStore::open(&dir, 2).unwrap();
//! assert!(matches!(store.get(key), Lookup::StaleVersion));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

mod fingerprint;
mod store;
pub mod wire;

pub use fingerprint::{fingerprint, fingerprint_str, Fingerprint};
pub use store::{
    verify, verify_ns, CacheStats, CacheStore, Lookup, ShardLog, StoreError, VacuumReport,
    VerifyReport,
};
